//! Glue for the evaluation campaign: pick an executor × middleware
//! combination, deploy (modelled) and execute (simulated) — one bar of
//! Fig 14 per call.

use crate::cluster::Cluster;
use crate::deploy::{DeploymentReport, ExecError, ExecutorKind};
use ginflow_core::Workflow;
use ginflow_mq::BrokerKind;
use ginflow_sim::{simulate, CostModel, ServiceModel, SimConfig, SimReport};

/// One cell of the Fig 14 grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutionSpec {
    /// Deployment strategy.
    pub executor: ExecutorKind,
    /// Messaging middleware.
    pub broker: BrokerKind,
    /// Number of cluster nodes.
    pub nodes: usize,
}

/// Deployment + execution, combined.
#[derive(Clone, Debug)]
pub struct CombinedReport {
    /// The spec that produced this report.
    pub executor: ExecutorKind,
    /// Broker used.
    pub broker: BrokerKind,
    /// Nodes used.
    pub nodes: usize,
    /// Deployment report (placement + time).
    pub deployment: DeploymentReport,
    /// Execution report (virtual-time simulation).
    pub execution: SimReport,
}

impl CombinedReport {
    /// Deployment time in seconds.
    pub fn deployment_secs(&self) -> f64 {
        self.deployment.time_us as f64 / 1e6
    }

    /// Execution time in seconds.
    pub fn execution_secs(&self) -> f64 {
        self.execution.makespan_secs()
    }

    /// Total (deployment + execution) in seconds.
    pub fn total_secs(&self) -> f64 {
        self.deployment_secs() + self.execution_secs()
    }
}

/// Deploy `workflow`'s agents on a Grid'5000-like cluster of `spec.nodes`
/// nodes with the chosen executor, then simulate execution with the
/// chosen middleware profile.
pub fn deploy_and_simulate(
    workflow: &Workflow,
    spec: ExecutionSpec,
    services: ServiceModel,
    seed: u64,
) -> Result<CombinedReport, ExecError> {
    let cluster = Cluster::grid5000(spec.nodes);
    let agent_names: Vec<String> = workflow.dag().iter().map(|(_, t)| t.name.clone()).collect();
    let deployment = spec.executor.deployer().deploy(&cluster, &agent_names)?;
    let execution = simulate(
        workflow,
        &SimConfig {
            cost: CostModel::for_broker(spec.broker),
            services,
            persistent_broker: spec.broker == BrokerKind::Log,
            seed,
            ..SimConfig::default()
        },
    );
    Ok(CombinedReport {
        executor: spec.executor,
        broker: spec.broker,
        nodes: spec.nodes,
        deployment,
        execution,
    })
}

/// Outcome of a *live* (non-simulated) deployment + execution: the
/// modelled placement plus real wall-clock results from the event-driven
/// scheduler.
#[derive(Debug)]
pub struct LiveReport {
    /// The spec that produced this report.
    pub executor: ExecutorKind,
    /// Broker used.
    pub broker: BrokerKind,
    /// Nodes used (placement model only — execution is in-process).
    pub nodes: usize,
    /// Deployment report (placement + modelled time).
    pub deployment: DeploymentReport,
    /// Results of every sink task.
    pub results: std::collections::HashMap<String, ginflow_core::Value>,
    /// Wall-clock execution time.
    pub wall: std::time::Duration,
}

impl LiveReport {
    /// Modelled deployment time in seconds.
    pub fn deployment_secs(&self) -> f64 {
        self.deployment.time_us as f64 / 1e6
    }

    /// Real execution time in seconds.
    pub fn execution_secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }
}

/// Deploy `workflow`'s agents on the modelled cluster, then execute them
/// for real through the unified [`Engine`](ginflow_engine::Engine) on
/// the event-driven scheduler backend — the live counterpart of
/// [`deploy_and_simulate`]. The cluster model still gates capacity (a
/// deployment that would not fit the testbed errors out), while
/// execution runs in-process over the chosen broker profile with one
/// worker per placed node's share of the pool. The `timeout` doubles as
/// the run's deadline: expiry cancels the run and tears the agents down
/// through the broker.
pub fn deploy_and_execute(
    workflow: &Workflow,
    spec: ExecutionSpec,
    registry: std::sync::Arc<ginflow_core::ServiceRegistry>,
    timeout: std::time::Duration,
) -> Result<LiveReport, ExecError> {
    // `BrokerKind::Remote.build()` panics (no address); keep this
    // Result-returning entry point panic-free.
    if spec.broker == BrokerKind::Remote {
        return Err(ExecError::ExecutionFailed {
            reason: "BrokerKind::Remote carries no address; connect a \
                     ginflow_net::RemoteBroker and call deploy_and_execute_on"
                .to_owned(),
        });
    }
    deploy_and_execute_on(workflow, spec, registry, timeout, spec.broker.build())
}

/// [`deploy_and_execute`] against a caller-supplied broker instance —
/// the deployment campaign's entry point for **remote** middleware:
/// hand it a `ginflow_net::RemoteBroker` (spec.broker =
/// [`BrokerKind::Remote`]) and the deployed agents coordinate through
/// the network daemon instead of an in-process substrate, like the
/// paper's SAs against a shared ActiveMQ/Kafka installation.
pub fn deploy_and_execute_on(
    workflow: &Workflow,
    spec: ExecutionSpec,
    registry: std::sync::Arc<ginflow_core::ServiceRegistry>,
    timeout: std::time::Duration,
    broker: std::sync::Arc<dyn ginflow_mq::Broker>,
) -> Result<LiveReport, ExecError> {
    let cluster = Cluster::grid5000(spec.nodes);
    let agent_names: Vec<String> = workflow.dag().iter().map(|(_, t)| t.name.clone()).collect();
    let deployment = spec.executor.deployer().deploy(&cluster, &agent_names)?;

    let engine = ginflow_engine::Engine::builder()
        .broker(broker)
        .registry(registry)
        // One scheduler worker per modelled node, bounded by the local
        // machine: the placement decides the parallelism budget.
        .workers(spec.nodes.clamp(1, 64))
        .backend(ginflow_engine::Backend::Scheduler)
        .deadline(timeout)
        .build();
    let started = std::time::Instant::now();
    let run = engine.launch(workflow);
    let results = run.wait(timeout).map_err(|e| match e {
        ginflow_agent::WaitError::Timeout { .. } | ginflow_agent::WaitError::Deadline { .. } => {
            ExecError::ExecutionTimeout
        }
        other => ExecError::ExecutionFailed {
            reason: other.to_string(),
        },
    })?;
    let wall = started.elapsed();
    run.shutdown();
    Ok(LiveReport {
        executor: spec.executor,
        broker: spec.broker,
        nodes: spec.nodes,
        deployment,
        results,
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ginflow_core::{patterns, Connectivity};

    fn diamond_10x10() -> Workflow {
        patterns::diamond(10, 10, Connectivity::Simple, "s").unwrap()
    }

    #[test]
    fn all_four_combinations_complete() {
        let wf = diamond_10x10();
        for executor in [ExecutorKind::Ssh, ExecutorKind::Mesos] {
            for broker in [BrokerKind::Transient, BrokerKind::Log] {
                let report = deploy_and_simulate(
                    &wf,
                    ExecutionSpec {
                        executor,
                        broker,
                        nodes: 10,
                    },
                    ServiceModel::constant(300_000),
                    1,
                )
                .unwrap();
                assert!(report.execution.completed, "{executor:?}/{broker:?}");
                assert!(report.deployment_secs() > 0.0);
            }
        }
    }

    #[test]
    fn kafka_execution_slower_than_activemq() {
        // The Fig 14 headline: "ActiveMQ outperforms Kafka, as the
        // execution time is approximately 4 times higher in the latter".
        let wf = diamond_10x10();
        let spec = |broker| ExecutionSpec {
            executor: ExecutorKind::Mesos,
            broker,
            nodes: 10,
        };
        let amq = deploy_and_simulate(
            &wf,
            spec(BrokerKind::Transient),
            ServiceModel::constant(300_000),
            1,
        )
        .unwrap();
        let kafka = deploy_and_simulate(
            &wf,
            spec(BrokerKind::Log),
            ServiceModel::constant(300_000),
            1,
        )
        .unwrap();
        let ratio = kafka.execution_secs() / amq.execution_secs();
        assert!(ratio > 1.5, "kafka should be clearly slower, ratio {ratio}");
    }

    #[test]
    fn deployment_trends_match_fig14() {
        let wf = diamond_10x10();
        let run = |executor, nodes| {
            deploy_and_simulate(
                &wf,
                ExecutionSpec {
                    executor,
                    broker: BrokerKind::Transient,
                    nodes,
                },
                ServiceModel::constant(300_000),
                1,
            )
            .unwrap()
            .deployment_secs()
        };
        assert!(run(ExecutorKind::Ssh, 15) > run(ExecutorKind::Ssh, 5));
        assert!(run(ExecutorKind::Mesos, 15) < run(ExecutorKind::Mesos, 5));
    }

    #[test]
    fn live_execution_completes_on_the_scheduler() {
        let wf = patterns::diamond(4, 4, Connectivity::Simple, "s").unwrap();
        let registry = std::sync::Arc::new(ginflow_core::ServiceRegistry::tracing_for(["s"]));
        let report = deploy_and_execute(
            &wf,
            ExecutionSpec {
                executor: ExecutorKind::Mesos,
                broker: BrokerKind::Log,
                nodes: 10,
            },
            registry,
            std::time::Duration::from_secs(30),
        )
        .unwrap();
        assert!(report.results.contains_key("out"));
        assert!(report.deployment_secs() > 0.0);
    }

    #[test]
    fn live_execution_over_a_remote_broker() {
        // The deployment campaign pointed at a network daemon: same
        // placement model, but the agents coordinate over TCP.
        let wf = patterns::diamond(4, 4, Connectivity::Simple, "s").unwrap();
        let registry = std::sync::Arc::new(ginflow_core::ServiceRegistry::tracing_for(["s"]));
        let server = ginflow_net::BrokerServer::bind(
            "127.0.0.1:0",
            std::sync::Arc::new(ginflow_mq::LogBroker::new()),
        )
        .unwrap();
        let remote = ginflow_net::RemoteBroker::connect(&server.local_addr().to_string()).unwrap();
        let report = deploy_and_execute_on(
            &wf,
            ExecutionSpec {
                executor: ExecutorKind::Mesos,
                broker: BrokerKind::Remote,
                nodes: 10,
            },
            registry,
            std::time::Duration::from_secs(30),
            std::sync::Arc::new(remote),
        )
        .unwrap();
        assert_eq!(report.broker, BrokerKind::Remote);
        assert!(report.results.contains_key("out"));
        assert!(report.deployment_secs() > 0.0);
    }

    #[test]
    fn too_small_cluster_errors() {
        // 1000-service cap: a 1-node cluster cannot host a 10×10 diamond
        // …well, it can (46 < 102? no). 102 agents > 46 slots → error.
        let wf = diamond_10x10();
        let err = deploy_and_simulate(
            &wf,
            ExecutionSpec {
                executor: ExecutorKind::Ssh,
                broker: BrokerKind::Transient,
                nodes: 1,
            },
            ServiceModel::constant(300_000),
            1,
        );
        assert!(matches!(err, Err(ExecError::InsufficientCapacity { .. })));
    }
}
