//! Deployment strategies and their timing models (Fig 14's left half).

use crate::cluster::{Cluster, Placement};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Virtual microseconds (same unit as `ginflow-sim`).
pub type Micros = u64;

/// Deployment failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// More agents than the cluster's SA capacity (2 per core).
    InsufficientCapacity {
        /// Requested agent count.
        agents: usize,
        /// Available capacity.
        capacity: u32,
    },
    /// No nodes configured.
    EmptyCluster,
    /// A live execution did not finish within its deadline.
    ExecutionTimeout,
    /// A live execution failed for a reason other than time running out
    /// (cancellation, a sink completing without a result, …).
    ExecutionFailed {
        /// Human-readable cause.
        reason: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InsufficientCapacity { agents, capacity } => write!(
                f,
                "cannot place {agents} agents on a cluster with capacity {capacity}"
            ),
            ExecError::EmptyCluster => f.write_str("cluster has no nodes"),
            ExecError::ExecutionTimeout => {
                f.write_str("live execution did not finish before its deadline")
            }
            ExecError::ExecutionFailed { reason } => {
                write!(f, "live execution failed: {reason}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Outcome of a deployment: where agents went and how long it took.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// The placement.
    pub placement: Placement,
    /// Modelled deployment time (µs).
    pub time_us: Micros,
}

/// A deployment strategy.
pub trait Deployer {
    /// Place `agents` on `cluster`, reporting the modelled deployment time.
    fn deploy(&self, cluster: &Cluster, agents: &[String]) -> Result<DeploymentReport, ExecError>;

    /// Strategy label for reports.
    fn label(&self) -> &'static str;
}

/// Executor selector (the Fig 14 experiment axis).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ExecutorKind {
    /// SSH round-robin over a preconfigured node list.
    Ssh,
    /// Mesos offer-based placement.
    Mesos,
}

impl ExecutorKind {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecutorKind::Ssh => "ssh",
            ExecutorKind::Mesos => "mesos",
        }
    }

    /// Instantiate the matching deployer with default constants.
    pub fn deployer(self) -> Box<dyn Deployer> {
        match self {
            ExecutorKind::Ssh => Box::new(SshDeployer::default()),
            ExecutorKind::Mesos => Box::new(MesosDeployer::default()),
        }
    }
}

/// "The SSH-based executor starts the SAs in a round-robin fashion on a
/// predefined set of machines. As the SSH connections are parallelized,
/// the deployment time slightly increases with the number of nodes."
///
/// Model: a fixed setup cost, a per-node session cost paid by the single
/// frontend driving all connections (the slight increase), and the
/// per-node agent start-ups which run in parallel across nodes but
/// sequentially within one (`ceil(m/n)` starts on the busiest node).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SshDeployer {
    /// Fixed bootstrap cost (µs).
    pub setup_us: Micros,
    /// Frontend cost per SSH session (µs).
    pub per_node_us: Micros,
    /// One SA start (µs).
    pub sa_start_us: Micros,
}

impl Default for SshDeployer {
    fn default() -> Self {
        SshDeployer {
            setup_us: 1_500_000,
            per_node_us: 350_000,
            sa_start_us: 60_000,
        }
    }
}

impl Deployer for SshDeployer {
    fn deploy(&self, cluster: &Cluster, agents: &[String]) -> Result<DeploymentReport, ExecError> {
        let placement = round_robin(cluster, agents)?;
        let n = cluster.len() as u64;
        let busiest = placement.load(cluster.len()).into_iter().max().unwrap_or(0) as u64;
        let time_us = self.setup_us + self.per_node_us * n + self.sa_start_us * busiest;
        Ok(DeploymentReport { placement, time_us })
    }

    fn label(&self) -> &'static str {
        "ssh"
    }
}

/// "GinFlow, on top of Mesos, starts one SA per machine for each offer
/// received from the Mesos scheduler. Thus, increasing the number of nodes
/// will increase … the parallelization in starting the SAs", hence "the
/// linear decrease of the deployment time".
///
/// Model: framework registration plus one offer round per `ceil(m/n)`
/// batch, each round placing one SA on every node in parallel.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MesosDeployer {
    /// Framework registration (µs).
    pub register_us: Micros,
    /// One offer round: offer receipt + accept + parallel SA launch (µs).
    pub offer_round_us: Micros,
}

impl Default for MesosDeployer {
    fn default() -> Self {
        MesosDeployer {
            register_us: 2_000_000,
            offer_round_us: 1_600_000,
        }
    }
}

impl Deployer for MesosDeployer {
    fn deploy(&self, cluster: &Cluster, agents: &[String]) -> Result<DeploymentReport, ExecError> {
        if cluster.is_empty() {
            return Err(ExecError::EmptyCluster);
        }
        check_capacity(cluster, agents)?;
        // One SA per machine per offer round, in node order.
        let mut assignments = Vec::with_capacity(agents.len());
        for (i, agent) in agents.iter().enumerate() {
            assignments.push((agent.clone(), i % cluster.len()));
        }
        let rounds = agents.len().div_ceil(cluster.len()) as u64;
        let time_us = self.register_us + rounds * self.offer_round_us;
        Ok(DeploymentReport {
            placement: Placement { assignments },
            time_us,
        })
    }

    fn label(&self) -> &'static str {
        "mesos"
    }
}

pub(crate) fn check_capacity(cluster: &Cluster, agents: &[String]) -> Result<(), ExecError> {
    let capacity = cluster.capacity();
    if agents.len() as u32 > capacity {
        return Err(ExecError::InsufficientCapacity {
            agents: agents.len(),
            capacity,
        });
    }
    Ok(())
}

fn round_robin(cluster: &Cluster, agents: &[String]) -> Result<Placement, ExecError> {
    if cluster.is_empty() {
        return Err(ExecError::EmptyCluster);
    }
    check_capacity(cluster, agents)?;
    let assignments = agents
        .iter()
        .enumerate()
        .map(|(i, a)| (a.clone(), i % cluster.len()))
        .collect();
    Ok(Placement { assignments })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agents(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t{i}")).collect()
    }

    #[test]
    fn ssh_round_robin_balances() {
        let cluster = Cluster::grid5000(5);
        let report = SshDeployer::default()
            .deploy(&cluster, &agents(102))
            .unwrap();
        let load = report.placement.load(5);
        assert_eq!(load.iter().sum::<usize>(), 102);
        assert!(load.iter().max().unwrap() - load.iter().min().unwrap() <= 1);
    }

    #[test]
    fn ssh_deploy_time_increases_slightly_with_nodes() {
        // Fixed 102 agents (the paper's 10×10 diamond), growing node count.
        let d = SshDeployer::default();
        let t5 = d
            .deploy(&Cluster::grid5000(5), &agents(102))
            .unwrap()
            .time_us;
        let t10 = d
            .deploy(&Cluster::grid5000(10), &agents(102))
            .unwrap()
            .time_us;
        let t15 = d
            .deploy(&Cluster::grid5000(15), &agents(102))
            .unwrap()
            .time_us;
        assert!(t10 > t5);
        assert!(t15 > t10);
        // "Slightly": under 2× from 5 to 15 nodes.
        assert!(t15 < 2 * t5);
    }

    #[test]
    fn mesos_deploy_time_decreases_with_nodes() {
        let d = MesosDeployer::default();
        let t5 = d
            .deploy(&Cluster::grid5000(5), &agents(102))
            .unwrap()
            .time_us;
        let t10 = d
            .deploy(&Cluster::grid5000(10), &agents(102))
            .unwrap()
            .time_us;
        let t15 = d
            .deploy(&Cluster::grid5000(15), &agents(102))
            .unwrap()
            .time_us;
        assert!(t5 > t10);
        assert!(t10 > t15);
        // Rounds: 21 / 11 / 7 — the linear decrease of Fig 14.
        let rounds = |t: Micros| (t - d.register_us) / d.offer_round_us;
        assert_eq!(rounds(t5), 21);
        assert_eq!(rounds(t10), 11);
        assert_eq!(rounds(t15), 7);
    }

    #[test]
    fn mesos_spreads_one_per_node_per_round() {
        let cluster = Cluster::grid5000(4);
        let report = MesosDeployer::default()
            .deploy(&cluster, &agents(10))
            .unwrap();
        let load = report.placement.load(4);
        assert_eq!(load, vec![3, 3, 2, 2]);
    }

    #[test]
    fn capacity_enforced() {
        // 1 node × 23 cores × 2 = 46 slots.
        let cluster = Cluster::grid5000(1);
        let err = SshDeployer::default()
            .deploy(&cluster, &agents(47))
            .unwrap_err();
        assert!(matches!(
            err,
            ExecError::InsufficientCapacity { capacity: 46, .. }
        ));
        assert!(MesosDeployer::default()
            .deploy(&cluster, &agents(46))
            .is_ok());
    }

    #[test]
    fn empty_cluster_rejected() {
        let empty = Cluster {
            nodes: vec![],
            sas_per_core: 2,
        };
        assert!(matches!(
            SshDeployer::default().deploy(&empty, &agents(1)),
            Err(ExecError::EmptyCluster)
        ));
        assert!(matches!(
            MesosDeployer::default().deploy(&empty, &agents(1)),
            Err(ExecError::EmptyCluster)
        ));
    }

    #[test]
    fn kind_helpers() {
        assert_eq!(ExecutorKind::Ssh.label(), "ssh");
        assert_eq!(ExecutorKind::Mesos.label(), "mesos");
        assert_eq!(ExecutorKind::Ssh.deployer().label(), "ssh");
        assert_eq!(ExecutorKind::Mesos.deployer().label(), "mesos");
    }
}
