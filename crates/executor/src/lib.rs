//! # ginflow-executor — claiming resources and provisioning agents
//!
//! "The role of the executor is to enact the workflow in a specific
//! environment … A distributed executor will (1) claim resources from an
//! infrastructure and (2) provision the distributed engine (i.e., the SAs)
//! on them" (§IV-C). Two executors existed: SSH-based (round-robin over a
//! preconfigured machine list) and Mesos-based (offer-driven). Their
//! *deployment-time* behaviours are the left half of Fig 14:
//!
//! * SSH connections are parallelised, yet the frontend pays a per-node
//!   session cost, so deployment time *slightly increases* with node
//!   count;
//! * Mesos hands out one agent per machine per offer round, so more nodes
//!   mean fewer rounds — deployment time *decreases linearly*.
//!
//! The [`Deployer`] trait is open for further environments (the paper
//! mentions a possible EC2 executor); the centralized executor lives in
//! `ginflow-hoclflow::centralized`.

pub mod campaign;
pub mod cluster;
pub mod deploy;
pub mod ec2;

pub use campaign::{
    deploy_and_execute, deploy_and_execute_on, deploy_and_simulate, CombinedReport, ExecutionSpec,
    LiveReport,
};
pub use cluster::{Cluster, Node, Placement};
pub use deploy::{Deployer, DeploymentReport, ExecError, ExecutorKind, MesosDeployer, SshDeployer};
pub use ec2::Ec2Deployer;
