//! Integration tests of the event-driven worker-pool scheduler: the
//! complete decentralised protocol on a bounded pool — normal runs at
//! scale, adaptation, crash/recovery with inbox replay, and equivalence
//! with the legacy thread-per-agent backend (mirrors
//! `tests/runtime.rs` for the new path).

use ginflow_agent::{RunOptions, Scheduler};
use ginflow_bench::workload::fan_out_fan_in;
use ginflow_core::workflow::{ReplacementTask, WorkflowBuilder};
use ginflow_core::{FailingService, ServiceRegistry, TaskState, Value, Workflow};
use ginflow_mq::{Broker, BrokerKind, LogBroker};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(30);

/// A small bounded pool: every test runs with workers ≪ agents.
fn pool_options() -> RunOptions {
    RunOptions {
        workers: 2,
        ..RunOptions::default()
    }
}

fn fig2() -> Workflow {
    let mut b = WorkflowBuilder::new("fig2");
    b.task("T1", "s1").input(Value::str("input"));
    b.task("T2", "s2").after(["T1"]);
    b.task("T3", "s3").after(["T1"]);
    b.task("T4", "s4").after(["T2", "T3"]);
    b.build().unwrap()
}

fn fig5() -> Workflow {
    let mut b = WorkflowBuilder::new("fig5");
    b.task("T1", "s1").input(Value::str("input"));
    b.task("T2", "s2").after(["T1"]);
    b.task("T3", "s3").after(["T1"]);
    b.task("T4", "s4").after(["T2", "T3"]);
    b.adaptation(
        "replace-T2",
        ["T2"],
        ["T2"],
        [ReplacementTask::new("T2'", "s2p", ["T1"])],
    );
    b.build().unwrap()
}

fn tracing_registry() -> Arc<ServiceRegistry> {
    Arc::new(ServiceRegistry::tracing_for([
        "s1", "s2", "s3", "s4", "s2p", "s",
    ]))
}

#[test]
fn thousand_task_fan_completes_on_a_bounded_pool() {
    // The scaling acceptance bar: 1000+ agents, 2 workers, no polling.
    let scheduler = Scheduler::new(BrokerKind::Transient.build(), tracing_registry())
        .with_options(pool_options());
    let run = scheduler.launch(&fan_out_fan_in(1000));
    let results = run
        .wait(Duration::from_secs(120))
        .expect("1000-task fan completes");
    assert!(results.contains_key("sink"));
    assert_eq!(run.state_of("t999"), Some(TaskState::Completed));
    run.shutdown();
}

#[test]
fn pool_and_legacy_agree_on_fig2() {
    let run_with = |options: RunOptions| {
        let scheduler =
            Scheduler::new(BrokerKind::Transient.build(), tracing_registry()).with_options(options);
        let run = scheduler.launch(&fig2());
        let results = run.wait(WAIT).expect("fig2 completes");
        run.shutdown();
        results["T4"].clone()
    };
    assert_eq!(run_with(pool_options()), run_with(RunOptions::legacy()));
}

#[test]
fn adaptation_reroutes_on_the_pool() {
    // §III-C end-to-end on the worker pool: T2's service always fails;
    // T2' takes over transparently.
    let mut registry = ServiceRegistry::tracing_for(["s1", "s3", "s4", "s2p"]);
    registry.register("s2", Arc::new(FailingService));
    let scheduler = Scheduler::new(BrokerKind::Transient.build(), Arc::new(registry))
        .with_options(pool_options());
    let run = scheduler.launch(&fig5());
    let results = run.wait(WAIT).expect("adaptation must complete the run");
    assert_eq!(
        results["T4"],
        Value::Str("s4(s2p(s1(input)),s3(s1(input)))".into())
    );
    assert_eq!(run.state_of("T2"), Some(TaskState::Failed));
    assert_eq!(run.state_of("T2'"), Some(TaskState::Completed));
    run.shutdown();
}

#[test]
fn killed_agent_mid_workflow_replays_and_completes() {
    // §IV-B on the pool: crash T2 before it can run; the respawned
    // incarnation re-enters through the ready-queue and replays its
    // persistent inbox from the beginning.
    let broker: Arc<dyn Broker> = Arc::new(LogBroker::new());
    let scheduler = Scheduler::new(broker, tracing_registry()).with_options(pool_options());
    let run = scheduler.launch(&fig2());

    assert!(run.kill("T2"));
    // The kill wakes the slot; the crash lands within a scheduling turn.
    std::thread::sleep(Duration::from_millis(100));
    assert!(!run.alive("T2"));

    assert!(run.respawn("T2"));
    assert_eq!(run.incarnation("T2"), 1);
    let results = run.wait(WAIT).expect("recovered workflow completes");
    assert_eq!(
        results["T4"],
        Value::Str("s4(s2(s1(input)),s3(s1(input)))".into())
    );
    run.shutdown();
}

#[test]
fn auto_recovery_on_the_pool_restarts_dead_agents() {
    let broker: Arc<dyn Broker> = Arc::new(LogBroker::new());
    let scheduler = Scheduler::new(broker, tracing_registry()).with_options(RunOptions {
        auto_recover: true,
        ..pool_options()
    });
    let run = scheduler.launch(&fig2());
    assert!(run.kill("T3"));
    let results = run.wait(WAIT).expect("auto recovery completes the run");
    assert_eq!(
        results["T4"],
        Value::Str("s4(s2(s1(input)),s3(s1(input)))".into())
    );
    // The respawn is asynchronous (reaper → recovery thread) and the
    // run may complete first when the kill lands after T3 already
    // finished its work — poll briefly instead of racing the recovery
    // thread.
    let deadline = std::time::Instant::now() + WAIT;
    while run.incarnation("T3") == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(run.incarnation("T3") >= 1, "T3 was respawned");
    run.shutdown();
}

/// A tracing service that takes a while — lets tests land a kill while
/// the producer is still computing, deterministically.
struct SlowTrace(ginflow_core::TraceService, Duration);

impl ginflow_core::Service for SlowTrace {
    fn invoke(&self, params: &[Value]) -> Result<Value, ginflow_core::ServiceError> {
        std::thread::sleep(self.1);
        self.0.invoke(params)
    }
}

#[test]
fn pool_recovery_without_persistence_cannot_replay() {
    // On the transient broker a respawned agent has no history: T2 never
    // learns about T1's result, so the workflow hangs. s1 is slowed so
    // the kill always lands before T1's result is even sent.
    let mut registry = ServiceRegistry::tracing_for(["s2", "s3", "s4"]);
    registry.register(
        "s1",
        Arc::new(SlowTrace(
            ginflow_core::TraceService::new("s1"),
            Duration::from_millis(300),
        )),
    );
    let scheduler = Scheduler::new(BrokerKind::Transient.build(), Arc::new(registry))
        .with_options(pool_options());
    let run = scheduler.launch(&fig2());
    run.kill("T2");
    std::thread::sleep(Duration::from_millis(500));
    run.respawn("T2");
    let err = run.wait(Duration::from_secs(1));
    assert!(err.is_err(), "transient broker cannot support recovery");
    run.shutdown();
}

#[test]
fn repeated_crashes_on_the_pool_eventually_complete() {
    // "a restarted agent can fail again" — crash T2 a few times in a row.
    let broker: Arc<dyn Broker> = Arc::new(LogBroker::new());
    let scheduler = Scheduler::new(broker, tracing_registry()).with_options(pool_options());
    let run = scheduler.launch(&fig2());
    for _ in 0..3 {
        run.kill("T2");
        std::thread::sleep(Duration::from_millis(30));
        run.respawn("T2");
        std::thread::sleep(Duration::from_millis(30));
    }
    let results = run.wait(WAIT).expect("completes after repeated crashes");
    assert_eq!(
        results["T4"],
        Value::Str("s4(s2(s1(input)),s3(s1(input)))".into())
    );
    run.shutdown();
}
