//! The point of being event-driven: a parked workflow consumes (close
//! to) zero CPU, where hundreds of legacy polling agents would burn it
//! forever.
//!
//! This lives in its own test binary on purpose: the assertion measures
//! *process-wide* CPU, so sharing a process with the other scheduler
//! tests (which legitimately burn CPU on parallel test threads) would
//! make it flaky.

use ginflow_agent::{RunOptions, Scheduler};
use ginflow_bench::workload::{fan_out_fan_in, process_cpu};
use ginflow_core::ServiceRegistry;
use ginflow_mq::BrokerKind;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn idle_pool_burns_no_cpu() {
    let registry = Arc::new(ServiceRegistry::tracing_for(["s"]));
    let scheduler =
        Scheduler::new(BrokerKind::Transient.build(), registry).with_options(RunOptions {
            workers: 2,
            ..RunOptions::default()
        });
    let run = scheduler.launch(&fan_out_fan_in(200));
    run.wait(Duration::from_secs(30)).expect("fan completes");

    let before = process_cpu();
    std::thread::sleep(Duration::from_millis(1000));
    let after = process_cpu();
    run.shutdown();
    let burned = after.saturating_sub(before);
    // One idle second must cost well under 20 ms of CPU — a single
    // poll-driven legacy agent alone would cost more.
    assert!(
        burned < Duration::from_millis(20),
        "idle pool burned {burned:?} of CPU in 1s"
    );
}
