//! Property tests of the binary `SaMessage`/`StatusUpdate` codec:
//! arbitrary messages (including deeply structured values) survive an
//! encode→decode round trip, old-format JSON payloads still decode
//! (the fallback path), and corrupted binary payloads are rejected
//! instead of mis-decoded.

use ginflow_agent::{SaMessage, StatusUpdate};
use ginflow_core::{TaskState, Value};
use proptest::prelude::*;

/// Structured values up to 3 levels deep — deeper than anything a real
/// service ships. `Rule` atoms are exercised separately (they embed a
/// JSON leaf); floats skip NaN because `Value`'s chemical equality
/// never matches NaN, which would fail the assert, not the codec.
fn arb_value() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(|f| Value::Float(if f.is_nan() { 0.0 } else { f })),
        "[ -~]{0,24}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z][a-zA-Z0-9_']{0,12}".prop_map(Value::sym),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Value::Tuple),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            prop::collection::vec(inner, 0..4).prop_map(Value::sub),
        ]
    })
    .boxed()
}

fn arb_sa_message() -> BoxedStrategy<SaMessage> {
    prop_oneof![
        ("[a-zA-Z0-9_.']{1,16}", arb_value())
            .prop_map(|(from, value)| SaMessage::Result { from, value }),
        any::<u32>().prop_map(|adaptation| SaMessage::Adapt { adaptation }),
        any::<u32>().prop_map(|adaptation| SaMessage::Trigger { adaptation }),
    ]
    .boxed()
}

fn arb_state() -> BoxedStrategy<TaskState> {
    prop_oneof![
        Just(TaskState::Idle),
        Just(TaskState::Running),
        Just(TaskState::Completed),
        Just(TaskState::Failed),
    ]
    .boxed()
}

fn arb_status() -> BoxedStrategy<StatusUpdate> {
    (
        "[a-zA-Z0-9_.']{1,16}",
        arb_state(),
        (any::<bool>(), arb_value()),
        any::<u32>(),
    )
        .prop_map(|(task, state, (some, value), incarnation)| StatusUpdate {
            task,
            state,
            result: some.then_some(value),
            incarnation,
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Binary round trip: decode(encode(m)) == m.
    #[test]
    fn sa_message_roundtrip(m in arb_sa_message()) {
        prop_assert_eq!(SaMessage::decode(&m.encode()), Some(m));
    }

    #[test]
    fn status_update_roundtrip(s in arb_status()) {
        prop_assert_eq!(StatusUpdate::decode(&s.encode()), Some(s));
    }

    /// The fallback: payloads in the pre-binary JSON wire format (a
    /// retained log from an older build, a mid-rollout peer) decode to
    /// the same message.
    #[test]
    fn json_fallback_decodes_old_payloads(m in arb_sa_message(), s in arb_status()) {
        let json = serde_json::to_vec(&m).expect("serialise");
        prop_assert_eq!(SaMessage::decode(&json), Some(m));
        let json = serde_json::to_vec(&s).expect("serialise");
        prop_assert_eq!(StatusUpdate::decode(&json), Some(s));
    }

    /// Truncating a binary payload anywhere yields None, never a panic
    /// or a silently different message.
    #[test]
    fn truncated_binary_rejected(m in arb_sa_message(), cut in 0usize..64) {
        let bytes = m.encode();
        if cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - 1 - cut];
            prop_assert_eq!(SaMessage::decode(truncated), None);
        }
    }

    /// Appending garbage to a binary payload is corruption, not
    /// leniency.
    #[test]
    fn trailing_garbage_rejected(s in arb_status(), tail in 1u8..=255) {
        let mut bytes = s.encode().to_vec();
        bytes.push(tail);
        prop_assert_eq!(StatusUpdate::decode(&bytes), None);
    }

    /// Arbitrary bytes never panic the decoder (binary or JSON path).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = SaMessage::decode(&bytes);
        let _ = StatusUpdate::decode(&bytes);
    }
}

#[test]
fn rule_values_survive_via_json_leaf() {
    // Higher-order values: a rule shipped as a result rides the codec's
    // embedded-JSON leaf (tag 8).
    let rule = ginflow_hocl::Rule::builder("drop_int")
        .lhs([ginflow_hocl::Pattern::var("x")])
        .build();
    let m = SaMessage::Result {
        from: "T1".into(),
        value: Value::rule(rule),
    };
    assert_eq!(SaMessage::decode(&m.encode()), Some(m));
}
