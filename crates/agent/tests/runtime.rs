//! Integration tests of the threaded runtime: real threads, real brokers,
//! the complete decentralised protocol — normal runs, adaptation and
//! crash/recovery.

use ginflow_agent::{RunOptions, Scheduler};
use ginflow_core::workflow::{ReplacementTask, WorkflowBuilder};
use ginflow_core::{
    patterns, Connectivity, FailingService, ServiceRegistry, TaskState, Value, Workflow,
};
use ginflow_mq::{Broker, BrokerKind, LogBroker};
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(20);

fn fig2() -> Workflow {
    let mut b = WorkflowBuilder::new("fig2");
    b.task("T1", "s1").input(Value::str("input"));
    b.task("T2", "s2").after(["T1"]);
    b.task("T3", "s3").after(["T1"]);
    b.task("T4", "s4").after(["T2", "T3"]);
    b.build().unwrap()
}

fn fig5() -> Workflow {
    let mut b = WorkflowBuilder::new("fig5");
    b.task("T1", "s1").input(Value::str("input"));
    b.task("T2", "s2").after(["T1"]);
    b.task("T3", "s3").after(["T1"]);
    b.task("T4", "s4").after(["T2", "T3"]);
    b.adaptation(
        "replace-T2",
        ["T2"],
        ["T2"],
        [ReplacementTask::new("T2'", "s2p", ["T1"])],
    );
    b.build().unwrap()
}

fn tracing_registry() -> Arc<ServiceRegistry> {
    Arc::new(ServiceRegistry::tracing_for([
        "s1", "s2", "s3", "s4", "s2p", "noop",
    ]))
}

#[test]
fn fig2_completes_on_transient_broker() {
    let runtime = Scheduler::new(BrokerKind::Transient.build(), tracing_registry());
    let run = runtime.launch(&fig2());
    let results = run.wait(WAIT).expect("workflow completes");
    assert_eq!(
        results["T4"],
        Value::Str("s4(s2(s1(input)),s3(s1(input)))".into())
    );
    assert_eq!(run.state_of("T1"), Some(TaskState::Completed));
    run.shutdown();
}

#[test]
fn fig2_completes_on_log_broker() {
    let runtime = Scheduler::new(BrokerKind::Log.build(), tracing_registry());
    let run = runtime.launch(&fig2());
    let results = run.wait(WAIT).expect("workflow completes");
    assert_eq!(
        results["T4"],
        Value::Str("s4(s2(s1(input)),s3(s1(input)))".into())
    );
    run.shutdown();
}

#[test]
fn decentralised_matches_centralized_reference() {
    // D3 in DESIGN.md: both execution paths must agree.
    let wf = fig2();
    let registry = tracing_registry();
    let centralized = ginflow_hoclflow::run(
        &wf,
        &registry,
        ginflow_hoclflow::CentralizedConfig::default(),
    )
    .unwrap();
    let runtime = Scheduler::new(BrokerKind::Transient.build(), registry.clone());
    let run = runtime.launch(&wf);
    let results = run.wait(WAIT).expect("workflow completes");
    assert_eq!(Some(&results["T4"]), centralized.result_of("T4"));
    run.shutdown();
}

#[test]
fn adaptation_reroutes_around_failing_service() {
    // §III-C end-to-end on threads: T2's service always fails; T2' takes
    // over transparently.
    let mut registry = ServiceRegistry::tracing_for(["s1", "s3", "s4", "s2p"]);
    registry.register("s2", Arc::new(FailingService));
    let runtime = Scheduler::new(BrokerKind::Transient.build(), Arc::new(registry));
    let run = runtime.launch(&fig5());
    let results = run.wait(WAIT).expect("adaptation must complete the run");
    assert_eq!(
        results["T4"],
        Value::Str("s4(s2p(s1(input)),s3(s1(input)))".into())
    );
    assert_eq!(run.state_of("T2"), Some(TaskState::Failed));
    assert_eq!(run.state_of("T2'"), Some(TaskState::Completed));
    run.shutdown();
}

#[test]
fn diamond_completes_decentralised() {
    let wf = patterns::diamond(4, 4, Connectivity::Full, "noop").unwrap();
    let runtime = Scheduler::new(BrokerKind::Transient.build(), tracing_registry());
    let run = runtime.launch(&wf);
    let results = run.wait(WAIT).expect("diamond completes");
    assert!(results.contains_key("out"));
    run.shutdown();
}

#[test]
fn killed_agent_recovers_via_log_replay() {
    // §IV-B: crash T2 before it can run, then respawn it; the replayed
    // inbox rebuilds its state and the workflow completes.
    let broker: Arc<dyn Broker> = Arc::new(LogBroker::new());
    let runtime = Scheduler::new(broker, tracing_registry());
    let run = runtime.launch(&fig2());

    assert!(run.kill("T2"));
    // Let the crash take effect (agent observes the flag within a poll).
    std::thread::sleep(Duration::from_millis(50));
    assert!(!run.alive("T2"));

    assert!(run.respawn("T2"));
    assert_eq!(run.incarnation("T2"), 1);
    let results = run.wait(WAIT).expect("recovered workflow completes");
    assert_eq!(
        results["T4"],
        Value::Str("s4(s2(s1(input)),s3(s1(input)))".into())
    );
    run.shutdown();
}

#[test]
fn duplicate_results_after_recovery_do_not_cascade() {
    // Kill T1 *after* it completed: the respawned T1 re-invokes and
    // re-sends its result; successors must ignore the duplicates (the
    // paper's one-shot-rule argument).
    let broker: Arc<dyn Broker> = Arc::new(LogBroker::new());
    let runtime = Scheduler::new(broker, tracing_registry());
    let run = runtime.launch(&fig2());
    let results = run.wait(WAIT).expect("first run completes");

    assert!(run.kill("T1") || !run.alive("T1"));
    std::thread::sleep(Duration::from_millis(50));
    run.respawn("T1");
    // Give the replayed incarnation time to re-run and re-send.
    std::thread::sleep(Duration::from_millis(300));
    // The sink's result is unchanged.
    assert_eq!(run.result_of("T4"), Some(results["T4"].clone()));
    run.shutdown();
}

/// A tracing service that takes a while — lets tests land a kill while
/// the producer is still computing, deterministically.
struct SlowTrace(ginflow_core::TraceService, Duration);

impl ginflow_core::Service for SlowTrace {
    fn invoke(&self, params: &[Value]) -> Result<Value, ginflow_core::ServiceError> {
        std::thread::sleep(self.1);
        self.0.invoke(params)
    }
}

#[test]
fn recovery_without_persistence_cannot_replay() {
    // On the transient broker a respawned agent has no history: T2 never
    // learns about T1's result, so the workflow hangs. s1 is slowed so
    // the kill always lands before T1's result is even sent (the
    // event-driven scheduler is otherwise fast enough to deliver it
    // before the kill).
    let mut registry = ServiceRegistry::tracing_for(["s2", "s3", "s4"]);
    registry.register(
        "s1",
        Arc::new(SlowTrace(
            ginflow_core::TraceService::new("s1"),
            Duration::from_millis(300),
        )),
    );
    let runtime = Scheduler::new(BrokerKind::Transient.build(), Arc::new(registry));
    let run = runtime.launch(&fig2());
    // Kill T2 while T1 still computes; T1's result message will be
    // consumed by the old (dead) subscription or dropped.
    run.kill("T2");
    std::thread::sleep(Duration::from_millis(500));
    run.respawn("T2");
    let err = run.wait(Duration::from_secs(1));
    assert!(err.is_err(), "transient broker cannot support recovery");
    run.shutdown();
}

#[test]
fn auto_recovery_restarts_dead_agents() {
    let broker: Arc<dyn Broker> = Arc::new(LogBroker::new());
    let runtime = Scheduler::new(broker, tracing_registry()).with_options(RunOptions {
        auto_recover: true,
        ..RunOptions::default()
    });
    let run = runtime.launch(&fig2());
    run.kill("T3");
    // Let the crash take effect and the monitor observe the dead thread
    // before measuring the outcome (the monitor scans every 10 ms).
    std::thread::sleep(Duration::from_millis(100));
    let results = run.wait(WAIT).expect("auto recovery completes the run");
    assert_eq!(
        results["T4"],
        Value::Str("s4(s2(s1(input)),s3(s1(input)))".into())
    );
    assert!(run.incarnation("T3") >= 1, "T3 was respawned");
    run.shutdown();
}

#[test]
fn repeated_crashes_eventually_complete() {
    // "a restarted agent can fail again" — crash T2 a few times in a row.
    let broker: Arc<dyn Broker> = Arc::new(LogBroker::new());
    let runtime = Scheduler::new(broker, tracing_registry());
    let run = runtime.launch(&fig2());
    for _ in 0..3 {
        run.kill("T2");
        std::thread::sleep(Duration::from_millis(30));
        run.respawn("T2");
        std::thread::sleep(Duration::from_millis(30));
    }
    let results = run.wait(WAIT).expect("completes after repeated crashes");
    assert_eq!(
        results["T4"],
        Value::Str("s4(s2(s1(input)),s3(s1(input)))".into())
    );
    run.shutdown();
}

#[test]
fn deprecated_threaded_runtime_alias_still_compiles() {
    // The historical entry point stays usable for one release.
    #[allow(deprecated)]
    let runtime =
        ginflow_agent::ThreadedRuntime::new(BrokerKind::Transient.build(), tracing_registry());
    let run = runtime.launch(&fig2());
    let results = run.wait(WAIT).expect("alias still executes workflows");
    assert!(results.contains_key("T4"));
    run.shutdown();
}
