//! Machinery shared by both runtimes (the event-driven
//! [`crate::scheduler::Scheduler`] and the legacy thread-per-agent
//! backend): command execution, the status board, and the status
//! collector loop.

use crate::core::{Command, Event, SaCore};
use crate::message::{topics, StatusUpdate};
use crate::runtime::WaitError;
use ginflow_core::{ServiceRegistry, TaskState, Value};
use ginflow_mq::{Broker, Subscription};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything needed to run one agent's events: the broker for sends and
/// status publishes, the registry for service invocations, and the
/// agent's identity.
pub(crate) struct AgentCtx<'a> {
    pub broker: &'a dyn Broker,
    pub registry: &'a ServiceRegistry,
    pub name: &'a str,
    pub incarnation: u32,
}

impl AgentCtx<'_> {
    /// Run one event through the core and execute every resulting
    /// command, feeding service completions back in until quiescence.
    pub fn dispatch(&self, core: &mut SaCore, event: Event) -> Result<(), ()> {
        let mut queue: VecDeque<Event> = VecDeque::from([event]);
        while let Some(event) = queue.pop_front() {
            let commands = core.handle(event).map_err(|_| ())?;
            for command in commands {
                match command {
                    Command::Invoke {
                        effect,
                        service,
                        params,
                    } => {
                        let result = match self.registry.get(&service) {
                            Some(s) => s.invoke(&params).map_err(|e| e.message),
                            None => Err(format!("unknown service {service:?}")),
                        };
                        queue.push_back(Event::ServiceCompleted { effect, result });
                    }
                    Command::Send { to, message } => {
                        let _ = self.broker.publish(
                            &topics::inbox(&to),
                            Some(bytes::Bytes::from(to.clone().into_bytes())),
                            message.encode(),
                        );
                    }
                    Command::Publish { state, result } => {
                        let update = StatusUpdate {
                            task: self.name.to_owned(),
                            state,
                            result,
                            incarnation: self.incarnation,
                        };
                        let _ = self.broker.publish(topics::STATUS, None, update.encode());
                    }
                }
            }
        }
        Ok(())
    }
}

/// The observed workflow state: latest status update per task, with a
/// condvar so waiters block instead of polling.
#[derive(Default)]
pub(crate) struct StatusBoard {
    statuses: Mutex<HashMap<String, StatusUpdate>>,
    changed: Condvar,
}

impl StatusBoard {
    /// Record an update and wake waiters.
    pub fn record(&self, update: StatusUpdate) {
        self.statuses.lock().insert(update.task.clone(), update);
        self.changed.notify_all();
    }

    /// Latest observed state of a task.
    pub fn state_of(&self, task: &str) -> Option<TaskState> {
        self.statuses.lock().get(task).map(|s| s.state)
    }

    /// Latest observed result of a task.
    pub fn result_of(&self, task: &str) -> Option<Value> {
        self.statuses
            .lock()
            .get(task)
            .and_then(|s| s.result.clone())
    }

    /// Snapshot of all observed task states, sorted by task name.
    pub fn snapshot(&self) -> Vec<(String, TaskState)> {
        let mut v: Vec<(String, TaskState)> = self
            .statuses
            .lock()
            .iter()
            .map(|(k, s)| (k.clone(), s.state))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Block (no polling — woken by [`StatusBoard::record`]) until every
    /// sink completed, returning their results.
    pub fn wait_for_sinks(
        &self,
        sinks: &[String],
        timeout: Duration,
    ) -> Result<HashMap<String, Value>, WaitError> {
        let deadline = Instant::now() + timeout;
        let mut statuses = self.statuses.lock();
        loop {
            let done = sinks
                .iter()
                .all(|s| statuses.get(s).map(|u| u.state) == Some(TaskState::Completed));
            if done {
                return Ok(sinks
                    .iter()
                    .filter_map(|s| {
                        statuses
                            .get(s)
                            .and_then(|u| u.result.clone())
                            .map(|r| (s.clone(), r))
                    })
                    .collect());
            }
            let now = Instant::now();
            if now >= deadline {
                let mut snapshot: Vec<(String, TaskState)> =
                    statuses.iter().map(|(k, s)| (k.clone(), s.state)).collect();
                snapshot.sort_by(|a, b| a.0.cmp(&b.0));
                return Err(WaitError::Timeout { statuses: snapshot });
            }
            self.changed.wait_for(&mut statuses, deadline - now);
        }
    }
}

/// The status collector: drains the shared status topic into the board.
/// Fully blocking — woken by deliveries, and by the empty-payload
/// sentinel [`publish_shutdown_sentinel`] emits at shutdown.
pub(crate) fn status_loop(board: Arc<StatusBoard>, sub: Subscription, shutdown: Arc<AtomicBool>) {
    loop {
        match sub.recv() {
            Ok(msg) => match StatusUpdate::decode(&msg.payload) {
                Some(update) => board.record(update),
                // Undecodable payloads are the shutdown sentinel (or
                // foreign noise on a shared broker; either way, check).
                None => {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
            },
            Err(_) => return,
        }
    }
}

/// Wake every status collector on the broker so it can observe its
/// shutdown flag. Runs sharing a broker ignore each other's sentinels.
pub(crate) fn publish_shutdown_sentinel(broker: &dyn Broker) {
    let _ = broker.publish(topics::STATUS, None, bytes::Bytes::new());
}
