//! Machinery shared by both runtimes (the event-driven
//! [`crate::scheduler::Scheduler`] and the legacy thread-per-agent
//! backend): command execution, the status board, and the status
//! collector loop.

use crate::core::{Command, Event, SaCore};
use crate::engine::{RunTracker, TaskReport};
use crate::message::StatusUpdate;
use crate::runtime::WaitError;
use ginflow_core::{ServiceRegistry, TaskState, Value};
use ginflow_mq::{Broker, Subscription, TopicNamespace};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything needed to run one agent's events: the broker for sends and
/// status publishes, the run's topic namespace, the registry for service
/// invocations, and the agent's identity.
pub(crate) struct AgentCtx<'a> {
    pub broker: &'a dyn Broker,
    pub ns: &'a TopicNamespace,
    pub registry: &'a ServiceRegistry,
    pub name: &'a str,
    pub incarnation: u32,
}

impl AgentCtx<'_> {
    /// Run one event through the core and execute every resulting
    /// command, feeding service completions back in until quiescence.
    pub fn dispatch(&self, core: &mut SaCore, event: Event) -> Result<(), ()> {
        let mut queue: VecDeque<Event> = VecDeque::from([event]);
        while let Some(event) = queue.pop_front() {
            let commands = core.handle(event).map_err(|_| ())?;
            for command in commands {
                match command {
                    Command::Invoke {
                        effect,
                        service,
                        params,
                    } => {
                        let result = match self.registry.get(&service) {
                            Some(s) => s.invoke(&params).map_err(|e| e.message),
                            None => Err(format!("unknown service {service:?}")),
                        };
                        queue.push_back(Event::ServiceCompleted { effect, result });
                    }
                    Command::Send { to, message } => {
                        // Destinations come from the compiled DAG, whose
                        // names were validated at launch; a name the
                        // namespace rejects has no inbox to lose a
                        // message to, matching the ignored-publish path.
                        // Fire-and-forget pipelined publish: neither
                        // send consumes the receipt, and on a remote
                        // broker the blocking round trip would be the
                        // whole coordination hot path.
                        if let Ok(topic) = self.ns.inbox(&to) {
                            let _ = self.broker.publish_nowait(
                                &topic,
                                Some(bytes::Bytes::from(to.clone().into_bytes())),
                                message.encode(),
                            );
                        }
                    }
                    Command::Publish { state, result } => {
                        let update = StatusUpdate {
                            task: self.name.to_owned(),
                            state,
                            result,
                            incarnation: self.incarnation,
                        };
                        let _ = self
                            .broker
                            .publish_nowait(self.ns.status(), None, update.encode());
                    }
                }
            }
        }
        Ok(())
    }
}

/// Per-task record on the board: latest accepted update plus timing
/// marks relative to the board's epoch (= launch time). The fold itself
/// is [`TaskReport::absorb`], shared with the sim backend's trace
/// replay so per-task observation semantics cannot diverge.
struct BoardState {
    tasks: HashMap<String, TaskReport>,
    /// Set when the run is torn down while waiters may still block.
    closed: bool,
}

/// The observed workflow state: latest status update per task, with a
/// condvar so waiters block instead of polling.
pub(crate) struct StatusBoard {
    epoch: Instant,
    state: Mutex<BoardState>,
    changed: Condvar,
}

impl StatusBoard {
    /// Fresh board; its epoch (the zero of all task timings) is now.
    pub fn new() -> Self {
        StatusBoard {
            epoch: Instant::now(),
            state: Mutex::new(BoardState {
                tasks: HashMap::new(),
                closed: false,
            }),
            changed: Condvar::new(),
        }
    }

    /// Time since launch.
    pub fn elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Record an update and wake waiters. Returns `false` (update
    /// ignored) for stale publishes from a superseded incarnation.
    pub fn record(&self, update: StatusUpdate) -> bool {
        let now = self.epoch.elapsed();
        let mut s = self.state.lock();
        let accepted = s
            .tasks
            .entry(update.task.clone())
            .or_default()
            .absorb(&update, now);
        drop(s);
        if accepted {
            self.changed.notify_all();
        }
        accepted
    }

    /// Mark the board closed (run torn down) and wake every waiter so it
    /// can observe the cancellation instead of blocking out its timeout.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.changed.notify_all();
    }

    /// Latest observed state of a task.
    pub fn state_of(&self, task: &str) -> Option<TaskState> {
        self.state.lock().tasks.get(task).map(|s| s.state)
    }

    /// Latest observed result of a task.
    pub fn result_of(&self, task: &str) -> Option<Value> {
        self.state
            .lock()
            .tasks
            .get(task)
            .and_then(|s| s.result.clone())
    }

    /// Snapshot of all observed task states, sorted by task name.
    pub fn snapshot(&self) -> Vec<(String, TaskState)> {
        let mut v: Vec<(String, TaskState)> = self
            .state
            .lock()
            .tasks
            .iter()
            .map(|(k, s)| (k.clone(), s.state))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Per-task detail for [`crate::engine::RunReport`]; `names` seeds
    /// the map so never-observed tasks appear as `Idle`.
    pub fn task_reports(&self, names: &[String]) -> BTreeMap<String, TaskReport> {
        let s = self.state.lock();
        let mut out: BTreeMap<String, TaskReport> = names
            .iter()
            .map(|n| (n.clone(), TaskReport::default()))
            .collect();
        for (name, entry) in &s.tasks {
            out.insert(name.clone(), entry.clone());
        }
        out
    }

    /// Block (no polling — woken by [`StatusBoard::record`]) until every
    /// sink completed, returning their results. A sink that completed
    /// without publishing a result is an error, not a silent omission.
    pub fn wait_for_sinks(
        &self,
        sinks: &[String],
        timeout: Duration,
    ) -> Result<HashMap<String, Value>, WaitError> {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock();
        loop {
            let done = sinks
                .iter()
                .all(|t| s.tasks.get(t).map(|u| u.state) == Some(TaskState::Completed));
            if done {
                let mut results = HashMap::with_capacity(sinks.len());
                for task in sinks {
                    match s.tasks.get(task).and_then(|u| u.result.clone()) {
                        Some(r) => {
                            results.insert(task.clone(), r);
                        }
                        None => {
                            return Err(WaitError::MissingResult { task: task.clone() });
                        }
                    }
                }
                return Ok(results);
            }
            if s.closed {
                return Err(WaitError::Cancelled);
            }
            let now = Instant::now();
            if now >= deadline {
                let mut snapshot: Vec<(String, TaskState)> =
                    s.tasks.iter().map(|(k, u)| (k.clone(), u.state)).collect();
                snapshot.sort_by(|a, b| a.0.cmp(&b.0));
                return Err(WaitError::Timeout { statuses: snapshot });
            }
            self.changed.wait_for(&mut s, deadline - now);
        }
    }
}

/// The status collector: drains the shared status topic into the board
/// and feeds accepted updates through the run tracker (deriving the
/// typed [`crate::engine::RunEvent`] stream). Fully blocking — woken by
/// deliveries, and by the empty-payload sentinel
/// [`publish_shutdown_sentinel`] emits at shutdown.
pub(crate) fn status_loop(
    board: Arc<StatusBoard>,
    tracker: Arc<RunTracker>,
    sub: Subscription,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        match sub.recv() {
            Ok(msg) => match StatusUpdate::decode(&msg.payload) {
                Some(update) => {
                    if board.record(update.clone()) {
                        tracker.observe(&update);
                    }
                }
                // Undecodable payloads are the shutdown sentinel (or
                // foreign noise on a shared broker; either way, check).
                None => {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
            },
            Err(_) => return,
        }
    }
}

/// Wake this run's status collectors so they can observe their shutdown
/// flag. The status topic is run-scoped, so other runs on the same
/// broker never even see the sentinel.
pub(crate) fn publish_shutdown_sentinel(broker: &dyn Broker, ns: &TopicNamespace) {
    let _ = broker.publish(ns.status(), None, bytes::Bytes::new());
}
