//! The event-driven, sharded worker-pool scheduler.
//!
//! The seed runtime gave every service agent its own OS thread polling
//! its inbox every 5 ms — fine for the paper's 118-task Montage run,
//! hopeless for thousands of agents (a 1000-agent workflow burns 200k
//! wakeups/second just to discover nothing happened). This module keeps
//! the *agents* (the sans-IO [`SaCore`] state machines are untouched)
//! and replaces the *execution vehicle*:
//!
//! * a fixed pool of N worker threads (N ≪ agents, default = CPU count)
//!   drives every agent in the workflow;
//! * each agent is an [`AgentSlot`] parked until its inbox topic wakes
//!   it — `ginflow-mq` brokers now notify subscriptions on publish (see
//!   [`ginflow_mq::Subscription::set_waker`]), so an idle workflow
//!   consumes zero CPU;
//! * slots are *sharded*: an agent's name hashes to one worker, and only
//!   that worker ever runs it. One agent's events therefore execute
//!   strictly in order with no core-level contention, while distinct
//!   agents run in parallel across shards;
//! * the §IV-B recovery manager re-enqueues a fresh agent incarnation
//!   through the same ready-queues, replaying the persistent inbox with
//!   [`SubscribeMode::Beginning`] — recovery is just another wakeup.
//!
//! The wakeup protocol is the classic "schedule bit" of task executors:
//! a waker sets [`AgentSlot::scheduled`] and enqueues the slot only on a
//! false→true transition; the worker clears the bit after draining and
//! re-checks the backlog, so a publish racing the drain can never be
//! lost.
//!
//! The thread-per-agent backend survives behind
//! [`RunOptions::legacy_threads`] for A/B benchmarking (see
//! `crates/bench`, `scheduler_scale`).

use crate::core::{Event, SaCore};
use crate::engine::{
    ExecutionBackend, RunControl, RunEvents, RunFailure, RunHandle, RunMeta, RunOutcome, RunReport,
    RunTracker,
};
use crate::exec::{publish_shutdown_sentinel, status_loop, AgentCtx, StatusBoard};
use crate::message::SaMessage;
use crate::runtime::{launch_legacy, LegacyRun, RunOptions, WaitError};
use ginflow_core::{ServiceRegistry, TaskState, Value, Workflow};
use ginflow_hoclflow::{agent_programs, AdaptPlan, AgentProgram};
use ginflow_mq::metrics::{Counter, Gauge, Histogram};
use ginflow_mq::{Broker, LagProbe, RunId, SubscribeMode, Subscription, TopicNamespace};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Max events one slot processes per scheduling turn before yielding the
/// worker — keeps one chatty agent from starving its shard.
const BATCH: usize = 64;

/// Scheduler-side handles into the process-global metrics registry
/// (`gf_sched_*`), resolved once — every pool in the process shares
/// them, so the gauges aggregate across concurrent runs.
struct SchedMetrics {
    /// Agent turns currently queued on (or being drained from) the
    /// shard ready-queues.
    ready_depth: Arc<Gauge>,
    /// Wakeups enqueued: schedule-bit false→true transitions, from
    /// inbox wakers and control-plane scheduling alike.
    wakeups: Arc<Counter>,
    /// Events an agent drained in one scheduling turn (capped at
    /// [`BATCH`]) — the wakeup batching the event-driven pool buys
    /// over per-message thread wakeups.
    wakeup_batch: Arc<Histogram>,
}

fn sched_metrics() -> &'static SchedMetrics {
    static M: OnceLock<SchedMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let m = ginflow_mq::metrics::global();
        SchedMetrics {
            ready_depth: m.gauge(
                "gf_sched_ready_depth",
                "Agent turns queued on worker-pool shard ready-queues",
            ),
            wakeups: m.counter(
                "gf_sched_wakeups_total",
                "Agent wakeups enqueued (schedule-bit transitions)",
            ),
            wakeup_batch: m.histogram(
                "gf_sched_wakeup_batch",
                "Events drained per agent scheduling turn",
            ),
        }
    })
}

/// The launcher: compiles workflows and runs every agent on the worker
/// pool (or, with [`RunOptions::legacy_threads`], on the seed's
/// thread-per-agent backend). Deployment strategies (`ginflow-executor`)
/// decide *where* agents go; this scheduler is the *how*.
pub struct Scheduler {
    broker: Arc<dyn Broker>,
    registry: Arc<ServiceRegistry>,
    options: RunOptions,
}

impl Scheduler {
    /// Scheduler over a broker and service registry.
    pub fn new(broker: Arc<dyn Broker>, registry: Arc<ServiceRegistry>) -> Self {
        Scheduler {
            broker,
            registry,
            options: RunOptions::default(),
        }
    }

    /// Override the default options.
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Compile `workflow` and launch one agent per task.
    pub fn launch(&self, workflow: &Workflow) -> WorkflowRun {
        let (agents, plans) = agent_programs(workflow);
        self.launch_programs(agents, plans)
    }

    /// Launch pre-compiled agent programs.
    ///
    /// Every topic of the launch lives in the run's namespace
    /// (`run/<id>/…`): the id is [`RunOptions::run_id`] when pinned
    /// (mandatory for multi-process sharding — every shard must join
    /// the same namespace), freshly generated otherwise, so two
    /// launches against one shared broker never see each other's
    /// messages.
    ///
    /// # Panics
    ///
    /// When an agent's name cannot form a topic segment (empty,
    /// contains `/` or control characters — see
    /// [`ginflow_mq::namespace::validate_segment`]); validate upstream
    /// to fail gracefully, as the CLI does.
    pub fn launch_programs(&self, agents: Vec<AgentProgram>, plans: Vec<AdaptPlan>) -> WorkflowRun {
        let run_id = self.options.run_id.clone().unwrap_or_else(RunId::generate);
        let ns = Arc::new(TopicNamespace::new(run_id.clone()));
        let tracker = Arc::new(RunTracker::new(
            RunMeta::from_programs(&agents, &plans),
            run_id,
        ));
        if self.options.legacy_threads {
            WorkflowRun {
                backend: Backend::Legacy(launch_legacy(
                    self.broker.clone(),
                    self.registry.clone(),
                    agents,
                    plans,
                    tracker,
                    ns,
                    self.options.clone(),
                )),
            }
        } else {
            WorkflowRun {
                backend: Backend::Pool(launch_pool(
                    self.broker.clone(),
                    self.registry.clone(),
                    agents,
                    plans,
                    tracker,
                    ns,
                    self.options.clone(),
                )),
            }
        }
    }
}

impl ExecutionBackend for Scheduler {
    fn name(&self) -> &'static str {
        if self.options.shard.is_some() {
            "sharded"
        } else if self.options.legacy_threads {
            "legacy-threads"
        } else {
            "scheduler"
        }
    }

    fn launch_run(&self, workflow: &Workflow) -> RunHandle {
        RunHandle::new(Arc::new(Scheduler::launch(self, workflow)))
    }
}

/// A launched workflow: status observation, fault injection, recovery.
/// Facade over whichever backend executed the launch.
pub struct WorkflowRun {
    backend: Backend,
}

enum Backend {
    Pool(PoolRun),
    Legacy(LegacyRun),
}

impl WorkflowRun {
    /// Latest observed state of a task.
    pub fn state_of(&self, task: &str) -> Option<TaskState> {
        self.board().state_of(task)
    }

    /// Latest observed result of a task.
    pub fn result_of(&self, task: &str) -> Option<Value> {
        self.board().result_of(task)
    }

    /// Snapshot of all observed task states.
    pub fn statuses(&self) -> Vec<(String, TaskState)> {
        self.board().snapshot()
    }

    /// Block until every sink task completes; returns their results.
    pub fn wait(&self, timeout: Duration) -> Result<HashMap<String, Value>, WaitError> {
        match &self.backend {
            Backend::Pool(run) => run.inner.board.wait_for_sinks(&run.inner.sinks, timeout),
            Backend::Legacy(run) => run.wait(timeout),
        }
    }

    /// Crash a task's agent (it stops consuming; all local state is
    /// lost). Returns whether the agent existed and was alive.
    pub fn kill(&self, task: &str) -> bool {
        match &self.backend {
            Backend::Pool(run) => run.inner.kill(task),
            Backend::Legacy(run) => run.kill(task),
        }
    }

    /// Is the task's agent still alive (scheduled or parked, not dead)?
    pub fn alive(&self, task: &str) -> bool {
        match &self.backend {
            Backend::Pool(run) => run.inner.alive(task),
            Backend::Legacy(run) => run.alive(task),
        }
    }

    /// Manually start a replacement agent for `task` (§IV-B recovery).
    /// On a persistent broker the newcomer replays the full inbox
    /// history.
    pub fn respawn(&self, task: &str) -> bool {
        match &self.backend {
            Backend::Pool(run) => run.inner.respawn(task),
            Backend::Legacy(run) => run.respawn(task),
        }
    }

    /// Current incarnation number of a task's agent.
    pub fn incarnation(&self, task: &str) -> u32 {
        match &self.backend {
            Backend::Pool(run) => run.inner.incarnation(task),
            Backend::Legacy(run) => run.incarnation(task),
        }
    }

    /// Subscribe to the typed run event stream (full history replayed
    /// first, then live) — see [`crate::engine::RunEvent`].
    pub fn events(&self) -> RunEvents {
        self.tracker().subscribe()
    }

    /// The run's id — the key of the topic namespace (`run/<id>/…`) this
    /// run coordinates under.
    pub fn run_id(&self) -> &RunId {
        self.tracker().run_id()
    }

    /// Cancel the run: emits `RunFailed(Cancelled)`, tears every agent
    /// down through the broker and joins all threads before returning.
    pub fn cancel(&self) {
        self.cancel_with_failure(RunFailure::Cancelled);
    }

    /// Structured snapshot of the run (partial while still executing).
    pub fn report(&self) -> RunReport {
        let board = self.board();
        let tracker = self.tracker();
        let tasks = board.task_reports(&tracker.meta().tasks);
        let outcome = tracker.outcome();
        let (adaptations_fired, respawns) = tracker.counts();
        // After a terminal event the observed makespan is the last task
        // transition, not "now"; mid-flight the clock is still running.
        let wall = if outcome.is_some() {
            tasks
                .values()
                .filter_map(|t| t.finished_at)
                .max()
                .unwrap_or_else(|| board.elapsed())
        } else {
            board.elapsed()
        };
        RunReport {
            backend: self.backend_label(),
            run_id: tracker.run_id().as_str().to_owned(),
            completed: outcome == Some(RunOutcome::Completed),
            cancelled: outcome == Some(RunOutcome::Failed(RunFailure::Cancelled)),
            deadline_expired: outcome == Some(RunOutcome::Failed(RunFailure::DeadlineExpired)),
            wall,
            adaptations_fired,
            respawns,
            lagged: self.lagged(),
            metrics: ginflow_mq::metrics::global().snapshot_run(tracker.run_id().as_str()),
            tasks,
        }
    }

    /// Messages this run's broker subscriptions dropped to their queue
    /// bound (drop-oldest policy on the transient profile), cumulative
    /// over every subscription the run ever opened — respawned
    /// incarnations included.
    pub fn lagged(&self) -> u64 {
        match &self.backend {
            Backend::Pool(run) => run.inner.lagged(),
            Backend::Legacy(run) => run.lagged(),
        }
    }

    /// Stop everything and join all threads.
    pub fn shutdown(self) {
        self.stop();
    }

    /// Backend label ("scheduler" / "sharded" / "legacy-threads").
    pub fn backend_label(&self) -> &'static str {
        match &self.backend {
            Backend::Pool(run) => run.inner.label,
            Backend::Legacy(_) => "legacy-threads",
        }
    }

    fn board(&self) -> &StatusBoard {
        match &self.backend {
            Backend::Pool(run) => &run.inner.board,
            Backend::Legacy(run) => run.board(),
        }
    }

    fn tracker(&self) -> &Arc<RunTracker> {
        match &self.backend {
            Backend::Pool(run) => &run.inner.tracker,
            Backend::Legacy(run) => run.tracker(),
        }
    }

    fn cancel_with_failure(&self, failure: RunFailure) {
        self.tracker().fail(failure);
        self.stop();
    }

    fn stop(&self) {
        match &self.backend {
            Backend::Pool(run) => run.stop(),
            Backend::Legacy(run) => run.stop(),
        }
    }
}

impl Drop for WorkflowRun {
    fn drop(&mut self) {
        self.stop();
    }
}

/// `WorkflowRun` *is* the scheduler's run-control implementation: the
/// unified [`RunHandle`] wraps it directly.
impl RunControl for WorkflowRun {
    fn backend(&self) -> &'static str {
        self.backend_label()
    }

    fn run_id(&self) -> String {
        WorkflowRun::run_id(self).as_str().to_owned()
    }

    fn state_of(&self, task: &str) -> Option<TaskState> {
        WorkflowRun::state_of(self, task)
    }

    fn result_of(&self, task: &str) -> Option<Value> {
        WorkflowRun::result_of(self, task)
    }

    fn statuses(&self) -> Vec<(String, TaskState)> {
        WorkflowRun::statuses(self)
    }

    fn kill(&self, task: &str) -> bool {
        WorkflowRun::kill(self, task)
    }

    fn respawn(&self, task: &str) -> bool {
        WorkflowRun::respawn(self, task)
    }

    fn alive(&self, task: &str) -> bool {
        WorkflowRun::alive(self, task)
    }

    fn incarnation(&self, task: &str) -> u32 {
        WorkflowRun::incarnation(self, task)
    }

    fn subscribe(&self) -> RunEvents {
        self.events()
    }

    fn wait_sinks(&self, timeout: Duration) -> Result<HashMap<String, Value>, WaitError> {
        self.wait(timeout)
    }

    fn cancel_with(&self, failure: RunFailure) {
        self.cancel_with_failure(failure);
    }

    fn stop(&self) {
        WorkflowRun::stop(self);
    }

    fn report(&self) -> RunReport {
        WorkflowRun::report(self)
    }
}

// ---------------------------------------------------------------------
// The worker pool
// ---------------------------------------------------------------------

/// One unit on a shard's ready-queue.
enum WorkItem {
    /// Run this agent (its schedule bit is set).
    Run(Arc<AgentSlot>),
    /// Worker exit (sent once per shard at shutdown).
    Shutdown,
}

/// Messages to the recovery manager.
enum ReaperMsg {
    /// An agent died (crash-flag observed, or its core errored).
    Dead(String),
    /// Manager exit.
    Shutdown,
}

/// One agent parked in the scheduler: the sans-IO core plus the wakeup
/// state. The core mutex is uncontended in steady state — sharding
/// guarantees a single worker ever locks it — and exists to make the
/// slot `Sync` for control-plane access (kill/respawn).
struct AgentSlot {
    name: String,
    incarnation: u32,
    shard: usize,
    core: Mutex<SaCore>,
    sub: Subscription,
    /// Crash flag (the paper's killed JVM): observed between events.
    kill: AtomicBool,
    /// Set once the agent will never run again.
    dead: AtomicBool,
    /// Has `Event::Start` been dispatched?
    started: AtomicBool,
    /// The schedule bit: true while queued or running.
    scheduled: AtomicBool,
}

struct PoolInner {
    broker: Arc<dyn Broker>,
    /// The run's topic namespace: every subscribe/publish goes through
    /// it, so the whole run lives under `run/<id>/…`.
    ns: Arc<TopicNamespace>,
    registry: Arc<ServiceRegistry>,
    /// Agent programs this process executes — in sharded mode, only the
    /// agents whose [`process_shard`] matches this process's shard.
    programs: HashMap<String, AgentProgram>,
    plans: Arc<Vec<AdaptPlan>>,
    slots: Mutex<HashMap<String, Arc<AgentSlot>>>,
    shards: Vec<crossbeam::channel::Sender<WorkItem>>,
    reaper: crossbeam::channel::Sender<ReaperMsg>,
    board: Arc<StatusBoard>,
    tracker: Arc<RunTracker>,
    shutdown: Arc<AtomicBool>,
    /// Every sink of the workflow, local or not: completion is observed
    /// through the shared status topic, the cross-shard membrane.
    sinks: Vec<String>,
    auto_recover: bool,
    /// Inbox subscription mode for (re)spawned agents: full replay in
    /// sharded-persistent mode, head-attach otherwise.
    inbox_mode: SubscribeMode,
    /// Lag probes of every subscription the run ever opened (status +
    /// every agent incarnation's inbox) — summed into
    /// [`crate::engine::RunReport::lagged`].
    lag_probes: Mutex<Vec<LagProbe>>,
    label: &'static str,
}

pub(crate) struct PoolRun {
    inner: Arc<PoolInner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    status_thread: Mutex<Option<JoinHandle<()>>>,
    recovery_thread: Mutex<Option<JoinHandle<()>>>,
}

/// FNV-1a over the agent name: the shard assignment.
fn shard_of(name: &str, shards: usize) -> usize {
    let mut hash: u32 = 0x811c9dc5;
    for &b in name.as_bytes() {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x01000193);
    }
    hash as usize % shards
}

/// The **process**-level shard an agent lands in when a workflow runs
/// as `count` OS processes ([`RunOptions::shard`]): the same FNV-1a
/// name-hash the worker pool uses inside one process, so placement is
/// deterministic across hosts with no coordination.
pub fn process_shard(name: &str, count: u32) -> u32 {
    shard_of(name, count.max(1) as usize) as u32
}

fn launch_pool(
    broker: Arc<dyn Broker>,
    registry: Arc<ServiceRegistry>,
    agents: Vec<AgentProgram>,
    plans: Vec<AdaptPlan>,
    tracker: Arc<RunTracker>,
    ns: Arc<TopicNamespace>,
    options: RunOptions,
) -> PoolRun {
    let workers = options.resolve_workers();
    let sinks: Vec<String> = agents
        .iter()
        .filter(|a| a.is_sink())
        .map(|a| a.name.clone())
        .collect();
    let board = Arc::new(StatusBoard::new());
    let shutdown = Arc::new(AtomicBool::new(false));

    // Sharded mode: this process hosts only its slice of the agents,
    // and — on a persistent broker — subscribes everything with full
    // replay: a process that starts (or restarts) after its peers have
    // already made progress catches up from the log instead of missing
    // it. §IV-B's recovery, applied to a whole process.
    let sharded = options.shard.is_some();
    let replay = sharded && broker.persistent();
    let is_local = |name: &str| match options.shard {
        Some((index, count)) => process_shard(name, count) == index,
        None => true,
    };
    let status_mode = if replay {
        SubscribeMode::Beginning
    } else {
        SubscribeMode::Latest
    };
    let inbox_mode = status_mode;
    let label = if sharded { "sharded" } else { "scheduler" };

    // Status collector first: no update may be missed.
    let status_sub = broker
        .subscribe(ns.status(), status_mode)
        .expect("status subscription");
    let status_lag = status_sub.lag_probe();
    let status_thread = {
        let board = board.clone();
        let tracker = tracker.clone();
        let shutdown = shutdown.clone();
        std::thread::Builder::new()
            .name("sa-status".into())
            .spawn(move || status_loop(board, tracker, status_sub, shutdown))
            .expect("spawn status thread")
    };

    let mut shard_txs = Vec::with_capacity(workers);
    let mut shard_rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = crossbeam::channel::unbounded();
        shard_txs.push(tx);
        shard_rxs.push(rx);
    }
    let (reaper_tx, reaper_rx) = crossbeam::channel::unbounded();

    let local_agents: Vec<AgentProgram> =
        agents.into_iter().filter(|a| is_local(&a.name)).collect();
    let inner = Arc::new(PoolInner {
        broker,
        ns,
        registry,
        programs: local_agents
            .iter()
            .map(|a| (a.name.clone(), a.clone()))
            .collect(),
        plans: Arc::new(plans),
        slots: Mutex::new(HashMap::new()),
        shards: shard_txs,
        reaper: reaper_tx,
        board,
        tracker,
        shutdown,
        sinks,
        auto_recover: options.auto_recover,
        inbox_mode,
        lag_probes: Mutex::new(vec![status_lag]),
        label,
    });

    // All inbox subscriptions are created before any agent is scheduled,
    // so no agent can publish to a not-yet-subscribed inbox. (Across
    // shard processes the same guarantee comes from `inbox_mode`
    // replay: whatever a peer published early is in the log — which is
    // why sharded mode requires a persistent broker; see
    // `RunOptions::shard`.)
    let mut fresh = Vec::with_capacity(local_agents.len());
    {
        // The namespace validates the task names here — the topic
        // boundary — so a name that would collide or split namespaces
        // fails the launch loudly. Subscriptions are opened in one
        // pipelined bulk call: on a remote broker that is one round
        // trip for the whole run, not one per agent.
        let topics: Vec<(String, ginflow_mq::SubscribeMode)> = local_agents
            .iter()
            .map(|program| {
                let topic = inner
                    .ns
                    .inbox(&program.name)
                    .unwrap_or_else(|e| panic!("cannot launch agent: {e}"));
                (topic, inner.inbox_mode)
            })
            .collect();
        let subs = inner
            .broker
            .subscribe_many(&topics)
            .expect("inbox subscriptions");
        let mut slots = inner.slots.lock();
        for (program, sub) in local_agents.into_iter().zip(subs) {
            inner.lag_probes.lock().push(sub.lag_probe());
            let slot = inner.make_slot(program, sub, 0);
            slots.insert(slot.name.clone(), slot.clone());
            fresh.push(slot);
        }
    }

    let workers_threads: Vec<JoinHandle<()>> = shard_rxs
        .into_iter()
        .enumerate()
        .map(|(i, rx)| {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name(format!("sa-worker-{i}"))
                .spawn(move || worker_loop(inner, rx))
                .expect("spawn worker thread")
        })
        .collect();

    let recovery_thread = {
        let inner = inner.clone();
        Some(
            std::thread::Builder::new()
                .name("sa-recovery".into())
                .spawn(move || recovery_loop(inner, reaper_rx))
                .expect("spawn recovery thread"),
        )
    };

    // Arm the wakeups, then hand every agent its Start turn.
    for slot in &fresh {
        inner.register_waker(slot);
    }
    for slot in &fresh {
        inner.schedule(slot);
    }

    PoolRun {
        inner,
        workers: Mutex::new(workers_threads),
        status_thread: Mutex::new(Some(status_thread)),
        recovery_thread: Mutex::new(recovery_thread),
    }
}

impl PoolInner {
    fn make_slot(
        self: &Arc<Self>,
        program: AgentProgram,
        sub: Subscription,
        incarnation: u32,
    ) -> Arc<AgentSlot> {
        let name = program.name.clone();
        let core = SaCore::new(program, self.plans.clone());
        Arc::new(AgentSlot {
            shard: shard_of(&name, self.shards.len()),
            name,
            incarnation,
            core: Mutex::new(core),
            sub,
            kill: AtomicBool::new(false),
            dead: AtomicBool::new(false),
            started: AtomicBool::new(false),
            scheduled: AtomicBool::new(false),
        })
    }

    /// Arm the inbox wakeup: deliveries set the schedule bit and enqueue
    /// the slot on its shard. Holds only a weak reference, so a replaced
    /// incarnation's waker quietly dies with its slot.
    fn register_waker(self: &Arc<Self>, slot: &Arc<AgentSlot>) {
        let weak: Weak<AgentSlot> = Arc::downgrade(slot);
        let shard = self.shards[slot.shard].clone();
        slot.sub.set_waker(move || {
            if let Some(slot) = weak.upgrade() {
                if !slot.dead.load(Ordering::SeqCst) && !slot.scheduled.swap(true, Ordering::SeqCst)
                {
                    let m = sched_metrics();
                    m.wakeups.inc();
                    m.ready_depth.add(1);
                    let _ = shard.send(WorkItem::Run(slot));
                }
            }
        });
    }

    /// Enqueue the slot if it is not already queued/running.
    fn schedule(&self, slot: &Arc<AgentSlot>) {
        if !slot.dead.load(Ordering::SeqCst) && !slot.scheduled.swap(true, Ordering::SeqCst) {
            let m = sched_metrics();
            m.wakeups.inc();
            m.ready_depth.add(1);
            let _ = self.shards[slot.shard].send(WorkItem::Run(slot.clone()));
        }
    }

    fn slot(&self, task: &str) -> Option<Arc<AgentSlot>> {
        self.slots.lock().get(task).cloned()
    }

    /// Cumulative slow-subscriber drops across every subscription the
    /// run ever opened.
    fn lagged(&self) -> u64 {
        self.lag_probes.lock().iter().map(|p| p.get()).sum()
    }

    fn kill(&self, task: &str) -> bool {
        match self.slot(task) {
            Some(slot) if !slot.dead.load(Ordering::SeqCst) => {
                slot.kill.store(true, Ordering::SeqCst);
                // Wake it so the crash is observed promptly even when
                // the agent is parked with an empty inbox.
                self.schedule(&slot);
                true
            }
            _ => false,
        }
    }

    fn alive(&self, task: &str) -> bool {
        self.slot(task)
            .map(|s| !s.dead.load(Ordering::SeqCst))
            .unwrap_or(false)
    }

    fn incarnation(&self, task: &str) -> u32 {
        self.slot(task).map(|s| s.incarnation).unwrap_or(0)
    }

    /// §IV-B recovery: a fresh incarnation re-enters through the same
    /// ready-queue; on a persistent broker its subscription replays the
    /// dead agent's entire inbox first.
    fn respawn(self: &Arc<Self>, task: &str) -> bool {
        self.respawn_impl(task, false)
    }

    /// Auto-recovery entry: respawn only while the current incarnation
    /// is dead (a racing manual respawn may already have replaced it).
    fn respawn_if_dead(self: &Arc<Self>, task: &str) -> bool {
        self.respawn_impl(task, true)
    }

    /// The check → subscribe → replace sequence runs under the slots
    /// lock: two concurrent respawns (manual vs recovery manager) would
    /// otherwise both insert a replacement and leave the loser as an
    /// unreachable ghost agent still bound to the broker.
    fn respawn_impl(self: &Arc<Self>, task: &str, only_if_dead: bool) -> bool {
        let Some(program) = self.programs.get(task).cloned() else {
            return false;
        };
        let mut slots = self.slots.lock();
        let old = slots.get(task).cloned();
        if only_if_dead && !old.as_ref().is_some_and(|o| o.dead.load(Ordering::SeqCst)) {
            return false;
        }
        if let Some(old) = &old {
            // Make sure any previous incarnation is (being) stopped. It
            // shares the new slot's shard, so it dies before the
            // replacement runs.
            old.kill.store(true, Ordering::SeqCst);
            self.schedule(old);
        }
        let incarnation = old.map(|o| o.incarnation + 1).unwrap_or(0);
        let mode = if self.broker.persistent() {
            SubscribeMode::Beginning
        } else {
            SubscribeMode::Latest
        };
        let Ok(topic) = self.ns.inbox(task) else {
            return false;
        };
        let Ok(sub) = self.broker.subscribe(&topic, mode) else {
            return false;
        };
        self.lag_probes.lock().push(sub.lag_probe());
        let slot = self.make_slot(program, sub, incarnation);
        slots.insert(task.to_owned(), slot.clone());
        drop(slots);
        self.register_waker(&slot);
        self.schedule(&slot);
        true
    }
}

fn worker_loop(inner: Arc<PoolInner>, rx: crossbeam::channel::Receiver<WorkItem>) {
    while let Ok(item) = rx.recv() {
        match item {
            WorkItem::Shutdown => return,
            WorkItem::Run(slot) => {
                sched_metrics().ready_depth.sub(1);
                process(&inner, &slot);
            }
        }
    }
}

/// One scheduling turn of one agent.
fn process(inner: &Arc<PoolInner>, slot: &Arc<AgentSlot>) {
    if slot.dead.load(Ordering::SeqCst) {
        return;
    }
    {
        let mut core = slot.core.lock();
        let ctx = AgentCtx {
            broker: &*inner.broker,
            ns: &inner.ns,
            registry: &inner.registry,
            name: &slot.name,
            incarnation: slot.incarnation,
        };
        if !slot.started.swap(true, Ordering::SeqCst) {
            if slot.kill.load(Ordering::SeqCst) || inner.shutdown.load(Ordering::SeqCst) {
                drop(core);
                die(inner, slot);
                return;
            }
            if ctx.dispatch(&mut core, Event::Start).is_err() {
                drop(core);
                die(inner, slot);
                return;
            }
        }
        let mut drained: u64 = 0;
        for _ in 0..BATCH {
            // A crash between reception and processing loses the event
            // locally — the log broker still has it for replay.
            if slot.kill.load(Ordering::SeqCst) || inner.shutdown.load(Ordering::SeqCst) {
                drop(core);
                die(inner, slot);
                return;
            }
            match slot.sub.try_recv() {
                Ok(Some(msg)) => {
                    drained += 1;
                    let Some(message) = SaMessage::decode(&msg.payload) else {
                        continue;
                    };
                    if ctx.dispatch(&mut core, Event::Deliver(message)).is_err() {
                        drop(core);
                        die(inner, slot);
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    drop(core);
                    die(inner, slot);
                    return;
                }
            }
        }
        sched_metrics().wakeup_batch.observe(drained);
    }
    // Park again. Clear the schedule bit *before* re-checking the
    // backlog: a publish that raced the drain either landed before the
    // clear (caught by the re-check) or after it (its waker sees the
    // cleared bit and enqueues) — either way no wakeup is lost.
    slot.scheduled.store(false, Ordering::SeqCst);
    if slot.sub.backlog() > 0 || slot.kill.load(Ordering::SeqCst) {
        inner.schedule(slot);
    }
}

/// Retire a slot for good and notify the recovery manager.
fn die(inner: &Arc<PoolInner>, slot: &Arc<AgentSlot>) {
    slot.dead.store(true, Ordering::SeqCst);
    slot.sub.clear_waker();
    slot.scheduled.store(false, Ordering::SeqCst);
    let _ = inner.reaper.send(ReaperMsg::Dead(slot.name.clone()));
}

/// The recovery manager: parked on the reaper channel (no scanning), it
/// respawns dead agents while the workflow is running — the in-process
/// analogue of the paper's failure detector.
fn recovery_loop(inner: Arc<PoolInner>, rx: crossbeam::channel::Receiver<ReaperMsg>) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ReaperMsg::Shutdown => return,
            ReaperMsg::Dead(task) => {
                if inner.shutdown.load(Ordering::SeqCst) || !inner.auto_recover {
                    continue;
                }
                // Only respawns if the dead incarnation is still current
                // (a manual respawn may have raced us) — checked under
                // the slots lock inside.
                inner.respawn_if_dead(&task);
            }
        }
    }
}

impl PoolRun {
    /// Tear down: every queued agent turn observes the shutdown flag and
    /// dies, the workers drain their shards and exit, and all threads
    /// are joined before this returns. Idempotent and callable from any
    /// thread holding the run.
    fn stop(&self) {
        if !self.inner.shutdown.swap(true, Ordering::SeqCst) {
            for shard in &self.inner.shards {
                let _ = shard.send(WorkItem::Shutdown);
            }
            let _ = self.inner.reaper.send(ReaperMsg::Shutdown);
            publish_shutdown_sentinel(&*self.inner.broker, &self.inner.ns);
        }
        self.inner.board.close();
        let workers: Vec<JoinHandle<()>> = self.workers.lock().drain(..).collect();
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(t) = self.recovery_thread.lock().take() {
            let _ = t.join();
        }
        if let Some(t) = self.status_thread.lock().take() {
            let _ = t.join();
        }
        self.inner.tracker.close();
    }
}
