//! # ginflow-agent — the service agents
//!
//! A service agent (SA) is "composed of three elements": the service to
//! invoke, "a storage place for a local copy of the multiset" and "an HOCL
//! interpreter that reads and updates the local copy … each time it tries
//! to apply one of the rules in the subsolution" (§IV-A). This crate
//! implements the SA logic once and executes it three ways:
//!
//! * [`SaCore`] — a **sans-IO state machine**: events in
//!   ([`Event::Deliver`], [`Event::ServiceCompleted`]), commands out
//!   ([`Command::Invoke`], [`Command::Send`], [`Command::Publish`]). It
//!   owns the local solution and the HOCL engine and nothing else, so the
//!   *same* coordination logic is driven by real threads here and by the
//!   virtual-time simulator in `ginflow-sim` — what the benchmarks measure
//!   is what the tests execute.
//! * [`scheduler::Scheduler`] — the **event-driven, sharded worker-pool
//!   runtime**: a fixed pool of workers drives every agent, each parked
//!   until its inbox topic wakes it through the broker's publish path
//!   ([`ginflow_mq::Subscription::set_waker`]). Scales to thousands of
//!   agents per process with zero idle CPU.
//! * the legacy **thread-per-agent** backend
//!   ([`RunOptions::legacy_threads`]) — one polling OS thread per SA,
//!   kept as the A/B baseline.
//!
//! Both runtimes implement the recovery mechanism of §IV-B: a crashed SA
//! is replaced by a fresh one that *replays its inbox topic* from the
//! beginning of the persistent log, rebuilding the lost local state
//! ("being able to log all incoming molecules of a SA and replay them in
//! the same order on a newly created SA will lead the second SA in the
//! same state as the first").

pub mod core;
pub mod engine;
mod exec;
pub mod message;
pub mod runtime;
pub mod scheduler;

pub use crate::core::{Command, Event, SaCore};
pub use engine::{
    EventWait, ExecutionBackend, RunControl, RunEvent, RunEvents, RunFailure, RunHandle, RunMeta,
    RunOutcome, RunReport, RunTracker, TaskReport,
};
pub use ginflow_mq::{RunId, TopicNamespace};
pub use message::{SaMessage, StatusUpdate};
pub use runtime::{RunOptions, WaitError};
pub use scheduler::{Scheduler, WorkflowRun};

/// The historical name of the launcher, kept so existing call sites keep
/// compiling; it dispatches to the event-driven scheduler by default
/// (pass [`RunOptions::legacy()`] for the original behaviour).
#[deprecated(
    since = "0.1.0",
    note = "use `Engine::builder()` from `ginflow-engine` (or `Scheduler` directly)"
)]
pub type ThreadedRuntime = Scheduler;
