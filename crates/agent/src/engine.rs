//! The unified execution API: typed run events, run handles, reports,
//! and the [`ExecutionBackend`] trait every execution vehicle implements.
//!
//! The paper's value proposition is decentralised execution *observed
//! through the shared status topic* (§IV): every service agent publishes
//! its state transitions to one shared topic, and anyone — the user
//! workstation of Fig 1 included — can watch the workflow unfold by
//! subscribing to it. Before this module the public surface only exposed
//! a blocking [`wait`](crate::WorkflowRun::wait) over final sink results;
//! now every backend feeds the raw status stream through a
//! [`RunTracker`], which derives an ordered, typed [`RunEvent`] stream
//! (task transitions, adaptation firings, recovery incarnations, run
//! completion) and fans it out to any number of subscribers.
//!
//! The pieces:
//!
//! * [`ExecutionBackend`] — "compile this workflow and run it", the one
//!   seam the live scheduler, the legacy thread-per-agent backend and the
//!   virtual-time simulator all implement. Future backends (async
//!   brokers, multi-process shards, remote executors) plug in here.
//! * [`RunHandle`] — a launched run: event subscription
//!   ([`RunHandle::events`]), observation, fault injection, first-class
//!   cancellation ([`RunHandle::cancel`]) and deadline enforcement
//!   ([`RunHandle::join`]).
//! * [`RunReport`] — the structured outcome: per-task states, timings and
//!   incarnations, adaptation/recovery counters — consumed by the CLI
//!   and the benchmarks.
//!
//! Construction of backends lives one level up in `ginflow-engine`
//! (`Engine::builder()`), which depends on both this crate and
//! `ginflow-sim`; the types here are deliberately backend-agnostic.

use crate::message::StatusUpdate;
use crate::runtime::WaitError;
use ginflow_core::{TaskState, Value, Workflow};
use ginflow_hoclflow::{AdaptPlan, AgentProgram};
use ginflow_mq::RunId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// Why a run ended without completing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RunFailure {
    /// [`RunHandle::cancel`] was called.
    Cancelled,
    /// The run's deadline expired and it was torn down.
    DeadlineExpired,
    /// A sink task failed with no adaptation watching it — the workflow
    /// can no longer produce its results.
    SinkFailed {
        /// The failed sink.
        task: String,
    },
    /// Execution stalled (e.g. simulated crashes without a persistent
    /// broker to replay from).
    Stalled,
}

/// One entry of the typed, ordered run event stream — derived from the
/// shared status topic, identically on every backend.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RunEvent {
    /// A task's observed lifecycle state changed.
    TaskStateChanged {
        /// Task name.
        task: String,
        /// Previous observed state (`None` on first observation).
        from: Option<TaskState>,
        /// New state.
        to: TaskState,
        /// Incarnation that published the update.
        incarnation: u32,
    },
    /// A task produced its result.
    TaskResult {
        /// Task name.
        task: String,
        /// The result value.
        value: Value,
    },
    /// A watched task failed, firing an adaptation (§III-C): standby
    /// replacements are being triggered.
    AdaptationFired {
        /// Adaptation name.
        adaptation: String,
        /// The failure that triggered it.
        failed_task: String,
    },
    /// A fresh agent incarnation took over a task (§IV-B recovery).
    AgentRespawned {
        /// Task name.
        task: String,
        /// The new incarnation number.
        incarnation: u32,
    },
    /// Every sink completed — terminal.
    RunCompleted,
    /// The run ended without completing — terminal.
    RunFailed {
        /// Why.
        reason: RunFailure,
    },
}

impl RunEvent {
    /// Is this a terminal event (the stream closes after it)?
    pub fn is_terminal(&self) -> bool {
        matches!(self, RunEvent::RunCompleted | RunEvent::RunFailed { .. })
    }
}

/// Outcome of [`RunEvents::recv_timeout`].
#[derive(Clone, Debug, PartialEq)]
pub enum EventWait {
    /// An event arrived.
    Event(RunEvent),
    /// Nothing arrived within the timeout; the stream is still open.
    TimedOut,
    /// The stream is closed and fully drained.
    Closed,
}

/// A subscription to a run's event stream. Subscribing replays the full
/// ordered history first, then delivers live — a late subscriber sees
/// exactly what an early one saw. The stream ends (iteration stops,
/// [`RunEvents::recv`] returns `None`) after a terminal event or when
/// the run is torn down.
pub struct RunEvents {
    rx: crossbeam::channel::Receiver<RunEvent>,
}

impl RunEvents {
    /// Block until the next event; `None` once the stream is closed and
    /// drained.
    pub fn recv(&self) -> Option<RunEvent> {
        self.rx.recv().ok()
    }

    /// Non-blocking poll; `None` when nothing is queued right now.
    pub fn try_recv(&self) -> Option<RunEvent> {
        self.rx.try_recv().ok()
    }

    /// Wait up to `timeout` for the next event.
    pub fn recv_timeout(&self, timeout: Duration) -> EventWait {
        use crossbeam::channel::RecvTimeoutError;
        match self.rx.recv_timeout(timeout) {
            Ok(e) => EventWait::Event(e),
            Err(RecvTimeoutError::Timeout) => EventWait::TimedOut,
            Err(RecvTimeoutError::Disconnected) => EventWait::Closed,
        }
    }
}

impl Iterator for RunEvents {
    type Item = RunEvent;

    fn next(&mut self) -> Option<RunEvent> {
        self.recv()
    }
}

/// The fan-out point: ordered history plus live subscriber channels.
struct EventHub {
    state: Mutex<HubState>,
}

struct HubState {
    history: Vec<RunEvent>,
    senders: Vec<crossbeam::channel::Sender<RunEvent>>,
    closed: bool,
}

impl EventHub {
    fn new() -> Self {
        EventHub {
            state: Mutex::new(HubState {
                history: Vec::new(),
                senders: Vec::new(),
                closed: false,
            }),
        }
    }

    /// Append to the history and deliver to every live subscriber.
    fn emit(&self, event: RunEvent) {
        let mut s = self.state.lock();
        if s.closed {
            return;
        }
        for tx in &s.senders {
            let _ = tx.send(event.clone());
        }
        s.history.push(event);
    }

    /// New subscriber: replay history, then live (if still open). Replay
    /// and registration happen under one lock so no concurrently emitted
    /// event can fall between them.
    fn subscribe(&self) -> RunEvents {
        let mut s = self.state.lock();
        let (tx, rx) = crossbeam::channel::unbounded();
        for event in &s.history {
            let _ = tx.send(event.clone());
        }
        if !s.closed {
            s.senders.push(tx);
        }
        RunEvents { rx }
    }

    /// Close the stream: live subscribers end after draining; the history
    /// stays replayable for late subscribers.
    fn close(&self) {
        let mut s = self.state.lock();
        s.closed = true;
        s.senders.clear();
    }
}

// ---------------------------------------------------------------------
// Workflow metadata + the tracker
// ---------------------------------------------------------------------

/// What the event derivation needs to know about a workflow: every task,
/// the sinks, the standby tasks, and which failures fire which
/// adaptation.
#[derive(Clone, Debug, Default)]
pub struct RunMeta {
    /// Every task name (standby included).
    pub tasks: Vec<String>,
    /// Sink task names (no destinations, not standby).
    pub sinks: Vec<String>,
    /// Standby (replacement) task names.
    pub standby: Vec<String>,
    /// Adaptation `(name, watched task names)` pairs, in table order.
    pub adaptations: Vec<(String, Vec<String>)>,
}

impl RunMeta {
    /// Metadata straight from a workflow definition.
    pub fn of(workflow: &Workflow) -> RunMeta {
        let dag = workflow.dag();
        let mut meta = RunMeta::default();
        for (id, spec) in dag.iter() {
            meta.tasks.push(spec.name.clone());
            if spec.is_standby() {
                meta.standby.push(spec.name.clone());
            } else if dag.successors(id).is_empty() {
                meta.sinks.push(spec.name.clone());
            }
        }
        for a in workflow.adaptations() {
            meta.adaptations.push((
                a.name.clone(),
                a.watched
                    .iter()
                    .map(|&t| dag.name_of(t).to_owned())
                    .collect(),
            ));
        }
        meta
    }

    /// Metadata from compiled agent programs + adaptation plans (the
    /// launch path that never sees the workflow itself).
    pub fn from_programs(programs: &[AgentProgram], plans: &[AdaptPlan]) -> RunMeta {
        RunMeta {
            tasks: programs.iter().map(|p| p.name.clone()).collect(),
            sinks: programs
                .iter()
                .filter(|p| p.is_sink())
                .map(|p| p.name.clone())
                .collect(),
            standby: programs
                .iter()
                .filter(|p| p.standby)
                .map(|p| p.name.clone())
                .collect(),
            adaptations: plans
                .iter()
                .map(|p| (p.name.clone(), p.watched.clone()))
                .collect(),
        }
    }
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum RunOutcome {
    /// Every sink completed.
    Completed,
    /// Ended without completing.
    Failed(RunFailure),
}

struct TrackInner {
    /// Latest `(state, incarnation)` observed per task.
    tasks: HashMap<String, (TaskState, u32)>,
    /// Adaptation indices that already fired.
    fired: HashSet<usize>,
    /// Sinks observed `Completed`.
    done_sinks: HashSet<String>,
    terminal: Option<RunOutcome>,
    adaptations_fired: u32,
    respawns: u32,
}

/// Derives the typed [`RunEvent`] stream from raw [`StatusUpdate`]s —
/// the single implementation every backend (live scheduler, legacy
/// threads, virtual-time sim) feeds, so streams are comparable across
/// backends. Stale updates from superseded incarnations are dropped, so
/// per-task streams are monotone: state rank never regresses within an
/// incarnation and incarnations never decrease.
pub struct RunTracker {
    meta: RunMeta,
    run_id: RunId,
    hub: EventHub,
    inner: Mutex<TrackInner>,
}

impl RunTracker {
    /// Fresh tracker over a workflow's metadata, for the run named
    /// `run_id` — the namespace key under which the run's status topic
    /// lives, carried here so every report and handle can name it.
    pub fn new(meta: RunMeta, run_id: RunId) -> Self {
        RunTracker {
            meta,
            run_id,
            hub: EventHub::new(),
            inner: Mutex::new(TrackInner {
                tasks: HashMap::new(),
                fired: HashSet::new(),
                done_sinks: HashSet::new(),
                terminal: None,
                adaptations_fired: 0,
                respawns: 0,
            }),
        }
    }

    /// The workflow metadata the tracker derives against.
    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }

    /// The run this tracker observes.
    pub fn run_id(&self) -> &RunId {
        &self.run_id
    }

    /// Feed one status update; derived events fan out to subscribers.
    /// Ignored after a terminal event, and for updates from superseded
    /// incarnations.
    pub fn observe(&self, update: &StatusUpdate) {
        let mut events: Vec<RunEvent> = Vec::new();
        let mut terminal = false;
        {
            let mut s = self.inner.lock();
            if s.terminal.is_some() {
                return;
            }
            let prev = s.tasks.get(&update.task).copied();
            if let Some((_, pinc)) = prev {
                if update.incarnation < pinc {
                    return; // stale ghost of a replaced incarnation
                }
            }
            // A first observation at incarnation > 0 is a recovery too:
            // the dead incarnation may never have published anything.
            let prev_incarnation = prev.map(|(_, i)| i).unwrap_or(0);
            if update.incarnation > prev_incarnation {
                s.respawns += update.incarnation - prev_incarnation;
                events.push(RunEvent::AgentRespawned {
                    task: update.task.clone(),
                    incarnation: update.incarnation,
                });
            }
            let changed = prev != Some((update.state, update.incarnation));
            if changed {
                events.push(RunEvent::TaskStateChanged {
                    task: update.task.clone(),
                    from: prev.map(|(state, _)| state),
                    to: update.state,
                    incarnation: update.incarnation,
                });
            }
            s.tasks
                .insert(update.task.clone(), (update.state, update.incarnation));
            if changed && update.state == TaskState::Completed {
                if let Some(value) = &update.result {
                    events.push(RunEvent::TaskResult {
                        task: update.task.clone(),
                        value: value.clone(),
                    });
                }
            }
            if update.state == TaskState::Failed {
                for (i, (name, watched)) in self.meta.adaptations.iter().enumerate() {
                    if watched.iter().any(|w| w == &update.task) && s.fired.insert(i) {
                        s.adaptations_fired += 1;
                        events.push(RunEvent::AdaptationFired {
                            adaptation: name.clone(),
                            failed_task: update.task.clone(),
                        });
                    }
                }
            }
            if self.meta.sinks.iter().any(|sink| sink == &update.task) {
                match update.state {
                    TaskState::Completed => {
                        s.done_sinks.insert(update.task.clone());
                        if s.done_sinks.len() == self.meta.sinks.len() {
                            s.terminal = Some(RunOutcome::Completed);
                            events.push(RunEvent::RunCompleted);
                            terminal = true;
                        }
                    }
                    TaskState::Failed => {
                        let watched = self
                            .meta
                            .adaptations
                            .iter()
                            .any(|(_, w)| w.iter().any(|t| t == &update.task));
                        if !watched {
                            let failure = RunFailure::SinkFailed {
                                task: update.task.clone(),
                            };
                            s.terminal = Some(RunOutcome::Failed(failure.clone()));
                            events.push(RunEvent::RunFailed { reason: failure });
                            terminal = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        for event in events {
            self.hub.emit(event);
        }
        if terminal {
            self.hub.close();
        }
    }

    /// Mark the run failed (cancel, deadline, stall) and emit the
    /// terminal event. Returns `false` (and does nothing) when the run
    /// already reached a terminal state.
    pub fn fail(&self, failure: RunFailure) -> bool {
        {
            let mut s = self.inner.lock();
            if s.terminal.is_some() {
                return false;
            }
            s.terminal = Some(RunOutcome::Failed(failure.clone()));
        }
        self.hub.emit(RunEvent::RunFailed { reason: failure });
        self.hub.close();
        true
    }

    /// Close the stream without a terminal event (plain teardown of a
    /// still-running workflow).
    pub fn close(&self) {
        self.hub.close();
    }

    /// Subscribe: full ordered history, then live.
    pub fn subscribe(&self) -> RunEvents {
        self.hub.subscribe()
    }

    /// The outcome, once terminal.
    pub fn outcome(&self) -> Option<RunOutcome> {
        self.inner.lock().terminal.clone()
    }

    /// `(adaptations fired, respawns observed)` so far.
    pub fn counts(&self) -> (u32, u32) {
        let s = self.inner.lock();
        (s.adaptations_fired, s.respawns)
    }
}

// ---------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------

/// Per-task slice of a [`RunReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct TaskReport {
    /// Final observed state (`Idle` when never observed — e.g. an
    /// untriggered standby task).
    pub state: TaskState,
    /// Latest incarnation observed (0 = the first agent).
    pub incarnation: u32,
    /// When the task was first observed `Running`, relative to launch.
    pub started_at: Option<Duration>,
    /// When it was last observed `Completed`/`Failed`, relative to
    /// launch.
    pub finished_at: Option<Duration>,
    /// The produced result, if any.
    pub result: Option<Value>,
}

impl Default for TaskReport {
    fn default() -> Self {
        TaskReport {
            state: TaskState::Idle,
            incarnation: 0,
            started_at: None,
            finished_at: None,
            result: None,
        }
    }
}

impl TaskReport {
    /// Fold one status update in, `at` being the update's time relative
    /// to launch (wall on live backends, virtual in the sim). The single
    /// definition of per-task observation semantics — stale updates from
    /// a superseded incarnation return `false` and change nothing;
    /// `started_at` is the first `Running`, `finished_at` the last
    /// `Completed`/`Failed`.
    pub fn absorb(&mut self, update: &StatusUpdate, at: Duration) -> bool {
        if update.incarnation < self.incarnation {
            return false;
        }
        self.incarnation = update.incarnation;
        self.state = update.state;
        self.result = update.result.clone();
        match update.state {
            TaskState::Running if self.started_at.is_none() => self.started_at = Some(at),
            TaskState::Completed | TaskState::Failed => self.finished_at = Some(at),
            _ => {}
        }
        true
    }
}

/// The structured outcome of a run — available mid-flight (partial) and
/// after completion, cancellation or deadline expiry.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Which backend executed the run.
    pub backend: &'static str,
    /// The run's id — the namespace key of every topic the run used
    /// (`run/<id>/…`); what `ginflow broker runs` lists on a shared
    /// daemon.
    pub run_id: String,
    /// Did every sink complete?
    pub completed: bool,
    /// Was the run cancelled via [`RunHandle::cancel`]?
    pub cancelled: bool,
    /// Did the run's deadline expire?
    pub deadline_expired: bool,
    /// Launch-to-now (or launch-to-terminal) duration. Virtual time on
    /// the sim backend.
    pub wall: Duration,
    /// Adaptations fired.
    pub adaptations_fired: u32,
    /// Agent respawns observed (§IV-B recoveries).
    pub respawns: u32,
    /// Messages this run's broker subscriptions dropped to their
    /// bounded-queue (drop-oldest) policy — see
    /// [`ginflow_mq::Subscription::lagged`]. Non-zero means a consumer
    /// stalled long enough to lose messages: defined behaviour on the
    /// transient (at-most-once) profile, but observable here instead of
    /// silent. Always 0 on unbounded (persistent) subscriptions and on
    /// the sim backend.
    pub lagged: u64,
    /// Final snapshot of this run's slice of the process-global metrics
    /// registry (`(metric name, value)` rows — see
    /// [`ginflow_mq::metrics::Metrics::snapshot_run`]): per-run publish
    /// counts and bytes, lag drops and topic gauges, collected at
    /// report time. Empty on backends that don't feed the registry
    /// (sim) and when metrics are disabled (`GINFLOW_MQ_NO_METRICS`).
    pub metrics: Vec<(String, u64)>,
    /// Per-task detail, keyed by task name (every task of the workflow,
    /// observed or not).
    pub tasks: BTreeMap<String, TaskReport>,
}

impl RunReport {
    /// A task's result, if it produced one.
    pub fn result_of(&self, task: &str) -> Option<&Value> {
        self.tasks.get(task).and_then(|t| t.result.as_ref())
    }

    /// A task's final observed state (`Idle` for unknown tasks).
    pub fn state_of(&self, task: &str) -> TaskState {
        self.tasks
            .get(task)
            .map(|t| t.state)
            .unwrap_or(TaskState::Idle)
    }

    /// How many tasks completed.
    pub fn completed_tasks(&self) -> usize {
        self.tasks
            .values()
            .filter(|t| t.state == TaskState::Completed)
            .count()
    }
}

// ---------------------------------------------------------------------
// The handle + backend seam
// ---------------------------------------------------------------------

/// Control surface a backend's run object implements; [`RunHandle`] is
/// the user-facing facade over a boxed instance. Object-safe on purpose:
/// the scheduler's [`crate::WorkflowRun`], the legacy thread backend and
/// the simulator's finished-run shim all live behind it.
pub trait RunControl: Send + Sync {
    /// Backend label ("scheduler", "legacy-threads", "sim", …).
    fn backend(&self) -> &'static str;
    /// The run's id (its topic-namespace key).
    fn run_id(&self) -> String;
    /// Latest observed state of a task.
    fn state_of(&self, task: &str) -> Option<TaskState>;
    /// Latest observed result of a task.
    fn result_of(&self, task: &str) -> Option<Value>;
    /// Snapshot of all observed task states.
    fn statuses(&self) -> Vec<(String, TaskState)>;
    /// Crash a task's agent (fault injection). `false` when unsupported
    /// or the agent is already gone.
    fn kill(&self, task: &str) -> bool;
    /// Start a replacement incarnation (§IV-B). `false` when
    /// unsupported.
    fn respawn(&self, task: &str) -> bool;
    /// Is the task's agent alive?
    fn alive(&self, task: &str) -> bool;
    /// Current incarnation of a task's agent.
    fn incarnation(&self, task: &str) -> u32;
    /// Subscribe to the run's event stream.
    fn subscribe(&self) -> RunEvents;
    /// Block until every sink completes (or `timeout`).
    fn wait_sinks(&self, timeout: Duration) -> Result<HashMap<String, Value>, WaitError>;
    /// Mark the run failed with `failure` and tear everything down
    /// (agents observe shutdown through the broker; worker threads are
    /// joined). Idempotent.
    fn cancel_with(&self, failure: RunFailure);
    /// Plain teardown without marking failure (post-completion
    /// shutdown). Idempotent.
    fn stop(&self);
    /// Structured snapshot of the run (partial while still executing).
    fn report(&self) -> RunReport;
}

/// A launched workflow, whatever backend executes it: observation, a
/// typed event stream, fault injection, cancellation and deadline
/// enforcement.
pub struct RunHandle {
    inner: Arc<dyn RunControl>,
    deadline: Option<Instant>,
}

impl RunHandle {
    /// Wrap a backend's run object.
    pub fn new(inner: Arc<dyn RunControl>) -> Self {
        RunHandle {
            inner,
            deadline: None,
        }
    }

    /// Attach an absolute deadline: [`RunHandle::wait`] and
    /// [`RunHandle::join`] cancel the run when it passes.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline.map(|d| Instant::now() + d);
        self
    }

    /// Which backend is executing this run.
    pub fn backend(&self) -> &'static str {
        self.inner.backend()
    }

    /// The run's id: the key of the topic namespace (`run/<id>/…`) the
    /// run coordinates under. Auto-generated at launch unless pinned
    /// (e.g. `Engine::builder().run_id(..)`, `ginflow run --run-id`).
    pub fn run_id(&self) -> String {
        self.inner.run_id()
    }

    /// Subscribe to the typed run event stream (full history replayed
    /// first, then live).
    pub fn events(&self) -> RunEvents {
        self.inner.subscribe()
    }

    /// Latest observed state of a task.
    pub fn state_of(&self, task: &str) -> Option<TaskState> {
        self.inner.state_of(task)
    }

    /// Latest observed result of a task.
    pub fn result_of(&self, task: &str) -> Option<Value> {
        self.inner.result_of(task)
    }

    /// Snapshot of all observed task states, sorted by task name.
    pub fn statuses(&self) -> Vec<(String, TaskState)> {
        self.inner.statuses()
    }

    /// Crash a task's agent (fault injection).
    pub fn kill(&self, task: &str) -> bool {
        self.inner.kill(task)
    }

    /// Start a replacement incarnation for a task (§IV-B recovery).
    pub fn respawn(&self, task: &str) -> bool {
        self.inner.respawn(task)
    }

    /// Is the task's agent alive?
    pub fn alive(&self, task: &str) -> bool {
        self.inner.alive(task)
    }

    /// Current incarnation number of a task's agent.
    pub fn incarnation(&self, task: &str) -> u32 {
        self.inner.incarnation(task)
    }

    /// Cancel the run: emits [`RunEvent::RunFailed`] with
    /// [`RunFailure::Cancelled`], tears every agent down through the
    /// broker, and joins all worker threads before returning — no thread
    /// outlives this call.
    pub fn cancel(&self) {
        self.inner.cancel_with(RunFailure::Cancelled);
    }

    /// Block until every sink completes, up to `timeout` (clamped by the
    /// run deadline, which cancels the run on expiry).
    pub fn wait(&self, timeout: Duration) -> Result<HashMap<String, Value>, WaitError> {
        let (effective, deadline_gates) = match self.remaining() {
            Some(left) if left < timeout => (left, true),
            _ => (timeout, false),
        };
        match self.inner.wait_sinks(effective) {
            Err(WaitError::Timeout { statuses }) if deadline_gates => {
                self.inner.cancel_with(RunFailure::DeadlineExpired);
                Err(WaitError::Deadline { statuses })
            }
            other => other,
        }
    }

    /// Drive the run to its end: block until a terminal event (or the
    /// deadline, which cancels with [`RunFailure::DeadlineExpired`]),
    /// tear the run down, and return the final [`RunReport`] — partial
    /// when cancelled or expired.
    pub fn join(self) -> RunReport {
        let events = self.inner.subscribe();
        loop {
            match self.remaining() {
                Some(Duration::ZERO) => {
                    self.inner.cancel_with(RunFailure::DeadlineExpired);
                    break;
                }
                Some(left) => match events.recv_timeout(left) {
                    EventWait::Event(e) if e.is_terminal() => break,
                    EventWait::Event(_) => continue,
                    EventWait::TimedOut => {
                        self.inner.cancel_with(RunFailure::DeadlineExpired);
                        break;
                    }
                    EventWait::Closed => break,
                },
                None => match events.recv() {
                    Some(e) if e.is_terminal() => break,
                    Some(_) => continue,
                    None => break,
                },
            }
        }
        let report = self.inner.report();
        self.inner.stop();
        report
    }

    /// Structured snapshot of the run so far (partial while executing).
    pub fn report(&self) -> RunReport {
        self.inner.report()
    }

    /// Tear the run down without marking it failed.
    pub fn shutdown(self) {
        self.inner.stop();
    }

    fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Drop for RunHandle {
    fn drop(&mut self) {
        // The backend run object also stops itself on drop, but the Arc
        // may be shared; stopping here makes `drop(handle)` deterministic.
        self.inner.stop();
    }
}

/// An execution vehicle: compiles a workflow and runs it, returning the
/// unified [`RunHandle`]. Implemented by the event-driven scheduler, the
/// legacy thread-per-agent backend (both in this crate) and the
/// virtual-time simulator (`ginflow-sim`); `ginflow-engine` selects
/// between them behind `Engine::builder()`.
pub trait ExecutionBackend: Send + Sync {
    /// Backend label for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Compile `workflow` and start executing it.
    fn launch_run(&self, workflow: &Workflow) -> RunHandle;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn update(task: &str, state: TaskState, incarnation: u32) -> StatusUpdate {
        StatusUpdate {
            task: task.into(),
            state,
            result: (state == TaskState::Completed).then(|| Value::str("out")),
            incarnation,
        }
    }

    fn meta() -> RunMeta {
        RunMeta {
            tasks: vec!["a".into(), "b".into(), "b'".into()],
            sinks: vec!["b".into()],
            standby: vec!["b'".into()],
            adaptations: vec![("replace-a".into(), vec!["a".into()])],
        }
    }

    #[test]
    fn tracker_derives_ordered_events() {
        let tracker = RunTracker::new(meta(), RunId::generate());
        let events = tracker.subscribe();
        tracker.observe(&update("a", TaskState::Running, 0));
        tracker.observe(&update("a", TaskState::Completed, 0));
        tracker.observe(&update("b", TaskState::Running, 0));
        tracker.observe(&update("b", TaskState::Completed, 0));
        let collected: Vec<RunEvent> = events.collect();
        assert_eq!(
            collected.last(),
            Some(&RunEvent::RunCompleted),
            "{collected:?}"
        );
        assert_eq!(
            collected
                .iter()
                .filter(|e| matches!(e, RunEvent::TaskResult { .. }))
                .count(),
            2
        );
        assert_eq!(tracker.outcome(), Some(RunOutcome::Completed));
    }

    #[test]
    fn late_subscriber_replays_history() {
        let tracker = RunTracker::new(meta(), RunId::generate());
        tracker.observe(&update("a", TaskState::Running, 0));
        tracker.observe(&update("b", TaskState::Completed, 0));
        let replayed: Vec<RunEvent> = tracker.subscribe().collect();
        assert_eq!(replayed.last(), Some(&RunEvent::RunCompleted));
        assert!(replayed.len() >= 3);
    }

    #[test]
    fn adaptation_failure_and_respawn_events() {
        let tracker = RunTracker::new(meta(), RunId::generate());
        tracker.observe(&update("a", TaskState::Running, 0));
        tracker.observe(&update("a", TaskState::Failed, 0));
        tracker.observe(&update("a", TaskState::Running, 1));
        let events: Vec<RunEvent> = {
            let sub = tracker.subscribe();
            std::iter::from_fn(|| sub.try_recv()).collect()
        };
        assert!(events.iter().any(|e| matches!(
            e,
            RunEvent::AdaptationFired { adaptation, .. } if adaptation == "replace-a"
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, RunEvent::AgentRespawned { incarnation: 1, .. })));
        assert_eq!(tracker.counts(), (1, 1));
    }

    #[test]
    fn stale_incarnation_updates_are_dropped() {
        let tracker = RunTracker::new(meta(), RunId::generate());
        // First-ever observation at incarnation 1: the dead incarnation
        // 0 never published, which still counts as one recovery.
        tracker.observe(&update("a", TaskState::Running, 1));
        tracker.observe(&update("a", TaskState::Completed, 0)); // ghost
        let events: Vec<RunEvent> = {
            let sub = tracker.subscribe();
            std::iter::from_fn(|| sub.try_recv()).collect()
        };
        assert_eq!(
            events,
            vec![
                RunEvent::AgentRespawned {
                    task: "a".into(),
                    incarnation: 1
                },
                RunEvent::TaskStateChanged {
                    task: "a".into(),
                    from: None,
                    to: TaskState::Running,
                    incarnation: 1
                },
            ],
            "the ghost update must contribute nothing"
        );
    }

    #[test]
    fn unwatched_sink_failure_is_terminal() {
        let tracker = RunTracker::new(meta(), RunId::generate());
        tracker.observe(&update("b", TaskState::Failed, 0));
        assert_eq!(
            tracker.outcome(),
            Some(RunOutcome::Failed(RunFailure::SinkFailed {
                task: "b".into()
            }))
        );
    }

    #[test]
    fn fail_is_terminal_and_idempotent() {
        let tracker = RunTracker::new(meta(), RunId::generate());
        assert!(tracker.fail(RunFailure::Cancelled));
        assert!(!tracker.fail(RunFailure::DeadlineExpired));
        tracker.observe(&update("b", TaskState::Completed, 0)); // ignored
        let events: Vec<RunEvent> = tracker.subscribe().collect();
        assert_eq!(
            events,
            vec![RunEvent::RunFailed {
                reason: RunFailure::Cancelled
            }]
        );
    }

    #[test]
    fn run_event_json_roundtrip() {
        for event in [
            RunEvent::TaskStateChanged {
                task: "T1".into(),
                from: Some(TaskState::Running),
                to: TaskState::Completed,
                incarnation: 2,
            },
            RunEvent::TaskResult {
                task: "T1".into(),
                value: Value::str("v"),
            },
            RunEvent::AdaptationFired {
                adaptation: "replace-T2".into(),
                failed_task: "T2".into(),
            },
            RunEvent::AgentRespawned {
                task: "T3".into(),
                incarnation: 1,
            },
            RunEvent::RunCompleted,
            RunEvent::RunFailed {
                reason: RunFailure::DeadlineExpired,
            },
        ] {
            let json = serde_json::to_string(&event).unwrap();
            let back: RunEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn meta_of_workflow_matches_programs() {
        use ginflow_core::workflow::{ReplacementTask, WorkflowBuilder};
        let mut b = WorkflowBuilder::new("fig5");
        b.task("T1", "s1").input(Value::str("input"));
        b.task("T2", "s2").after(["T1"]);
        b.task("T3", "s3").after(["T1"]);
        b.task("T4", "s4").after(["T2", "T3"]);
        b.adaptation(
            "replace-T2",
            ["T2"],
            ["T2"],
            [ReplacementTask::new("T2'", "s2p", ["T1"])],
        );
        let wf = b.build().unwrap();
        let from_wf = RunMeta::of(&wf);
        let (programs, plans) = ginflow_hoclflow::agent_programs(&wf);
        let from_programs = RunMeta::from_programs(&programs, &plans);
        assert_eq!(from_wf.sinks, from_programs.sinks);
        assert_eq!(from_wf.standby, from_programs.standby);
        assert_eq!(from_wf.adaptations, from_programs.adaptations);
        let mut a = from_wf.tasks.clone();
        let mut b2 = from_programs.tasks.clone();
        a.sort();
        b2.sort();
        assert_eq!(a, b2);
    }
}
