//! [`SaCore`] — the sans-IO service-agent state machine.

use crate::message::SaMessage;
use ginflow_core::{TaskState, Value};
use ginflow_hocl::symbol::keywords as kw;
use ginflow_hocl::{
    Atom, EffectId, Engine, EngineConfig, ExternHost, ExternResult, HoclError, ReduceStats,
};
use ginflow_hoclflow::{names, AdaptPlan, AgentProgram, FlowExterns};
use std::sync::Arc;

/// An input to the agent.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// The agent was (re)started by the deployer.
    Start,
    /// A message arrived on the agent's inbox topic.
    Deliver(SaMessage),
    /// The runtime finished a service invocation previously requested via
    /// [`Command::Invoke`].
    ServiceCompleted {
        /// The effect id of the invocation.
        effect: EffectId,
        /// The service outcome; `Err` carries the failure reason.
        result: Result<Value, String>,
    },
}

/// An effect the runtime must perform on the agent's behalf.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Invoke the service (asynchronously or inline — the runtime's
    /// choice) and feed the outcome back as
    /// [`Event::ServiceCompleted`].
    Invoke {
        /// Correlation id.
        effect: EffectId,
        /// Service name.
        service: String,
        /// Parameter list.
        params: Vec<Value>,
    },
    /// Ship a message to a peer agent's inbox.
    Send {
        /// Destination task name.
        to: String,
        /// The message.
        message: SaMessage,
    },
    /// Publish a state transition on the status topic.
    Publish {
        /// New state.
        state: TaskState,
        /// Result value when completing.
        result: Option<Value>,
    },
}

/// The agent state machine: local solution + HOCL engine + adaptation
/// fan-out plans. All I/O is expressed through returned [`Command`]s.
pub struct SaCore {
    program: AgentProgram,
    solution: ginflow_hocl::Solution,
    engine: Engine,
    plans: Arc<Vec<AdaptPlan>>,
    state: TaskState,
    /// Work counters accumulated since the last [`SaCore::take_stats`]
    /// (consumed by the simulator's cost model).
    stats: ReduceStats,
}

/// Extern host used during reduction: buffers commands, defers `invoke`.
struct AgentHost<'p> {
    flow: FlowExterns,
    plans: &'p [AdaptPlan],
    outbox: Vec<Command>,
    error: Option<String>,
}

impl ExternHost for AgentHost<'_> {
    fn call(&mut self, name: &str, args: &[Atom]) -> Result<ExternResult, HoclError> {
        match name {
            names::INVOKE => Ok(ExternResult::Deferred),
            names::SEND_RESULT => {
                let (to, from, value) = match args {
                    [Atom::Sym(to), Atom::Sym(from), value] => (
                        to.as_str().to_owned(),
                        from.as_str().to_owned(),
                        value.clone(),
                    ),
                    _ => {
                        return Err(HoclError::ExternFailed {
                            name: names::SEND_RESULT.into(),
                            reason: "expected (to, from, value)".into(),
                        })
                    }
                };
                self.outbox.push(Command::Send {
                    to,
                    message: SaMessage::Result { from, value },
                });
                Ok(ExternResult::Atoms(vec![]))
            }
            names::ADAPT_NOTIFY => {
                let k =
                    args.first()
                        .and_then(Atom::as_int)
                        .ok_or_else(|| HoclError::ExternFailed {
                            name: names::ADAPT_NOTIFY.into(),
                            reason: "expected the adaptation id".into(),
                        })? as u32;
                match self.plans.iter().find(|p| p.adaptation.0 == k) {
                    Some(plan) => {
                        for t in &plan.adapt_targets {
                            self.outbox.push(Command::Send {
                                to: t.clone(),
                                message: SaMessage::Adapt { adaptation: k },
                            });
                        }
                        for t in &plan.trigger_targets {
                            self.outbox.push(Command::Send {
                                to: t.clone(),
                                message: SaMessage::Trigger { adaptation: k },
                            });
                        }
                        Ok(ExternResult::Atoms(vec![]))
                    }
                    None => {
                        self.error = Some(format!("no adaptation plan for id {k}"));
                        Ok(ExternResult::Atoms(vec![]))
                    }
                }
            }
            other => self.flow.call(other, args),
        }
    }
}

impl SaCore {
    /// Build the agent for one compiled task program.
    pub fn new(program: AgentProgram, plans: Arc<Vec<AdaptPlan>>) -> Self {
        let solution = program.initial.clone();
        SaCore {
            program,
            solution,
            engine: Engine::with_config(EngineConfig::default()),
            plans,
            state: TaskState::Idle,
            stats: ReduceStats::default(),
        }
    }

    /// The task name this agent wraps.
    pub fn name(&self) -> &str {
        &self.program.name
    }

    /// The service name this agent invokes.
    pub fn service(&self) -> &str {
        &self.program.service
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// Is this a standby (not yet triggered) agent?
    pub fn is_standby(&self) -> bool {
        self.program.standby
    }

    /// Read access to the local solution (tests, diagnostics).
    pub fn solution(&self) -> &ginflow_hocl::Solution {
        &self.solution
    }

    /// Work counters since the last call (simulator cost accounting).
    pub fn take_stats(&mut self) -> ReduceStats {
        let s = self.stats;
        self.stats = ReduceStats::default();
        s
    }

    /// Process one event, returning the commands the runtime must execute.
    ///
    /// Every call injects the event's atoms into the local solution and
    /// reduces to quiescence — the paper's "a reduction phase is
    /// systematically triggered when new molecules are received".
    pub fn handle(&mut self, event: Event) -> Result<Vec<Command>, HoclError> {
        let mut host = AgentHost {
            flow: FlowExterns::new(),
            plans: &self.plans,
            outbox: Vec::new(),
            error: None,
        };
        match event {
            Event::Start => {}
            Event::Deliver(message) => {
                let atom = match message {
                    SaMessage::Result { from, value } => {
                        Atom::tuple([Atom::sym(kw::DELIVER), Atom::sym(from), value])
                    }
                    SaMessage::Adapt { adaptation } => {
                        Atom::tuple([Atom::sym(kw::ADAPT), Atom::int(adaptation as i64)])
                    }
                    SaMessage::Trigger { adaptation } => {
                        Atom::tuple([Atom::sym(kw::TRIGGER), Atom::int(adaptation as i64)])
                    }
                };
                self.solution.insert(atom);
            }
            Event::ServiceCompleted { effect, result } => {
                let atoms = match result {
                    Ok(value) => vec![value],
                    Err(_) => vec![Atom::sym(kw::ERROR)],
                };
                // A recovered agent may receive completions for effects of
                // its previous incarnation — those are unknown and ignored.
                match self
                    .engine
                    .resume(&mut self.solution, effect, atoms, &mut host)
                {
                    Ok(()) => {}
                    Err(HoclError::UnknownEffect(_)) => return Ok(vec![]),
                    Err(e) => return Err(e),
                }
            }
        }
        let out = self.engine.reduce(&mut self.solution, &mut host)?;
        if let Some(reason) = host.error {
            return Err(HoclError::ExternFailed {
                name: names::ADAPT_NOTIFY.into(),
                reason,
            });
        }
        let mut commands = host.outbox;
        for eff in &out.suspended {
            let service = eff
                .args
                .first()
                .and_then(Atom::as_sym)
                .map(|s| s.as_str().to_owned())
                .unwrap_or_else(|| self.program.service.clone());
            let params = match eff.args.get(1) {
                Some(Atom::List(v)) => v.clone(),
                _ => Vec::new(),
            };
            commands.push(Command::Invoke {
                effect: eff.id,
                service,
                params,
            });
        }
        self.stats.applications += self.engine.stats().applications;
        self.stats.match_attempts += self.engine.stats().match_attempts;
        self.stats.weight_scanned += self.engine.stats().weight_scanned;
        self.engine.take_stats();
        self.refresh_state(&mut commands);
        Ok(commands)
    }

    /// Derive the lifecycle state from the solution and emit a `Publish`
    /// command when it changed.
    ///
    /// The publish goes at the **front** of the command list, before any
    /// `Send` to successors: the shared space learns of the transition
    /// before its consequences can propagate. That ordering is what
    /// keeps every observer's status view gap-free under pipelined
    /// publishing — a `Completed` enters the broker's status log before
    /// the result message that lets a downstream task (possibly on
    /// another shard, over another connection) complete, so no
    /// downstream completion can ever be observed ahead of its
    /// upstream's.
    fn refresh_state(&mut self, commands: &mut Vec<Command>) {
        let new_state = if self.solution.has_pending() {
            TaskState::Running
        } else {
            match self.solution.atoms().keyed_sub(kw::RES) {
                Some(res) if res.contains(&Atom::sym(kw::ERROR)) => TaskState::Failed,
                Some(res) => match res.iter().next() {
                    Some(_) => TaskState::Completed,
                    // RES flushed by trigger_adapt: the task failed and
                    // handed over to the adaptation.
                    None => TaskState::Failed,
                },
                None => TaskState::Idle,
            }
        };
        if new_state != self.state {
            self.state = new_state;
            let result = if new_state == TaskState::Completed {
                self.result()
            } else {
                None
            };
            commands.insert(
                0,
                Command::Publish {
                    state: new_state,
                    result,
                },
            );
        }
    }

    /// The task's result value, if completed.
    pub fn result(&self) -> Option<Value> {
        self.solution
            .atoms()
            .keyed_sub(kw::RES)
            .and_then(|res| res.iter().find(|a| **a != Atom::sym(kw::ERROR)))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ginflow_core::workflow::{ReplacementTask, WorkflowBuilder};
    use ginflow_core::Workflow;
    use ginflow_hoclflow::agent_programs;

    fn fig5() -> Workflow {
        let mut b = WorkflowBuilder::new("fig5");
        b.task("T1", "s1").input(Value::str("input"));
        b.task("T2", "s2").after(["T1"]);
        b.task("T3", "s3").after(["T1"]);
        b.task("T4", "s4").after(["T2", "T3"]);
        b.adaptation(
            "replace-T2",
            ["T2"],
            ["T2"],
            [ReplacementTask::new("T2'", "s2p", ["T1"])],
        );
        b.build().unwrap()
    }

    fn core_for(wf: &Workflow, task: &str) -> SaCore {
        let (agents, plans) = agent_programs(wf);
        let program = agents.into_iter().find(|a| a.name == task).unwrap();
        SaCore::new(program, Arc::new(plans))
    }

    fn invoke_command(commands: &[Command]) -> (EffectId, String, Vec<Value>) {
        commands
            .iter()
            .find_map(|c| match c {
                Command::Invoke {
                    effect,
                    service,
                    params,
                } => Some((*effect, service.clone(), params.clone())),
                _ => None,
            })
            .expect("an Invoke command")
    }

    #[test]
    fn source_task_invokes_on_start() {
        let wf = fig5();
        let mut t1 = core_for(&wf, "T1");
        let commands = t1.handle(Event::Start).unwrap();
        let (_, service, params) = invoke_command(&commands);
        assert_eq!(service, "s1");
        assert_eq!(params, vec![Value::str("input")]);
        assert_eq!(t1.state(), TaskState::Running);
        assert!(commands.iter().any(|c| matches!(
            c,
            Command::Publish {
                state: TaskState::Running,
                ..
            }
        )));
    }

    #[test]
    fn completion_fans_out_results() {
        let wf = fig5();
        let mut t1 = core_for(&wf, "T1");
        let commands = t1.handle(Event::Start).unwrap();
        let (effect, _, _) = invoke_command(&commands);
        let commands = t1
            .handle(Event::ServiceCompleted {
                effect,
                result: Ok(Value::str("r1")),
            })
            .unwrap();
        let sends: Vec<(&str, &SaMessage)> = commands
            .iter()
            .filter_map(|c| match c {
                Command::Send { to, message } => Some((to.as_str(), message)),
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 2);
        for (to, msg) in &sends {
            assert!(["T2", "T3"].contains(to));
            assert_eq!(
                *msg,
                &SaMessage::Result {
                    from: "T1".into(),
                    value: Value::str("r1")
                }
            );
        }
        assert_eq!(t1.state(), TaskState::Completed);
        assert_eq!(t1.result(), Some(Value::str("r1")));
    }

    #[test]
    fn waiting_task_runs_after_all_dependencies() {
        let wf = fig5();
        let mut t4 = core_for(&wf, "T4");
        assert!(t4.handle(Event::Start).unwrap().is_empty());
        let commands = t4
            .handle(Event::Deliver(SaMessage::Result {
                from: "T2".into(),
                value: Value::str("r2"),
            }))
            .unwrap();
        assert!(commands.is_empty(), "still waiting for T3");
        let commands = t4
            .handle(Event::Deliver(SaMessage::Result {
                from: "T3".into(),
                value: Value::str("r3"),
            }))
            .unwrap();
        let (_, service, params) = invoke_command(&commands);
        assert_eq!(service, "s4");
        // Parameter order is provenance-sorted: T2 before T3.
        assert_eq!(params, vec![Value::str("r2"), Value::str("r3")]);
    }

    #[test]
    fn duplicate_results_are_ignored() {
        let wf = fig5();
        let mut t2 = core_for(&wf, "T2");
        t2.handle(Event::Start).unwrap();
        let first = t2
            .handle(Event::Deliver(SaMessage::Result {
                from: "T1".into(),
                value: Value::str("r1"),
            }))
            .unwrap();
        assert!(first.iter().any(|c| matches!(c, Command::Invoke { .. })));
        // A recovered T1 re-sends: no second invocation may happen.
        let dup = t2
            .handle(Event::Deliver(SaMessage::Result {
                from: "T1".into(),
                value: Value::str("r1-replayed"),
            }))
            .unwrap();
        assert!(!dup.iter().any(|c| matches!(c, Command::Invoke { .. })));
    }

    #[test]
    fn failure_triggers_adaptation_fanout() {
        let wf = fig5();
        let mut t2 = core_for(&wf, "T2");
        t2.handle(Event::Start).unwrap();
        let commands = t2
            .handle(Event::Deliver(SaMessage::Result {
                from: "T1".into(),
                value: Value::str("r1"),
            }))
            .unwrap();
        let (effect, _, _) = invoke_command(&commands);
        let commands = t2
            .handle(Event::ServiceCompleted {
                effect,
                result: Err("boom".into()),
            })
            .unwrap();
        let sends: Vec<(&str, &SaMessage)> = commands
            .iter()
            .filter_map(|c| match c {
                Command::Send { to, message } => Some((to.as_str(), message)),
                _ => None,
            })
            .collect();
        // ADAPT to T1 and T4, TRIGGER to T2'.
        assert!(sends.contains(&("T1", &SaMessage::Adapt { adaptation: 0 })));
        assert!(sends.contains(&("T4", &SaMessage::Adapt { adaptation: 0 })));
        assert!(sends.contains(&("T2'", &SaMessage::Trigger { adaptation: 0 })));
        // No Result was propagated.
        assert!(!sends
            .iter()
            .any(|(_, m)| matches!(m, SaMessage::Result { .. })));
        assert_eq!(t2.state(), TaskState::Failed);
    }

    #[test]
    fn completed_source_resends_on_adapt() {
        let wf = fig5();
        let mut t1 = core_for(&wf, "T1");
        let commands = t1.handle(Event::Start).unwrap();
        let (effect, _, _) = invoke_command(&commands);
        t1.handle(Event::ServiceCompleted {
            effect,
            result: Ok(Value::str("r1")),
        })
        .unwrap();
        // ADAPT arrives after completion: the retained result is resent to
        // the replacement entry.
        let commands = t1
            .handle(Event::Deliver(SaMessage::Adapt { adaptation: 0 }))
            .unwrap();
        let sends: Vec<(&str, &SaMessage)> = commands
            .iter()
            .filter_map(|c| match c {
                Command::Send { to, message } => Some((to.as_str(), message)),
                _ => None,
            })
            .collect();
        assert_eq!(
            sends,
            vec![(
                "T2'",
                &SaMessage::Result {
                    from: "T1".into(),
                    value: Value::str("r1")
                }
            )]
        );
    }

    #[test]
    fn standby_agent_activates_on_trigger() {
        let wf = fig5();
        let mut t2p = core_for(&wf, "T2'");
        assert!(t2p.is_standby());
        assert!(t2p.handle(Event::Start).unwrap().is_empty());
        // Early delivery before the trigger parks inertly.
        let commands = t2p
            .handle(Event::Deliver(SaMessage::Result {
                from: "T1".into(),
                value: Value::str("r1"),
            }))
            .unwrap();
        assert!(commands.is_empty());
        // Trigger activates: the parked input immediately drives setup+call.
        let commands = t2p
            .handle(Event::Deliver(SaMessage::Trigger { adaptation: 0 }))
            .unwrap();
        let (_, service, params) = invoke_command(&commands);
        assert_eq!(service, "s2p");
        assert_eq!(params, vec![Value::str("r1")]);
    }

    #[test]
    fn destination_reroutes_sources_on_adapt() {
        let wf = fig5();
        let mut t4 = core_for(&wf, "T4");
        t4.handle(Event::Start).unwrap();
        // T3 delivered before the failure.
        t4.handle(Event::Deliver(SaMessage::Result {
            from: "T3".into(),
            value: Value::str("r3"),
        }))
        .unwrap();
        // Adaptation: T2 → T2'.
        t4.handle(Event::Deliver(SaMessage::Adapt { adaptation: 0 }))
            .unwrap();
        // Late result from the dead T2 is ignored…
        let commands = t4
            .handle(Event::Deliver(SaMessage::Result {
                from: "T2".into(),
                value: Value::str("stale"),
            }))
            .unwrap();
        assert!(!commands.iter().any(|c| matches!(c, Command::Invoke { .. })));
        // …while T2' completes the input set.
        let commands = t4
            .handle(Event::Deliver(SaMessage::Result {
                from: "T2'".into(),
                value: Value::str("r2p"),
            }))
            .unwrap();
        let (_, _, params) = invoke_command(&commands);
        assert_eq!(params, vec![Value::str("r2p"), Value::str("r3")]);
    }

    #[test]
    fn unknown_effect_completion_is_ignored() {
        let wf = fig5();
        let mut t1 = core_for(&wf, "T1");
        let commands = t1
            .handle(Event::ServiceCompleted {
                effect: EffectId(999),
                result: Ok(Value::str("ghost")),
            })
            .unwrap();
        // Start-up reduction may fire, but the ghost completion itself is
        // dropped without error.
        let _ = commands;
    }

    #[test]
    fn replaying_the_inbox_rebuilds_the_same_state() {
        // §IV-B's soft-state argument, as a test: same events ⇒ same
        // solution.
        let wf = fig5();
        let events = [
            Event::Start,
            Event::Deliver(SaMessage::Result {
                from: "T2".into(),
                value: Value::str("r2"),
            }),
            Event::Deliver(SaMessage::Result {
                from: "T3".into(),
                value: Value::str("r3"),
            }),
        ];
        let run = || {
            let mut t4 = core_for(&wf, "T4");
            let mut all_commands = Vec::new();
            for e in &events {
                all_commands.extend(t4.handle(e.clone()).unwrap());
            }
            (format!("{}", t4.solution()), all_commands)
        };
        let (sol1, cmd1) = run();
        let (sol2, cmd2) = run();
        assert_eq!(sol1, sol2);
        assert_eq!(cmd1, cmd2);
    }

    #[test]
    fn stats_accumulate() {
        let wf = fig5();
        let mut t1 = core_for(&wf, "T1");
        t1.handle(Event::Start).unwrap();
        let stats = t1.take_stats();
        assert!(stats.applications > 0);
        assert!(stats.weight_scanned > 0);
        assert_eq!(t1.take_stats().applications, 0);
    }
}
