//! Wire messages between service agents, and the status updates sent "to
//! the multiset so as to update the status of the workflow" (§IV-A).
//!
//! Topic *names* live in [`ginflow_mq::TopicNamespace`]: every message
//! here travels on a run-scoped topic (`run/<id>/sa.<task>` inboxes,
//! `run/<id>/status`), so concurrent runs on one broker never see each
//! other's traffic.

use ginflow_core::{TaskState, Value};
use serde::{Deserialize, Serialize};

/// Point-to-point message between service agents.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SaMessage {
    /// A produced result shipped from one agent to a successor — the
    /// decentralised `gw_pass`.
    Result {
        /// Producing task.
        from: String,
        /// The result value.
        value: Value,
    },
    /// The `ADAPT : k` token: enables the receiver's gated adaptation
    /// rules (`add_dst`, `mv_src`).
    Adapt {
        /// Adaptation id.
        adaptation: u32,
    },
    /// The `TRIGGER : k` token: activates a standby replacement agent.
    Trigger {
        /// Adaptation id.
        adaptation: u32,
    },
}

impl SaMessage {
    /// Serialise to JSON bytes for the broker.
    pub fn encode(&self) -> bytes::Bytes {
        bytes::Bytes::from(serde_json::to_vec(self).expect("SaMessage serialisation"))
    }

    /// Deserialise from broker payload bytes.
    pub fn decode(payload: &[u8]) -> Option<SaMessage> {
        serde_json::from_slice(payload).ok()
    }
}

/// Status update published to the shared status topic — the runtime's view
/// of the "shared multiset" execution state (Fig 1's coloured nodes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatusUpdate {
    /// Task name.
    pub task: String,
    /// Current lifecycle state.
    pub state: TaskState,
    /// The result value, once completed.
    pub result: Option<Value>,
    /// Incarnation number (0 = first SA, bumped on every respawn).
    pub incarnation: u32,
}

impl StatusUpdate {
    /// Serialise to JSON bytes for the broker.
    pub fn encode(&self) -> bytes::Bytes {
        bytes::Bytes::from(serde_json::to_vec(self).expect("StatusUpdate serialisation"))
    }

    /// Deserialise from broker payload bytes.
    pub fn decode(payload: &[u8]) -> Option<StatusUpdate> {
        serde_json::from_slice(payload).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sa_message_roundtrip() {
        for m in [
            SaMessage::Result {
                from: "T1".into(),
                value: Value::str("out"),
            },
            SaMessage::Adapt { adaptation: 3 },
            SaMessage::Trigger { adaptation: 0 },
        ] {
            let bytes = m.encode();
            assert_eq!(SaMessage::decode(&bytes), Some(m));
        }
        assert_eq!(SaMessage::decode(b"not json"), None);
    }

    #[test]
    fn status_roundtrip() {
        let s = StatusUpdate {
            task: "T4".into(),
            state: TaskState::Completed,
            result: Some(Value::str("final")),
            incarnation: 2,
        };
        assert_eq!(StatusUpdate::decode(&s.encode()), Some(s));
    }
}
