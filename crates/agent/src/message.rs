//! Wire messages between service agents, and the status updates sent "to
//! the multiset so as to update the status of the workflow" (§IV-A).
//!
//! Topic *names* live in [`ginflow_mq::TopicNamespace`]: every message
//! here travels on a run-scoped topic (`run/<id>/sa.<task>` inboxes,
//! `run/<id>/status`), so concurrent runs on one broker never see each
//! other's traffic.
//!
//! ## Encoding
//!
//! Both message types encode to a compact length-prefixed **binary**
//! format (first byte [`CODEC_MAGIC`]), keeping serde_json off the
//! per-message hot path: a status update is a handful of `memcpy`s
//! instead of a JSON object build + render, and decode walks the bytes
//! directly instead of parsing text. [`SaMessage::decode`] /
//! [`StatusUpdate::decode`] transparently fall back to the previous
//! JSON format — `0xB1` is not a valid first byte of any JSON document,
//! so old-format payloads (a mid-rollout peer, a retained log from an
//! older build) still decode. Values ([`Value`] atoms) are encoded
//! structurally; the rare higher-order `Rule` atom falls back to an
//! embedded JSON leaf rather than growing a second codec for rule
//! internals.

use ginflow_core::{TaskState, Value};
use serde::{Deserialize, Serialize};

/// First byte of every binary-encoded message. Deliberately not `{`,
/// `[`, whitespace, or any other byte JSON can start with, so the
/// decoder can dispatch binary-vs-JSON on one byte.
pub const CODEC_MAGIC: u8 = 0xB1;

/// Point-to-point message between service agents.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SaMessage {
    /// A produced result shipped from one agent to a successor — the
    /// decentralised `gw_pass`.
    Result {
        /// Producing task.
        from: String,
        /// The result value.
        value: Value,
    },
    /// The `ADAPT : k` token: enables the receiver's gated adaptation
    /// rules (`add_dst`, `mv_src`).
    Adapt {
        /// Adaptation id.
        adaptation: u32,
    },
    /// The `TRIGGER : k` token: activates a standby replacement agent.
    Trigger {
        /// Adaptation id.
        adaptation: u32,
    },
}

impl SaMessage {
    /// Serialise to compact binary bytes for the broker.
    pub fn encode(&self) -> bytes::Bytes {
        let mut buf = Vec::with_capacity(32);
        buf.push(CODEC_MAGIC);
        match self {
            SaMessage::Result { from, value } => {
                buf.push(0x01);
                put_str(&mut buf, from);
                put_value(&mut buf, value);
            }
            SaMessage::Adapt { adaptation } => {
                buf.push(0x02);
                buf.extend_from_slice(&adaptation.to_be_bytes());
            }
            SaMessage::Trigger { adaptation } => {
                buf.push(0x03);
                buf.extend_from_slice(&adaptation.to_be_bytes());
            }
        }
        bytes::Bytes::from(buf)
    }

    /// Deserialise from broker payload bytes: the binary format, or —
    /// for payloads from before the binary codec — JSON.
    pub fn decode(payload: &[u8]) -> Option<SaMessage> {
        if payload.first() != Some(&CODEC_MAGIC) {
            return serde_json::from_slice(payload).ok();
        }
        let mut r = Reader::new(&payload[1..]);
        let message = match r.u8()? {
            0x01 => SaMessage::Result {
                from: r.str()?,
                value: r.value(0)?,
            },
            0x02 => SaMessage::Adapt {
                adaptation: r.u32()?,
            },
            0x03 => SaMessage::Trigger {
                adaptation: r.u32()?,
            },
            _ => return None,
        };
        r.finish().then_some(message)
    }
}

/// Status update published to the shared status topic — the runtime's view
/// of the "shared multiset" execution state (Fig 1's coloured nodes).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatusUpdate {
    /// Task name.
    pub task: String,
    /// Current lifecycle state.
    pub state: TaskState,
    /// The result value, once completed.
    pub result: Option<Value>,
    /// Incarnation number (0 = first SA, bumped on every respawn).
    pub incarnation: u32,
}

impl StatusUpdate {
    /// Serialise to compact binary bytes for the broker.
    pub fn encode(&self) -> bytes::Bytes {
        let mut buf = Vec::with_capacity(32);
        buf.push(CODEC_MAGIC);
        buf.push(0x10);
        put_str(&mut buf, &self.task);
        buf.push(state_tag(self.state));
        buf.extend_from_slice(&self.incarnation.to_be_bytes());
        match &self.result {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                put_value(&mut buf, v);
            }
        }
        bytes::Bytes::from(buf)
    }

    /// Deserialise from broker payload bytes: the binary format, or —
    /// for payloads from before the binary codec — JSON.
    pub fn decode(payload: &[u8]) -> Option<StatusUpdate> {
        if payload.first() != Some(&CODEC_MAGIC) {
            return serde_json::from_slice(payload).ok();
        }
        let mut r = Reader::new(&payload[1..]);
        if r.u8()? != 0x10 {
            return None;
        }
        let task = r.str()?;
        let state = state_from_tag(r.u8()?)?;
        let incarnation = r.u32()?;
        let result = match r.u8()? {
            0 => None,
            1 => Some(r.value(0)?),
            _ => return None,
        };
        r.finish().then_some(StatusUpdate {
            task,
            state,
            result,
            incarnation,
        })
    }
}

fn state_tag(state: TaskState) -> u8 {
    match state {
        TaskState::Idle => 0,
        TaskState::Running => 1,
        TaskState::Completed => 2,
        TaskState::Failed => 3,
    }
}

fn state_from_tag(tag: u8) -> Option<TaskState> {
    Some(match tag {
        0 => TaskState::Idle,
        1 => TaskState::Running,
        2 => TaskState::Completed,
        3 => TaskState::Failed,
        _ => return None,
    })
}

/// Deepest [`Value`] nesting the decoder will follow — bounds stack use
/// against a corrupt payload; real workflow values are a few levels.
const MAX_VALUE_DEPTH: u8 = 64;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Structural [`Value`] encoding. Tags 0–7 cover every value workflows
/// actually ship; the higher-order `Rule` atom (tag 8) embeds its JSON
/// rendering as a leaf.
fn put_value(buf: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Int(v) => {
            buf.push(0);
            buf.extend_from_slice(&v.to_be_bytes());
        }
        Value::Float(v) => {
            buf.push(1);
            buf.extend_from_slice(&v.to_bits().to_be_bytes());
        }
        Value::Str(s) => {
            buf.push(2);
            put_str(buf, s);
        }
        Value::Bool(v) => {
            buf.push(3);
            buf.push(u8::from(*v));
        }
        Value::Sym(s) => {
            buf.push(4);
            put_str(buf, s.as_str());
        }
        Value::Tuple(elems) => {
            buf.push(5);
            buf.extend_from_slice(&(elems.len() as u32).to_be_bytes());
            for e in elems {
                put_value(buf, e);
            }
        }
        Value::List(elems) => {
            buf.push(6);
            buf.extend_from_slice(&(elems.len() as u32).to_be_bytes());
            for e in elems {
                put_value(buf, e);
            }
        }
        Value::Sub(ms) => {
            buf.push(7);
            buf.extend_from_slice(&(ms.len() as u32).to_be_bytes());
            for e in ms.iter() {
                put_value(buf, e);
            }
        }
        rule @ Value::Rule(_) => {
            buf.push(8);
            let json = serde_json::to_vec(rule).expect("rule serialisation");
            buf.extend_from_slice(&(json.len() as u32).to_be_bytes());
            buf.extend_from_slice(&json);
        }
    }
}

/// Cursor over a binary payload: a thin `Option`-returning wrapper
/// around the workspace's one truncation-checked byte reader
/// ([`ginflow_mq::wire::Reader`]), so this codec and the wire codec
/// cannot drift apart on corruption handling. Every accessor returns
/// `None` on truncation or a bad tag, so a corrupt payload decodes to
/// `None` (exactly like unparseable JSON did) rather than panicking.
struct Reader<'a>(ginflow_mq::wire::Reader<'a>);

impl<'a> Reader<'a> {
    fn new(body: &'a [u8]) -> Self {
        Reader(ginflow_mq::wire::Reader::new(body))
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        self.0.take(n).ok()
    }

    fn u8(&mut self) -> Option<u8> {
        self.0.u8().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.0.u32().ok()
    }

    fn u64(&mut self) -> Option<u64> {
        self.0.u64().ok()
    }

    fn str(&mut self) -> Option<String> {
        self.0.str().ok()
    }

    /// A `count` of sub-values claiming more than could fit in the
    /// remaining bytes (every value is ≥ 1 byte) is corrupt.
    fn count(&mut self) -> Option<usize> {
        let count = self.u32()? as usize;
        (count <= self.0.remaining()).then_some(count)
    }

    fn value(&mut self, depth: u8) -> Option<Value> {
        if depth >= MAX_VALUE_DEPTH {
            return None;
        }
        Some(match self.u8()? {
            0 => Value::Int(i64::from_be_bytes(self.take(8)?.try_into().ok()?)),
            1 => Value::Float(f64::from_bits(self.u64()?)),
            2 => Value::Str(self.str()?),
            3 => match self.u8()? {
                0 => Value::Bool(false),
                1 => Value::Bool(true),
                _ => return None,
            },
            4 => Value::sym(self.str()?),
            5 => {
                let count = self.count()?;
                let mut elems = Vec::with_capacity(count);
                for _ in 0..count {
                    elems.push(self.value(depth + 1)?);
                }
                Value::Tuple(elems)
            }
            6 => {
                let count = self.count()?;
                let mut elems = Vec::with_capacity(count);
                for _ in 0..count {
                    elems.push(self.value(depth + 1)?);
                }
                Value::List(elems)
            }
            7 => {
                let count = self.count()?;
                let mut elems = Vec::with_capacity(count);
                for _ in 0..count {
                    elems.push(self.value(depth + 1)?);
                }
                Value::sub(elems)
            }
            8 => {
                let len = self.u32()? as usize;
                let rule: Value = serde_json::from_slice(self.take(len)?).ok()?;
                rule.is_rule().then_some(rule)?
            }
            _ => return None,
        })
    }

    /// Whole payload consumed? Trailing garbage means the peer and we
    /// disagree about the layout — corruption, not leniency.
    fn finish(&self) -> bool {
        self.0.is_exhausted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sa_message_roundtrip() {
        for m in [
            SaMessage::Result {
                from: "T1".into(),
                value: Value::str("out"),
            },
            SaMessage::Result {
                from: "T2".into(),
                value: Value::tuple([
                    Value::sym("SRC"),
                    Value::list([Value::int(-7), Value::float(1.5), Value::bool(true)]),
                    Value::sub([Value::str("nested")]),
                ]),
            },
            SaMessage::Adapt { adaptation: 3 },
            SaMessage::Trigger { adaptation: 0 },
        ] {
            let bytes = m.encode();
            assert_eq!(bytes[0], CODEC_MAGIC, "binary format is the default");
            assert_eq!(SaMessage::decode(&bytes), Some(m));
        }
        assert_eq!(SaMessage::decode(b"not json"), None);
    }

    #[test]
    fn status_roundtrip() {
        let s = StatusUpdate {
            task: "T4".into(),
            state: TaskState::Completed,
            result: Some(Value::str("final")),
            incarnation: 2,
        };
        assert_eq!(StatusUpdate::decode(&s.encode()), Some(s));
        let no_result = StatusUpdate {
            task: "T1".into(),
            state: TaskState::Running,
            result: None,
            incarnation: 0,
        };
        assert_eq!(StatusUpdate::decode(&no_result.encode()), Some(no_result));
    }

    #[test]
    fn json_payloads_still_decode() {
        // The pre-binary wire format: plain serde_json. A retained log
        // written by an older build (or a mid-rollout peer) must keep
        // decoding.
        let m = SaMessage::Adapt { adaptation: 9 };
        let json = serde_json::to_vec(&m).unwrap();
        assert_eq!(SaMessage::decode(&json), Some(m));
        let s = StatusUpdate {
            task: "T1".into(),
            state: TaskState::Failed,
            result: None,
            incarnation: 1,
        };
        let json = serde_json::to_vec(&s).unwrap();
        assert_eq!(StatusUpdate::decode(&json), Some(s));
    }

    #[test]
    fn truncated_binary_is_rejected_not_panicked() {
        let bytes = SaMessage::Result {
            from: "T1".into(),
            value: Value::tuple([Value::int(1), Value::str("x")]),
        }
        .encode();
        for cut in 1..bytes.len() {
            assert_eq!(SaMessage::decode(&bytes[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage is corruption too.
        let mut longer = bytes.to_vec();
        longer.push(0xff);
        assert_eq!(SaMessage::decode(&longer), None);
    }

    #[test]
    fn empty_payload_is_not_a_message() {
        // The shutdown sentinel: an empty payload must decode to None
        // (it is neither binary nor JSON).
        assert_eq!(StatusUpdate::decode(b""), None);
        assert_eq!(SaMessage::decode(b""), None);
    }
}
