//! The threaded runtime: one OS thread per service agent over a
//! [`Broker`], plus the §IV-B recovery machinery.
//!
//! Agents communicate point-to-point through per-task inbox topics and
//! publish state transitions to the shared status topic (the runtime view
//! of the shared multiset). A *crash* is simulated by a kill flag the
//! agent observes between events — the thread exits, losing all local
//! state, exactly like the paper's killed JVM. *Recovery* starts a fresh
//! agent for the task; on a persistent broker it subscribes to its inbox
//! **from the beginning**, replaying every molecule the dead incarnation
//! ever received ("replay them in the same order on a newly created SA").
//! Replayed invocations re-run the (idempotent) service and duplicate
//! results are structurally ignored by the receivers' `gw_recv` rule.
//!
//! With the transient broker the same recovery *starts* but has no history
//! to replay, so the workflow hangs — the reason the paper pairs recovery
//! with Kafka (§IV-B) and accepts ActiveMQ's speed only when resilience is
//! not needed (Fig 14 vs Fig 16).

use crate::core::{Command, Event, SaCore};
use crate::message::{topics, SaMessage, StatusUpdate};
use ginflow_core::{ServiceRegistry, TaskState, Value, Workflow};
use ginflow_hoclflow::{agent_programs, AdaptPlan, AgentProgram};
use ginflow_mq::{Broker, SubscribeMode, Subscription};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Runtime tuning.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Inbox poll interval (also the crash-flag observation granularity).
    pub poll_interval: Duration,
    /// Automatically respawn agents whose thread died (the recovery
    /// manager of §IV-B). Requires a persistent broker to be useful.
    pub auto_recover: bool,
    /// How often the recovery manager scans for dead agents.
    pub monitor_interval: Duration,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            poll_interval: Duration::from_millis(5),
            auto_recover: false,
            monitor_interval: Duration::from_millis(10),
        }
    }
}

/// Waiting for a workflow failed.
#[derive(Debug)]
pub enum WaitError {
    /// The deadline passed; the snapshot shows where execution stood.
    Timeout {
        /// Task states at the deadline.
        statuses: Vec<(String, TaskState)>,
    },
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::Timeout { statuses } => {
                write!(f, "workflow did not complete in time; states: ")?;
                for (t, s) in statuses {
                    write!(f, "{t}={s} ")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for WaitError {}

/// The launcher. Deployment strategies (`ginflow-executor`) decide *where*
/// agents go; this runtime is the *how*.
pub struct ThreadedRuntime {
    broker: Arc<dyn Broker>,
    registry: Arc<ServiceRegistry>,
    options: RunOptions,
}

impl ThreadedRuntime {
    /// Runtime over a broker and service registry.
    pub fn new(broker: Arc<dyn Broker>, registry: Arc<ServiceRegistry>) -> Self {
        ThreadedRuntime {
            broker,
            registry,
            options: RunOptions::default(),
        }
    }

    /// Override the default options.
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Compile `workflow` and launch one agent per task.
    pub fn launch(&self, workflow: &Workflow) -> WorkflowRun {
        let (agents, plans) = agent_programs(workflow);
        self.launch_programs(agents, plans)
    }

    /// Launch pre-compiled agent programs.
    pub fn launch_programs(
        &self,
        agents: Vec<AgentProgram>,
        plans: Vec<AdaptPlan>,
    ) -> WorkflowRun {
        let sinks: Vec<String> = agents
            .iter()
            .filter(|a| a.is_sink())
            .map(|a| a.name.clone())
            .collect();
        let inner = Arc::new(RunInner {
            broker: self.broker.clone(),
            registry: self.registry.clone(),
            programs: agents
                .iter()
                .map(|a| (a.name.clone(), a.clone()))
                .collect(),
            plans: Arc::new(plans),
            agents: Mutex::new(HashMap::new()),
            statuses: Mutex::new(HashMap::new()),
            incarnations: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            options: self.options.clone(),
            sinks,
        });

        // Status collector first: no update may be missed.
        let status_sub = inner
            .broker
            .subscribe(topics::STATUS, SubscribeMode::Latest)
            .expect("status subscription");
        let status_inner = inner.clone();
        let status_thread = std::thread::spawn(move || status_loop(status_inner, status_sub));

        // All inbox subscriptions are created before any agent starts, so
        // no agent can publish to a not-yet-subscribed inbox.
        let mut pending: Vec<(AgentProgram, Subscription)> = Vec::with_capacity(agents.len());
        for program in agents {
            let sub = inner
                .broker
                .subscribe(&topics::inbox(&program.name), SubscribeMode::Latest)
                .expect("inbox subscription");
            pending.push((program, sub));
        }
        for (program, sub) in pending {
            spawn_agent(&inner, program, sub, 0);
        }

        let monitor_thread = if self.options.auto_recover {
            let mon_inner = inner.clone();
            Some(std::thread::spawn(move || monitor_loop(mon_inner)))
        } else {
            None
        };

        WorkflowRun {
            inner,
            status_thread: Some(status_thread),
            monitor_thread,
        }
    }
}

struct AgentHandle {
    kill: Arc<AtomicBool>,
    thread: JoinHandle<()>,
    incarnation: u32,
}

struct RunInner {
    broker: Arc<dyn Broker>,
    registry: Arc<ServiceRegistry>,
    programs: HashMap<String, AgentProgram>,
    plans: Arc<Vec<AdaptPlan>>,
    agents: Mutex<HashMap<String, AgentHandle>>,
    statuses: Mutex<HashMap<String, StatusUpdate>>,
    incarnations: Mutex<HashMap<String, u32>>,
    shutdown: AtomicBool,
    options: RunOptions,
    sinks: Vec<String>,
}

/// A launched workflow: status observation, fault injection, recovery.
pub struct WorkflowRun {
    inner: Arc<RunInner>,
    status_thread: Option<JoinHandle<()>>,
    monitor_thread: Option<JoinHandle<()>>,
}

impl WorkflowRun {
    /// Latest observed state of a task.
    pub fn state_of(&self, task: &str) -> Option<TaskState> {
        self.inner.statuses.lock().get(task).map(|s| s.state)
    }

    /// Latest observed result of a task.
    pub fn result_of(&self, task: &str) -> Option<Value> {
        self.inner
            .statuses
            .lock()
            .get(task)
            .and_then(|s| s.result.clone())
    }

    /// Snapshot of all observed task states.
    pub fn statuses(&self) -> Vec<(String, TaskState)> {
        let mut v: Vec<(String, TaskState)> = self
            .inner
            .statuses
            .lock()
            .iter()
            .map(|(k, s)| (k.clone(), s.state))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Block until every sink task completes; returns their results.
    pub fn wait(&self, timeout: Duration) -> Result<HashMap<String, Value>, WaitError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let statuses = self.inner.statuses.lock();
                let done = self.inner.sinks.iter().all(|s| {
                    statuses.get(s).map(|u| u.state) == Some(TaskState::Completed)
                });
                if done {
                    return Ok(self
                        .inner
                        .sinks
                        .iter()
                        .filter_map(|s| {
                            statuses
                                .get(s)
                                .and_then(|u| u.result.clone())
                                .map(|r| (s.clone(), r))
                        })
                        .collect());
                }
            }
            if Instant::now() >= deadline {
                return Err(WaitError::Timeout {
                    statuses: self.statuses(),
                });
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Crash a task's agent (it stops consuming and its thread exits; all
    /// local state is lost). Returns whether the agent existed and was
    /// alive.
    pub fn kill(&self, task: &str) -> bool {
        let agents = self.inner.agents.lock();
        match agents.get(task) {
            Some(h) if !h.thread.is_finished() => {
                h.kill.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// Is the task's agent thread alive?
    pub fn alive(&self, task: &str) -> bool {
        self.inner
            .agents
            .lock()
            .get(task)
            .map(|h| !h.thread.is_finished())
            .unwrap_or(false)
    }

    /// Manually start a replacement agent for `task` (§IV-B recovery). On
    /// a persistent broker the newcomer replays the full inbox history.
    pub fn respawn(&self, task: &str) -> bool {
        respawn(&self.inner, task)
    }

    /// Current incarnation number of a task's agent.
    pub fn incarnation(&self, task: &str) -> u32 {
        self.inner
            .agents
            .lock()
            .get(task)
            .map(|h| h.incarnation)
            .unwrap_or(0)
    }

    /// Stop everything and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        let handles: Vec<AgentHandle> = {
            let mut agents = self.inner.agents.lock();
            agents.drain().map(|(_, h)| h).collect()
        };
        for h in handles {
            let _ = h.thread.join();
        }
        if let Some(t) = self.status_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.monitor_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkflowRun {
    fn drop(&mut self) {
        self.stop();
    }
}

fn spawn_agent(
    inner: &Arc<RunInner>,
    program: AgentProgram,
    sub: Subscription,
    incarnation: u32,
) {
    let name = program.name.clone();
    let kill = Arc::new(AtomicBool::new(false));
    let core = SaCore::new(program, inner.plans.clone());
    let thread_inner = inner.clone();
    let thread_kill = kill.clone();
    let thread = std::thread::Builder::new()
        .name(format!("sa-{name}"))
        .spawn(move || agent_loop(thread_inner, core, sub, thread_kill, incarnation))
        .expect("spawn agent thread");
    inner.agents.lock().insert(
        name,
        AgentHandle {
            kill,
            thread,
            incarnation,
        },
    );
}

fn respawn(inner: &Arc<RunInner>, task: &str) -> bool {
    let Some(program) = inner.programs.get(task).cloned() else {
        return false;
    };
    // Make sure any previous incarnation is (being) stopped.
    if let Some(h) = inner.agents.lock().get(task) {
        h.kill.store(true, Ordering::SeqCst);
    }
    let incarnation = {
        let mut inc = inner.incarnations.lock();
        let c = inc.entry(task.to_owned()).or_insert(0);
        *c += 1;
        *c
    };
    let mode = if inner.broker.persistent() {
        SubscribeMode::Beginning
    } else {
        SubscribeMode::Latest
    };
    let Ok(sub) = inner.broker.subscribe(&topics::inbox(task), mode) else {
        return false;
    };
    spawn_agent(inner, program, sub, incarnation);
    true
}

fn agent_loop(
    inner: Arc<RunInner>,
    mut core: SaCore,
    sub: Subscription,
    kill: Arc<AtomicBool>,
    incarnation: u32,
) {
    let name = core.name().to_owned();
    if dispatch(&inner, &mut core, &name, incarnation, Event::Start).is_err() {
        return;
    }
    loop {
        if kill.load(Ordering::SeqCst) || inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match sub.recv_timeout(inner.options.poll_interval) {
            Ok(msg) => {
                let Some(message) = SaMessage::decode(&msg.payload) else {
                    continue;
                };
                // A crash between reception and processing loses the event
                // locally — the log broker still has it for replay.
                if kill.load(Ordering::SeqCst) || inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if dispatch(&inner, &mut core, &name, incarnation, Event::Deliver(message))
                    .is_err()
                {
                    return;
                }
            }
            Err(ginflow_mq::MqError::Timeout) => continue,
            Err(_) => return,
        }
    }
}

/// Run one event through the core and execute every resulting command,
/// feeding service completions back in until quiescence.
fn dispatch(
    inner: &Arc<RunInner>,
    core: &mut SaCore,
    name: &str,
    incarnation: u32,
    event: Event,
) -> Result<(), ()> {
    let mut queue: VecDeque<Event> = VecDeque::from([event]);
    while let Some(event) = queue.pop_front() {
        let commands = core.handle(event).map_err(|_| ())?;
        for command in commands {
            match command {
                Command::Invoke {
                    effect,
                    service,
                    params,
                } => {
                    let result = match inner.registry.get(&service) {
                        Some(s) => s.invoke(&params).map_err(|e| e.message),
                        None => Err(format!("unknown service {service:?}")),
                    };
                    queue.push_back(Event::ServiceCompleted { effect, result });
                }
                Command::Send { to, message } => {
                    let _ = inner.broker.publish(
                        &topics::inbox(&to),
                        Some(bytes::Bytes::from(to.clone().into_bytes())),
                        message.encode(),
                    );
                }
                Command::Publish { state, result } => {
                    let update = StatusUpdate {
                        task: name.to_owned(),
                        state,
                        result,
                        incarnation,
                    };
                    let _ = inner
                        .broker
                        .publish(topics::STATUS, None, update.encode());
                }
            }
        }
    }
    Ok(())
}

fn status_loop(inner: Arc<RunInner>, sub: Subscription) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match sub.recv_timeout(inner.options.poll_interval) {
            Ok(msg) => {
                if let Some(update) = StatusUpdate::decode(&msg.payload) {
                    inner
                        .statuses
                        .lock()
                        .insert(update.task.clone(), update);
                }
            }
            Err(ginflow_mq::MqError::Timeout) => continue,
            Err(_) => return,
        }
    }
}

/// The recovery manager: respawn agents whose thread died while the
/// workflow is still running (the in-process analogue of the paper's
/// failure detector).
fn monitor_loop(inner: Arc<RunInner>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let dead: Vec<String> = {
            let agents = inner.agents.lock();
            agents
                .iter()
                .filter(|(_, h)| h.thread.is_finished())
                .map(|(n, _)| n.clone())
                .collect()
        };
        for task in dead {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            respawn(&inner, &task);
        }
        std::thread::sleep(inner.options.monitor_interval);
    }
}
