//! Runtime configuration plus the **legacy** thread-per-agent backend.
//!
//! The seed reproduction ran one OS thread per service agent, each
//! polling its inbox every 5 ms. That backend survives here — selected
//! with [`RunOptions::legacy_threads`] — as the A/B baseline for the
//! event-driven [`crate::scheduler::Scheduler`], which parks agents on
//! broker wakeups instead and drives them from a bounded worker pool.
//!
//! Agents communicate point-to-point through per-task inbox topics and
//! publish state transitions to the shared status topic (the runtime
//! view of the shared multiset). A *crash* is simulated by a kill flag
//! the agent observes between events — losing all local state, exactly
//! like the paper's killed JVM. *Recovery* starts a fresh agent for the
//! task; on a persistent broker it subscribes to its inbox **from the
//! beginning**, replaying every molecule the dead incarnation ever
//! received ("replay them in the same order on a newly created SA").
//! With the transient broker the same recovery *starts* but has no
//! history to replay, so the workflow hangs — the reason the paper pairs
//! recovery with Kafka (§IV-B).

use crate::core::{Event, SaCore};
use crate::engine::RunTracker;
use crate::exec::{publish_shutdown_sentinel, status_loop, AgentCtx, StatusBoard};
use crate::message::SaMessage;
use ginflow_core::{ServiceRegistry, TaskState, Value};
use ginflow_hoclflow::{AdaptPlan, AgentProgram};
use ginflow_mq::{Broker, LagProbe, RunId, SubscribeMode, Subscription, TopicNamespace};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Runtime tuning, shared by both backends.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Worker threads of the event-driven scheduler. `0` (the default)
    /// resolves to the machine's available parallelism. Ignored by the
    /// legacy backend, which spawns one thread per agent regardless.
    ///
    /// Service invocations run inline on the workers, so long-blocking
    /// services serialize per shard: until service offloading lands
    /// (see ROADMAP), raise this — or use [`RunOptions::legacy`] — for
    /// workloads dominated by slow external services.
    pub workers: usize,
    /// Run the seed's thread-per-agent polling backend instead of the
    /// worker-pool scheduler — the A/B escape hatch.
    pub legacy_threads: bool,
    /// Automatically respawn dead agents (the recovery manager of
    /// §IV-B). Requires a persistent broker to be useful.
    pub auto_recover: bool,
    /// Multi-process sharding: `Some((index, count))` makes this
    /// process run only the agents whose FNV name-hash lands in shard
    /// `index` of `count`. All shards must share one **persistent**
    /// broker (in practice a `ginflow-net` remote broker on the log
    /// profile): a sharded process subscribes with full replay, which
    /// is both how a process that starts after its peers catches up on
    /// their progress and how a killed-and-respawned shard rebuilds its
    /// agents' state. The shared status topic is the cross-shard
    /// membrane, so waits and reports still cover the whole workflow.
    /// `ginflow-engine` enforces the persistence requirement at
    /// `Engine::build`; driving the `Scheduler` directly with a
    /// transient broker and a shard set loses cross-shard messages
    /// published before this process subscribed.
    pub shard: Option<(u32, u32)>,
    /// The run id every topic of the launch is namespaced under
    /// (`run/<id>/sa.<task>`, `run/<id>/status`). `None` (the default)
    /// generates a fresh id per launch, so runs sharing a broker are
    /// isolated from each other. Pin it for multi-process sharding:
    /// every shard of one run must join the *same* namespace
    /// (`ginflow-engine` enforces this at `Engine::build`; `ginflow run
    /// --shard` requires `--run-id`).
    pub run_id: Option<RunId>,
    /// Legacy backend only: inbox poll interval (also the crash-flag
    /// observation granularity).
    pub poll_interval: Duration,
    /// Legacy backend only: how often the recovery manager scans for
    /// dead agent threads. (The event-driven scheduler needs no scan —
    /// dying agents notify their recovery manager directly.)
    pub monitor_interval: Duration,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: 0,
            legacy_threads: false,
            auto_recover: false,
            shard: None,
            run_id: None,
            poll_interval: Duration::from_millis(5),
            monitor_interval: Duration::from_millis(10),
        }
    }
}

impl RunOptions {
    /// The seed's thread-per-agent backend, defaults otherwise.
    pub fn legacy() -> Self {
        RunOptions {
            legacy_threads: true,
            ..RunOptions::default()
        }
    }

    /// The worker count to use: explicit, or the machine's parallelism.
    pub(crate) fn resolve_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }
}

/// Waiting for a workflow failed.
#[derive(Debug)]
pub enum WaitError {
    /// The wait's timeout passed; the snapshot shows where execution
    /// stood.
    Timeout {
        /// Task states at the timeout.
        statuses: Vec<(String, TaskState)>,
    },
    /// The *run's* deadline expired while waiting; the run has been
    /// cancelled and torn down.
    Deadline {
        /// Task states at the deadline.
        statuses: Vec<(String, TaskState)>,
    },
    /// The run was cancelled (or torn down) while waiting.
    Cancelled,
    /// A sink reached `Completed` without publishing a result — a
    /// protocol violation that used to be silently dropped from the
    /// result map.
    MissingResult {
        /// The sink with no result.
        task: String,
    },
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let dump = |f: &mut std::fmt::Formatter<'_>, statuses: &[(String, TaskState)]| {
            for (t, s) in statuses {
                write!(f, "{t}={s} ")?;
            }
            Ok(())
        };
        match self {
            WaitError::Timeout { statuses } => {
                write!(f, "workflow did not complete in time; states: ")?;
                dump(f, statuses)
            }
            WaitError::Deadline { statuses } => {
                write!(f, "run deadline expired (run cancelled); states: ")?;
                dump(f, statuses)
            }
            WaitError::Cancelled => f.write_str("run was cancelled"),
            WaitError::MissingResult { task } => {
                write!(f, "sink {task:?} completed without publishing a result")
            }
        }
    }
}

impl std::error::Error for WaitError {}

// ---------------------------------------------------------------------
// The legacy thread-per-agent backend
// ---------------------------------------------------------------------

struct AgentHandle {
    kill: Arc<AtomicBool>,
    thread: JoinHandle<()>,
    incarnation: u32,
}

struct LegacyInner {
    broker: Arc<dyn Broker>,
    /// The run's topic namespace (`run/<id>/…`).
    ns: Arc<TopicNamespace>,
    registry: Arc<ServiceRegistry>,
    programs: HashMap<String, AgentProgram>,
    plans: Arc<Vec<AdaptPlan>>,
    agents: Mutex<HashMap<String, AgentHandle>>,
    incarnations: Mutex<HashMap<String, u32>>,
    board: Arc<StatusBoard>,
    tracker: Arc<RunTracker>,
    shutdown: Arc<AtomicBool>,
    options: RunOptions,
    sinks: Vec<String>,
    /// Lag probes of every subscription the run ever opened.
    lag_probes: Mutex<Vec<LagProbe>>,
}

/// A workflow running on one thread per agent (the seed runtime).
pub(crate) struct LegacyRun {
    inner: Arc<LegacyInner>,
    status_thread: Mutex<Option<JoinHandle<()>>>,
    monitor_thread: Mutex<Option<JoinHandle<()>>>,
}

pub(crate) fn launch_legacy(
    broker: Arc<dyn Broker>,
    registry: Arc<ServiceRegistry>,
    agents: Vec<AgentProgram>,
    plans: Vec<AdaptPlan>,
    tracker: Arc<RunTracker>,
    ns: Arc<TopicNamespace>,
    options: RunOptions,
) -> LegacyRun {
    let sinks: Vec<String> = agents
        .iter()
        .filter(|a| a.is_sink())
        .map(|a| a.name.clone())
        .collect();
    let inner = Arc::new(LegacyInner {
        broker,
        ns,
        registry,
        programs: agents.iter().map(|a| (a.name.clone(), a.clone())).collect(),
        plans: Arc::new(plans),
        agents: Mutex::new(HashMap::new()),
        incarnations: Mutex::new(HashMap::new()),
        board: Arc::new(StatusBoard::new()),
        tracker,
        shutdown: Arc::new(AtomicBool::new(false)),
        options,
        sinks,
        lag_probes: Mutex::new(Vec::new()),
    });

    // Status collector first: no update may be missed.
    let status_sub = inner
        .broker
        .subscribe(inner.ns.status(), SubscribeMode::Latest)
        .expect("status subscription");
    inner.lag_probes.lock().push(status_sub.lag_probe());
    let status_thread = {
        let board = inner.board.clone();
        let tracker = inner.tracker.clone();
        let shutdown = inner.shutdown.clone();
        std::thread::spawn(move || status_loop(board, tracker, status_sub, shutdown))
    };

    // All inbox subscriptions are created before any agent starts, so
    // no agent can publish to a not-yet-subscribed inbox. The namespace
    // validates every task name here — the topic boundary.
    let mut pending: Vec<(AgentProgram, Subscription)> = Vec::with_capacity(agents.len());
    for program in agents {
        let topic = inner
            .ns
            .inbox(&program.name)
            .unwrap_or_else(|e| panic!("cannot launch agent: {e}"));
        let sub = inner
            .broker
            .subscribe(&topic, SubscribeMode::Latest)
            .expect("inbox subscription");
        inner.lag_probes.lock().push(sub.lag_probe());
        pending.push((program, sub));
    }
    for (program, sub) in pending {
        spawn_agent(&inner, program, sub, 0);
    }

    let monitor_thread = if inner.options.auto_recover {
        let mon_inner = inner.clone();
        Some(std::thread::spawn(move || monitor_loop(mon_inner)))
    } else {
        None
    };

    LegacyRun {
        inner,
        status_thread: Mutex::new(Some(status_thread)),
        monitor_thread: Mutex::new(monitor_thread),
    }
}

impl LegacyRun {
    pub fn board(&self) -> &StatusBoard {
        &self.inner.board
    }

    pub fn tracker(&self) -> &Arc<RunTracker> {
        &self.inner.tracker
    }

    /// Cumulative slow-subscriber drops across every subscription the
    /// run ever opened.
    pub fn lagged(&self) -> u64 {
        self.inner.lag_probes.lock().iter().map(|p| p.get()).sum()
    }

    pub fn wait(&self, timeout: Duration) -> Result<HashMap<String, Value>, WaitError> {
        self.inner.board.wait_for_sinks(&self.inner.sinks, timeout)
    }

    pub fn kill(&self, task: &str) -> bool {
        let agents = self.inner.agents.lock();
        match agents.get(task) {
            Some(h) if !h.thread.is_finished() => {
                h.kill.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    pub fn alive(&self, task: &str) -> bool {
        self.inner
            .agents
            .lock()
            .get(task)
            .map(|h| !h.thread.is_finished())
            .unwrap_or(false)
    }

    pub fn respawn(&self, task: &str) -> bool {
        respawn(&self.inner, task)
    }

    pub fn incarnation(&self, task: &str) -> u32 {
        self.inner
            .agents
            .lock()
            .get(task)
            .map(|h| h.incarnation)
            .unwrap_or(0)
    }

    /// Tear down: stop all agents and join every thread. Idempotent and
    /// callable from any thread holding the run.
    pub fn stop(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.board.close();
        let handles: Vec<AgentHandle> = {
            let mut agents = self.inner.agents.lock();
            agents.drain().map(|(_, h)| h).collect()
        };
        for h in handles {
            let _ = h.thread.join();
        }
        publish_shutdown_sentinel(&*self.inner.broker, &self.inner.ns);
        if let Some(t) = self.status_thread.lock().take() {
            let _ = t.join();
        }
        if let Some(t) = self.monitor_thread.lock().take() {
            let _ = t.join();
        }
        self.inner.tracker.close();
    }
}

fn spawn_agent(
    inner: &Arc<LegacyInner>,
    program: AgentProgram,
    sub: Subscription,
    incarnation: u32,
) {
    let name = program.name.clone();
    let kill = Arc::new(AtomicBool::new(false));
    let core = SaCore::new(program, inner.plans.clone());
    let thread_inner = inner.clone();
    let thread_kill = kill.clone();
    let thread = std::thread::Builder::new()
        .name(format!("sa-{name}"))
        .spawn(move || agent_loop(thread_inner, core, sub, thread_kill, incarnation))
        .expect("spawn agent thread");
    inner.agents.lock().insert(
        name,
        AgentHandle {
            kill,
            thread,
            incarnation,
        },
    );
}

fn respawn(inner: &Arc<LegacyInner>, task: &str) -> bool {
    let Some(program) = inner.programs.get(task).cloned() else {
        return false;
    };
    // Make sure any previous incarnation is (being) stopped.
    if let Some(h) = inner.agents.lock().get(task) {
        h.kill.store(true, Ordering::SeqCst);
    }
    let incarnation = {
        let mut inc = inner.incarnations.lock();
        let c = inc.entry(task.to_owned()).or_insert(0);
        *c += 1;
        *c
    };
    let mode = if inner.broker.persistent() {
        SubscribeMode::Beginning
    } else {
        SubscribeMode::Latest
    };
    let Ok(topic) = inner.ns.inbox(task) else {
        return false;
    };
    let Ok(sub) = inner.broker.subscribe(&topic, mode) else {
        return false;
    };
    inner.lag_probes.lock().push(sub.lag_probe());
    spawn_agent(inner, program, sub, incarnation);
    true
}

fn agent_loop(
    inner: Arc<LegacyInner>,
    mut core: SaCore,
    sub: Subscription,
    kill: Arc<AtomicBool>,
    incarnation: u32,
) {
    let name = core.name().to_owned();
    let ctx = AgentCtx {
        broker: &*inner.broker,
        ns: &inner.ns,
        registry: &inner.registry,
        name: &name,
        incarnation,
    };
    if ctx.dispatch(&mut core, Event::Start).is_err() {
        return;
    }
    loop {
        if kill.load(Ordering::SeqCst) || inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match sub.recv_timeout(inner.options.poll_interval) {
            Ok(msg) => {
                let Some(message) = SaMessage::decode(&msg.payload) else {
                    continue;
                };
                // A crash between reception and processing loses the
                // event locally — the log broker still has it for
                // replay.
                if kill.load(Ordering::SeqCst) || inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if ctx.dispatch(&mut core, Event::Deliver(message)).is_err() {
                    return;
                }
            }
            Err(ginflow_mq::MqError::Timeout) => continue,
            Err(_) => return,
        }
    }
}

/// The legacy recovery manager: respawn agents whose thread died while
/// the workflow is still running, discovered by periodic scanning.
fn monitor_loop(inner: Arc<LegacyInner>) {
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let dead: Vec<String> = {
            let agents = inner.agents.lock();
            agents
                .iter()
                .filter(|(_, h)| h.thread.is_finished())
                .map(|(n, _)| n.clone())
                .collect()
        };
        for task in dead {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            respawn(&inner, &task);
        }
        std::thread::sleep(inner.options.monitor_interval);
    }
}
