//! The Kafka-like persistent log broker.
//!
//! Topics are split into partitions; each partition is an append-only log
//! with dense offsets. Keys hash to partitions (FNV-1a), keyless messages
//! round-robin. Subscribers may attach at the head, from the beginning, or
//! from an offset; [`Broker::fetch`] reads retained messages directly —
//! "we exploit the ability of Kafka to persist the messages exchanged by
//! the services and to replay them on demand" (§IV-B).

use crate::broker::{
    fnv1a, subscription_pair, wake_all, Broker, Receipt, SubscribeMode, SubscriberHandle,
    Subscription, TopicShards,
};
use crate::error::MqError;
use crate::message::Message;
use bytes::Bytes;
use std::sync::Arc;

struct TopicState {
    /// The shared topic name every delivered [`Message`] clones — one
    /// allocation per topic lifetime, not one per publish.
    name: Arc<str>,
    partitions: Vec<Vec<Message>>,
    subscribers: Vec<SubscriberHandle>,
    round_robin: u32,
}

impl TopicState {
    fn new(topic: &str, partitions: u32) -> Self {
        TopicState {
            name: Arc::from(topic),
            partitions: (0..partitions.max(1)).map(|_| Vec::new()).collect(),
            subscribers: Vec::new(),
            round_robin: 0,
        }
    }
}

/// Persistent, partitioned, replayable in-memory broker. The topic map
/// is split into lock shards keyed by topic hash
/// ([`crate::broker::TOPIC_SHARDS`]), so publishes to distinct topics —
/// different agents' inboxes, different runs' namespaces — never
/// contend on a shared lock.
pub struct LogBroker {
    topics: TopicShards<TopicState>,
    default_partitions: u32,
}

impl Default for LogBroker {
    fn default() -> Self {
        LogBroker::new()
    }
}

impl LogBroker {
    /// Broker creating single-partition topics on demand.
    pub fn new() -> Self {
        LogBroker {
            topics: TopicShards::default(),
            default_partitions: 1,
        }
    }

    /// Broker creating `n`-partition topics on demand.
    pub fn with_default_partitions(n: u32) -> Self {
        LogBroker {
            topics: TopicShards::default(),
            default_partitions: n.max(1),
        }
    }

    /// Explicitly create (or resize-check) a topic with `n` partitions.
    /// Existing topics keep their partition count.
    pub fn create_topic(&self, topic: &str, partitions: u32) {
        self.topics
            .shard(topic)
            .lock()
            .entry(topic.to_owned())
            .or_insert_with(|| TopicState::new(topic, partitions));
    }

    fn route(state: &mut TopicState, key: Option<&Bytes>) -> u32 {
        let n = state.partitions.len() as u32;
        match key {
            Some(k) => fnv1a(k) % n,
            None => {
                let p = state.round_robin % n;
                state.round_robin = state.round_robin.wrapping_add(1);
                p
            }
        }
    }
}

impl Broker for LogBroker {
    fn publish(&self, topic: &str, key: Option<Bytes>, payload: Bytes) -> Result<Receipt, MqError> {
        let (wakers, receipt) = {
            let mut topics = self.topics.shard(topic).lock();
            let default_partitions = self.default_partitions;
            let state = topics
                .entry(topic.to_owned())
                .or_insert_with(|| TopicState::new(topic, default_partitions));
            let partition = Self::route(state, key.as_ref());
            let log = &mut state.partitions[partition as usize];
            let offset = log.len() as u64;
            let message = Message {
                topic: state.name.clone(),
                partition,
                offset,
                key,
                payload,
            };
            log.push(message.clone());
            state.subscribers.retain(|sub| sub.deliver(message.clone()));
            let wakers = state.subscribers.iter().filter_map(|s| s.waker()).collect();
            (wakers, Receipt { partition, offset })
        };
        // Wake outside the topic lock: wakers may publish in turn.
        wake_all(wakers);
        Ok(receipt)
    }

    fn subscribe(&self, topic: &str, mode: SubscribeMode) -> Result<Subscription, MqError> {
        let (handle, subscription) = subscription_pair();
        let mut topics = self.topics.shard(topic).lock();
        let default_partitions = self.default_partitions;
        let state = topics
            .entry(topic.to_owned())
            .or_insert_with(|| TopicState::new(topic, default_partitions));
        // Replay happens under the topic lock, so no message published
        // concurrently can be missed or duplicated. No waker can be
        // registered yet — `Subscription::set_waker` fires immediately
        // when it finds this backlog.
        match mode {
            SubscribeMode::Latest => {}
            SubscribeMode::Beginning => {
                for log in &state.partitions {
                    for m in log {
                        let _ = handle.deliver(m.clone());
                    }
                }
            }
            SubscribeMode::FromOffset(from) => {
                for log in &state.partitions {
                    for m in log.iter().skip(from as usize) {
                        let _ = handle.deliver(m.clone());
                    }
                }
            }
        }
        state.subscribers.push(handle);
        Ok(subscription)
    }

    fn fetch(
        &self,
        topic: &str,
        partition: u32,
        from_offset: u64,
        max: usize,
    ) -> Result<Vec<Message>, MqError> {
        let topics = self.topics.shard(topic).lock();
        let state = match topics.get(topic) {
            Some(s) => s,
            None => return Ok(Vec::new()),
        };
        let log =
            state
                .partitions
                .get(partition as usize)
                .ok_or_else(|| MqError::UnknownPartition {
                    topic: topic.to_owned(),
                    partition,
                })?;
        Ok(log
            .iter()
            .skip(from_offset as usize)
            .take(max)
            .cloned()
            .collect())
    }

    fn persistent(&self) -> bool {
        true
    }

    fn partitions(&self, topic: &str) -> u32 {
        self.topics
            .with(topic, |s| s.map(|s| s.partitions.len() as u32))
            .unwrap_or(1)
    }

    fn retained(&self, topic: &str) -> u64 {
        self.topics
            .with(topic, |s| {
                s.map(|s| s.partitions.iter().map(|p| p.len() as u64).sum())
            })
            .unwrap_or(0)
    }

    fn delete_topic(&self, topic: &str) -> bool {
        // Dropping the state drops every SubscriberHandle with it;
        // live subscriptions observe disconnection on their next recv.
        self.topics.remove(topic).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn publish_assigns_dense_offsets() {
        let b = LogBroker::new();
        for i in 0..4u64 {
            let r = b.publish("t", None, payload("x")).unwrap();
            assert_eq!(r.offset, i);
            assert_eq!(r.partition, 0);
        }
        assert_eq!(b.retained("t"), 4);
    }

    #[test]
    fn late_subscriber_replays_history() {
        let b = LogBroker::new();
        b.publish("t", None, payload("m0")).unwrap();
        b.publish("t", None, payload("m1")).unwrap();
        let sub = b.subscribe("t", SubscribeMode::Beginning).unwrap();
        b.publish("t", None, payload("m2")).unwrap();
        let got: Vec<String> = (0..3)
            .map(|_| {
                sub.recv_timeout(Duration::from_secs(1))
                    .unwrap()
                    .payload_str()
                    .into_owned()
            })
            .collect();
        assert_eq!(got, vec!["m0", "m1", "m2"]);
    }

    #[test]
    fn subscribe_from_offset() {
        let b = LogBroker::new();
        for i in 0..5 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        let sub = b.subscribe("t", SubscribeMode::FromOffset(3)).unwrap();
        assert_eq!(sub.recv().unwrap().payload_str(), "m3");
        assert_eq!(sub.recv().unwrap().payload_str(), "m4");
        assert_eq!(sub.try_recv().unwrap(), None);
    }

    #[test]
    fn fetch_replays_without_subscribing() {
        let b = LogBroker::new();
        for i in 0..10 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        let page1 = b.fetch("t", 0, 0, 4).unwrap();
        assert_eq!(page1.len(), 4);
        assert_eq!(page1[0].payload_str(), "m0");
        let page2 = b.fetch("t", 0, 4, 100).unwrap();
        assert_eq!(page2.len(), 6);
        assert_eq!(page2[5].payload_str(), "m9");
        assert!(b.fetch("missing", 0, 0, 10).unwrap().is_empty());
        assert!(matches!(
            b.fetch("t", 9, 0, 10),
            Err(MqError::UnknownPartition { .. })
        ));
    }

    #[test]
    fn keyed_messages_stick_to_partitions() {
        let b = LogBroker::with_default_partitions(4);
        let key = Bytes::from_static(b"sa.T7");
        let mut partitions = std::collections::HashSet::new();
        for _ in 0..10 {
            let r = b.publish("t", Some(key.clone()), payload("x")).unwrap();
            partitions.insert(r.partition);
        }
        assert_eq!(partitions.len(), 1, "same key must route identically");
    }

    #[test]
    fn per_partition_order_is_preserved() {
        let b = LogBroker::with_default_partitions(3);
        // Round-robin spreads keyless messages.
        for i in 0..9 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        for p in 0..3 {
            let log = b.fetch("t", p, 0, 100).unwrap();
            assert_eq!(log.len(), 3);
            let offsets: Vec<u64> = log.iter().map(|m| m.offset).collect();
            assert_eq!(offsets, vec![0, 1, 2], "dense offsets per partition");
        }
    }

    #[test]
    fn replay_then_live_has_no_gap_or_duplicate() {
        let b = std::sync::Arc::new(LogBroker::new());
        for i in 0..100 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        // Subscribe from the beginning while another thread publishes.
        let b2 = b.clone();
        let publisher = std::thread::spawn(move || {
            for i in 100..200 {
                b2.publish("t", None, payload(&format!("m{i}"))).unwrap();
            }
        });
        let sub = b.subscribe("t", SubscribeMode::Beginning).unwrap();
        publisher.join().unwrap();
        let mut seen = Vec::new();
        while let Some(m) = sub.try_recv().unwrap() {
            seen.push(m.payload_str().into_owned());
        }
        assert_eq!(seen.len(), 200);
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s, &format!("m{i}"));
        }
    }

    #[test]
    fn create_topic_controls_partitions() {
        let b = LogBroker::new();
        b.create_topic("wide", 8);
        assert_eq!(b.partitions("wide"), 8);
        // Existing topics keep their count.
        b.create_topic("wide", 2);
        assert_eq!(b.partitions("wide"), 8);
        assert_eq!(b.partitions("unknown"), 1);
    }

    #[test]
    fn delete_topic_reclaims_retention_and_disconnects_subscribers() {
        let b = LogBroker::new();
        b.publish("t", None, payload("m0")).unwrap();
        let sub = b.subscribe("t", SubscribeMode::Beginning).unwrap();
        assert!(b.delete_topic("t"));
        assert!(!b.delete_topic("t"), "already gone");
        assert_eq!(b.retained("t"), 0);
        // The queued replay drains, then the channel reports the broker
        // side gone.
        assert_eq!(sub.recv().unwrap().payload_str(), "m0");
        assert!(matches!(sub.recv(), Err(MqError::Disconnected)));
        // The name is reusable from scratch.
        b.publish("t", None, payload("fresh")).unwrap();
        assert_eq!(b.retained("t"), 1);
    }

    #[test]
    fn fnv_is_stable() {
        use crate::broker::fnv1a;
        assert_eq!(fnv1a(b""), 0x811c9dc5);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
