//! The Kafka-like persistent log broker.
//!
//! Topics are split into partitions; each partition is an append-only log
//! with dense offsets. Keys hash to partitions (FNV-1a), keyless messages
//! round-robin. Subscribers may attach at the head, from the beginning, or
//! from an offset; [`Broker::fetch`] reads retained messages directly —
//! "we exploit the ability of Kafka to persist the messages exchanged by
//! the services and to replay them on demand" (§IV-B).
//!
//! Retention is layered: every partition keeps a bounded in-memory window
//! of recent messages (the hot path for fan-out and replay), and a broker
//! opened with [`LogBroker::open`] additionally appends every publish to
//! the [`crate::store`] segment files *before* fan-out. Offsets evicted
//! from the memory window fall through to segment reads transparently, so
//! replay depth is bounded by disk, not RAM — and a restarted broker
//! resumes the same offsets it crashed with.

use crate::broker::{
    fnv1a, subscription_pair, wake_all, Broker, Receipt, SubscribeMode, SubscriberHandle,
    Subscription, TopicShards,
};
use crate::error::MqError;
use crate::message::Message;
use crate::store::{DurabilityConfig, PartitionStore, SegmentStore};
use bytes::Bytes;
use std::collections::hash_map::Entry;
use std::collections::VecDeque;
use std::sync::Arc;

/// One partition's log: a bounded in-memory window over an optional
/// on-disk segment store. `base` is the offset of `log[0]` — always 0
/// for a purely in-memory broker, and the eviction watermark for a
/// durable one.
struct PartitionLog {
    base: u64,
    log: VecDeque<Message>,
    store: Option<PartitionStore>,
}

impl PartitionLog {
    fn new(store: Option<PartitionStore>) -> Self {
        PartitionLog {
            base: store.as_ref().map_or(0, PartitionStore::next_offset),
            log: VecDeque::new(),
            store,
        }
    }

    /// Offset the next publish gets.
    fn next_offset(&self) -> u64 {
        self.base + self.log.len() as u64
    }

    /// Messages `[from, …)` read back from the segment store as
    /// [`Message`]s (empty without a store).
    fn read_store(
        &self,
        name: &Arc<str>,
        partition: u32,
        from: u64,
        max: usize,
    ) -> Result<Vec<Message>, MqError> {
        let Some(store) = &self.store else {
            return Ok(Vec::new());
        };
        let records = store.read(from, max).map_err(|e| MqError::Store {
            message: format!("reading partition {partition}: {e}"),
        })?;
        Ok(records
            .into_iter()
            .map(|(offset, key, payload)| Message {
                topic: name.clone(),
                partition,
                offset,
                key,
                payload,
            })
            .collect())
    }
}

struct TopicState {
    /// The shared topic name every delivered [`Message`] clones — one
    /// allocation per topic lifetime, not one per publish.
    name: Arc<str>,
    partitions: Vec<PartitionLog>,
    subscribers: Vec<SubscriberHandle>,
    round_robin: u32,
}

impl TopicState {
    fn new(topic: &str, partitions: u32) -> Self {
        TopicState {
            name: Arc::from(topic),
            partitions: (0..partitions.max(1))
                .map(|_| PartitionLog::new(None))
                .collect(),
            subscribers: Vec::new(),
            round_robin: 0,
        }
    }

    fn from_stores(topic: &str, stores: Vec<PartitionStore>) -> Self {
        TopicState {
            name: Arc::from(topic),
            partitions: stores
                .into_iter()
                .map(|s| PartitionLog::new(Some(s)))
                .collect(),
            subscribers: Vec::new(),
            round_robin: 0,
        }
    }
}

/// What [`LogBroker::open`] reconstructed from a data dir.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Topics found on disk.
    pub topics: usize,
    /// Total records across their partitions (sum of next-offsets).
    pub messages: u64,
    /// Torn-tail bytes truncated (crash artifacts, not corruption).
    pub truncated_bytes: u64,
}

/// Persistent, partitioned, replayable broker. The topic map is split
/// into lock shards keyed by topic hash
/// ([`crate::broker::TOPIC_SHARDS`]), so publishes to distinct topics —
/// different agents' inboxes, different runs' namespaces — never
/// contend on a shared lock.
///
/// [`LogBroker::new`] retains messages in memory only; [`LogBroker::open`]
/// backs every partition with the file-based segment store, making
/// retention and offsets survive a broker restart.
pub struct LogBroker {
    topics: TopicShards<TopicState>,
    default_partitions: u32,
    store: Option<SegmentStore>,
    /// Per-partition in-memory window when a store is present
    /// (`usize::MAX` otherwise — a memory-only broker never evicts).
    memory_messages: usize,
}

impl Default for LogBroker {
    fn default() -> Self {
        LogBroker::new()
    }
}

impl LogBroker {
    /// In-memory broker creating single-partition topics on demand.
    pub fn new() -> Self {
        LogBroker {
            topics: TopicShards::default(),
            default_partitions: 1,
            store: None,
            memory_messages: usize::MAX,
        }
    }

    /// In-memory broker creating `n`-partition topics on demand.
    pub fn with_default_partitions(n: u32) -> Self {
        LogBroker {
            default_partitions: n.max(1),
            ..LogBroker::new()
        }
    }

    /// Durable broker over the segment store at `dir`: validates the
    /// data dir (refusing foreign or schema-incompatible ones),
    /// recovers every topic found in it — truncating torn tails and
    /// rebuilding next-offsets — and appends each subsequent publish to
    /// disk before fan-out.
    pub fn open(
        dir: impl Into<std::path::PathBuf>,
        config: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), MqError> {
        let (store, recovered) = SegmentStore::open(dir, config)?;
        let broker = LogBroker {
            topics: TopicShards::default(),
            default_partitions: 1,
            store: Some(store),
            memory_messages: config.memory_messages,
        };
        let mut report = RecoveryReport {
            topics: recovered.len(),
            ..RecoveryReport::default()
        };
        for topic in recovered {
            report.truncated_bytes += topic.truncated_bytes;
            report.messages += topic
                .partitions
                .iter()
                .map(PartitionStore::next_offset)
                .sum::<u64>();
            // Recovered partitions re-warm their memory window from the
            // tail of the on-disk log, so a restarted broker serves the
            // hot tail — fan-out replay, FromOffset near the head — from
            // RAM exactly like the broker that crashed did. Only deeper
            // history falls through to segment reads.
            let mut state = TopicState::from_stores(&topic.name, topic.partitions);
            let TopicState {
                name, partitions, ..
            } = &mut state;
            for (p, part) in partitions.iter_mut().enumerate() {
                let next = part.next_offset();
                let want = broker.memory_messages.min(next as usize);
                if want == 0 {
                    continue;
                }
                let from = next - want as u64;
                let tail = part.read_store(name, p as u32, from, want)?;
                part.base = from;
                part.log = tail.into();
            }
            broker
                .topics
                .shard(&topic.name)
                .lock()
                .insert(topic.name.clone(), state);
        }
        Ok((broker, report))
    }

    /// Explicitly create (or resize-check) a topic with `n` partitions.
    /// Existing topics keep their partition count.
    pub fn create_topic(&self, topic: &str, partitions: u32) {
        let mut topics = self.topics.shard(topic).lock();
        if let Entry::Vacant(e) = topics.entry(topic.to_owned()) {
            // A store failure here surfaces on the first publish, which
            // retries creation through the same path.
            if let Ok(state) = self.new_topic_state(topic, partitions) {
                e.insert(state);
            }
        }
    }

    fn new_topic_state(&self, topic: &str, partitions: u32) -> Result<TopicState, MqError> {
        match &self.store {
            Some(store) => Ok(TopicState::from_stores(
                topic,
                store.create_partitions(topic, partitions)?,
            )),
            None => Ok(TopicState::new(topic, partitions)),
        }
    }

    fn route(state: &mut TopicState, key: Option<&Bytes>) -> u32 {
        let n = state.partitions.len() as u32;
        match key {
            Some(k) => fnv1a(k) % n,
            None => {
                let p = state.round_robin % n;
                state.round_robin = state.round_robin.wrapping_add(1);
                p
            }
        }
    }
}

impl Broker for LogBroker {
    fn publish(&self, topic: &str, key: Option<Bytes>, payload: Bytes) -> Result<Receipt, MqError> {
        let (wakers, receipt) = {
            let mut topics = self.topics.shard(topic).lock();
            let state = match topics.entry(topic.to_owned()) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => e.insert(self.new_topic_state(topic, self.default_partitions)?),
            };
            let partition = Self::route(state, key.as_ref());
            let part = &mut state.partitions[partition as usize];
            let offset = part.next_offset();
            // Durability first: the record is on the (page-cached) log
            // before any subscriber can observe it, so an acknowledged
            // offset is always replayable after a crash.
            if let Some(store) = &mut part.store {
                store
                    .append(key.as_deref(), &payload)
                    .map_err(|e| MqError::Store {
                        message: format!("appending to {topic:?}: {e}"),
                    })?;
            }
            let message = Message {
                topic: state.name.clone(),
                partition,
                offset,
                key,
                payload,
            };
            part.log.push_back(message.clone());
            // The memory window is a cache, not the log: evicted offsets
            // stay readable through the store.
            if part.store.is_some() {
                while part.log.len() > self.memory_messages {
                    part.log.pop_front();
                    part.base += 1;
                }
            }
            state.subscribers.retain(|sub| sub.deliver(message.clone()));
            let wakers = state.subscribers.iter().filter_map(|s| s.waker()).collect();
            (wakers, Receipt { partition, offset })
        };
        // Wake outside the topic lock: wakers may publish in turn.
        wake_all(wakers);
        Ok(receipt)
    }

    fn subscribe(&self, topic: &str, mode: SubscribeMode) -> Result<Subscription, MqError> {
        let (handle, subscription) = subscription_pair();
        let mut topics = self.topics.shard(topic).lock();
        let state = match topics.entry(topic.to_owned()) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(self.new_topic_state(topic, self.default_partitions)?),
        };
        // Replay happens under the topic lock, so no message published
        // concurrently can be missed or duplicated. No waker can be
        // registered yet — `Subscription::set_waker` fires immediately
        // when it finds this backlog.
        if let Some(from) = match mode {
            SubscribeMode::Latest => None,
            SubscribeMode::Beginning => Some(0),
            SubscribeMode::FromOffset(from) => Some(from),
        } {
            let mut backlogs: Vec<std::collections::VecDeque<Message>> =
                Vec::with_capacity(state.partitions.len());
            for (p, part) in state.partitions.iter().enumerate() {
                let mut backlog = std::collections::VecDeque::new();
                if from < part.base {
                    // The requested history predates the memory window:
                    // replay the gap from the segment store.
                    let gap = (part.base - from) as usize;
                    backlog.extend(part.read_store(&state.name, p as u32, from, gap)?);
                }
                let skip = from.saturating_sub(part.base) as usize;
                backlog.extend(part.log.iter().skip(skip).cloned());
                backlogs.push(backlog);
            }
            // Interleave the replay round-robin across partitions
            // (per-partition order is the only ordering the broker
            // guarantees, so this is free to do). Sequential replay —
            // all of partition 0, then all of partition 1 — livelocks
            // a resumed subscriber on a flaky link: resuming from the
            // *lowest* partition watermark, every short-lived
            // connection spends its whole life re-receiving the lead
            // partition's duplicates and dies before the lagging
            // partition's first new message (chaos-suite find).
            let mut live = true;
            while live {
                live = false;
                for backlog in &mut backlogs {
                    if let Some(m) = backlog.pop_front() {
                        let _ = handle.deliver(m);
                        live = true;
                    }
                }
            }
        }
        state.subscribers.push(handle);
        Ok(subscription)
    }

    fn fetch(
        &self,
        topic: &str,
        partition: u32,
        from_offset: u64,
        max: usize,
    ) -> Result<Vec<Message>, MqError> {
        let topics = self.topics.shard(topic).lock();
        let state = match topics.get(topic) {
            Some(s) => s,
            None => return Ok(Vec::new()),
        };
        let part =
            state
                .partitions
                .get(partition as usize)
                .ok_or_else(|| MqError::UnknownPartition {
                    topic: topic.to_owned(),
                    partition,
                })?;
        if from_offset < part.base {
            // The store holds the full log (its tail duplicates the
            // memory window), so an evicted starting offset is served
            // entirely from disk — no stitching.
            return part.read_store(&state.name, partition, from_offset, max);
        }
        Ok(part
            .log
            .iter()
            .skip((from_offset - part.base) as usize)
            .take(max)
            .cloned()
            .collect())
    }

    fn flush(&self) -> Result<(), MqError> {
        if self.store.is_none() {
            return Ok(());
        }
        let mut first_err = None;
        self.topics.for_each_mut(|_, state| {
            for part in &mut state.partitions {
                if let Some(store) = &mut part.store {
                    if let (Err(e), None) = (store.sync(), &first_err) {
                        first_err = Some(MqError::Store {
                            message: format!("fsync: {e}"),
                        });
                    }
                }
            }
        });
        first_err.map_or(Ok(()), Err)
    }

    fn persistent(&self) -> bool {
        true
    }

    fn partitions(&self, topic: &str) -> u32 {
        self.topics
            .with(topic, |s| s.map(|s| s.partitions.len() as u32))
            .unwrap_or(1)
    }

    fn retained(&self, topic: &str) -> u64 {
        self.topics
            .with(topic, |s| {
                s.map(|s| s.partitions.iter().map(PartitionLog::next_offset).sum())
            })
            .unwrap_or(0)
    }

    fn delete_topic(&self, topic: &str) -> bool {
        // Dropping the state drops every SubscriberHandle with it
        // (live subscriptions observe disconnection on their next recv)
        // and unmaps the partition stores — which must happen *before*
        // their directory is removed.
        let in_memory = self.topics.remove(topic).is_some();
        let on_disk = self
            .store
            .as_ref()
            .is_some_and(|s| s.delete_topic(topic).unwrap_or(false));
        in_memory || on_disk
    }

    fn topic_names(&self) -> Vec<String> {
        self.topics.names()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::testutil::TestDir;
    use crate::store::{dir_disk_bytes, FsyncPolicy};
    use std::time::Duration;

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn publish_assigns_dense_offsets() {
        let b = LogBroker::new();
        for i in 0..4u64 {
            let r = b.publish("t", None, payload("x")).unwrap();
            assert_eq!(r.offset, i);
            assert_eq!(r.partition, 0);
        }
        assert_eq!(b.retained("t"), 4);
    }

    #[test]
    fn late_subscriber_replays_history() {
        let b = LogBroker::new();
        b.publish("t", None, payload("m0")).unwrap();
        b.publish("t", None, payload("m1")).unwrap();
        let sub = b.subscribe("t", SubscribeMode::Beginning).unwrap();
        b.publish("t", None, payload("m2")).unwrap();
        let got: Vec<String> = (0..3)
            .map(|_| {
                sub.recv_timeout(Duration::from_secs(1))
                    .unwrap()
                    .payload_str()
                    .into_owned()
            })
            .collect();
        assert_eq!(got, vec!["m0", "m1", "m2"]);
    }

    #[test]
    fn subscribe_from_offset() {
        let b = LogBroker::new();
        for i in 0..5 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        let sub = b.subscribe("t", SubscribeMode::FromOffset(3)).unwrap();
        assert_eq!(sub.recv().unwrap().payload_str(), "m3");
        assert_eq!(sub.recv().unwrap().payload_str(), "m4");
        assert_eq!(sub.try_recv().unwrap(), None);
    }

    #[test]
    fn fetch_replays_without_subscribing() {
        let b = LogBroker::new();
        for i in 0..10 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        let page1 = b.fetch("t", 0, 0, 4).unwrap();
        assert_eq!(page1.len(), 4);
        assert_eq!(page1[0].payload_str(), "m0");
        let page2 = b.fetch("t", 0, 4, 100).unwrap();
        assert_eq!(page2.len(), 6);
        assert_eq!(page2[5].payload_str(), "m9");
        assert!(b.fetch("missing", 0, 0, 10).unwrap().is_empty());
        assert!(matches!(
            b.fetch("t", 9, 0, 10),
            Err(MqError::UnknownPartition { .. })
        ));
    }

    #[test]
    fn keyed_messages_stick_to_partitions() {
        let b = LogBroker::with_default_partitions(4);
        let key = Bytes::from_static(b"sa.T7");
        let mut partitions = std::collections::HashSet::new();
        for _ in 0..10 {
            let r = b.publish("t", Some(key.clone()), payload("x")).unwrap();
            partitions.insert(r.partition);
        }
        assert_eq!(partitions.len(), 1, "same key must route identically");
    }

    #[test]
    fn per_partition_order_is_preserved() {
        let b = LogBroker::with_default_partitions(3);
        // Round-robin spreads keyless messages.
        for i in 0..9 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        for p in 0..3 {
            let log = b.fetch("t", p, 0, 100).unwrap();
            assert_eq!(log.len(), 3);
            let offsets: Vec<u64> = log.iter().map(|m| m.offset).collect();
            assert_eq!(offsets, vec![0, 1, 2], "dense offsets per partition");
        }
    }

    #[test]
    fn replay_then_live_has_no_gap_or_duplicate() {
        let b = std::sync::Arc::new(LogBroker::new());
        for i in 0..100 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        // Subscribe from the beginning while another thread publishes.
        let b2 = b.clone();
        let publisher = std::thread::spawn(move || {
            for i in 100..200 {
                b2.publish("t", None, payload(&format!("m{i}"))).unwrap();
            }
        });
        let sub = b.subscribe("t", SubscribeMode::Beginning).unwrap();
        publisher.join().unwrap();
        let mut seen = Vec::new();
        while let Some(m) = sub.try_recv().unwrap() {
            seen.push(m.payload_str().into_owned());
        }
        assert_eq!(seen.len(), 200);
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(s, &format!("m{i}"));
        }
    }

    #[test]
    fn create_topic_controls_partitions() {
        let b = LogBroker::new();
        b.create_topic("wide", 8);
        assert_eq!(b.partitions("wide"), 8);
        // Existing topics keep their count.
        b.create_topic("wide", 2);
        assert_eq!(b.partitions("wide"), 8);
        assert_eq!(b.partitions("unknown"), 1);
    }

    #[test]
    fn delete_topic_reclaims_retention_and_disconnects_subscribers() {
        let b = LogBroker::new();
        b.publish("t", None, payload("m0")).unwrap();
        let sub = b.subscribe("t", SubscribeMode::Beginning).unwrap();
        assert!(b.delete_topic("t"));
        assert!(!b.delete_topic("t"), "already gone");
        assert_eq!(b.retained("t"), 0);
        // The queued replay drains, then the channel reports the broker
        // side gone.
        assert_eq!(sub.recv().unwrap().payload_str(), "m0");
        assert!(matches!(sub.recv(), Err(MqError::Disconnected)));
        // The name is reusable from scratch.
        b.publish("t", None, payload("fresh")).unwrap();
        assert_eq!(b.retained("t"), 1);
    }

    #[test]
    fn fnv_is_stable() {
        use crate::broker::fnv1a;
        assert_eq!(fnv1a(b""), 0x811c9dc5);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    // -- durable-broker tests ------------------------------------------

    fn durable_config() -> DurabilityConfig {
        DurabilityConfig {
            fsync: FsyncPolicy::Never,
            segment_bytes: 512,
            memory_messages: 8,
            ..DurabilityConfig::default()
        }
    }

    #[test]
    fn durable_broker_survives_reopen_with_same_offsets() {
        let dir = TestDir::new("log-reopen");
        {
            let (b, report) = LogBroker::open(dir.path(), durable_config()).unwrap();
            assert_eq!(report, RecoveryReport::default());
            for i in 0..30 {
                b.publish("run/r1/status", None, payload(&format!("m{i}")))
                    .unwrap();
            }
            b.publish("run/r1/result/T", Some(payload("k")), payload("done"))
                .unwrap();
        }
        let (b, report) = LogBroker::open(dir.path(), durable_config()).unwrap();
        assert_eq!(report.topics, 2);
        assert_eq!(report.messages, 31);
        // Offsets resume where they left off…
        let r = b.publish("run/r1/status", None, payload("m30")).unwrap();
        assert_eq!(r.offset, 30);
        assert_eq!(b.retained("run/r1/status"), 31);
        let mut names = b.topic_names();
        names.sort();
        assert_eq!(names, vec!["run/r1/result/T", "run/r1/status"]);
        // …and the full history replays from disk, key included.
        let all = b.fetch("run/r1/status", 0, 0, 100).unwrap();
        assert_eq!(all.len(), 31);
        assert_eq!(all[0].payload_str(), "m0");
        assert_eq!(all[30].payload_str(), "m30");
        let result = b.fetch("run/r1/result/T", 0, 0, 10).unwrap();
        assert_eq!(result[0].key.as_deref(), Some(&b"k"[..]));
    }

    #[test]
    fn evicted_offsets_fall_through_to_segment_reads() {
        let dir = TestDir::new("log-evict");
        let (b, _) = LogBroker::open(dir.path(), durable_config()).unwrap();
        for i in 0..100 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        // The window keeps only the last 8 messages in memory…
        assert_eq!(b.retained("t"), 100);
        // …but fetch and subscribe still reach offset 0.
        let head = b.fetch("t", 0, 0, 3).unwrap();
        assert_eq!(head.len(), 3);
        assert_eq!(head[0].payload_str(), "m0");
        assert_eq!(head[0].offset, 0);
        let sub = b.subscribe("t", SubscribeMode::Beginning).unwrap();
        for i in 0..100 {
            let m = sub.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(m.payload_str(), format!("m{i}"));
            assert_eq!(m.offset, i as u64);
        }
        let mid = b.subscribe("t", SubscribeMode::FromOffset(42)).unwrap();
        assert_eq!(mid.recv().unwrap().payload_str(), "m42");
    }

    #[test]
    fn durable_delete_topic_reclaims_disk() {
        let dir = TestDir::new("log-delete");
        let (b, _) = LogBroker::open(dir.path(), durable_config()).unwrap();
        for i in 0..50 {
            b.publish("run/gone/status", None, payload(&format!("m{i}")))
                .unwrap();
        }
        b.flush().unwrap();
        assert!(dir_disk_bytes(&dir.path().join("topics")) > 0);
        assert!(b.delete_topic("run/gone/status"));
        assert_eq!(
            dir_disk_bytes(&dir.path().join("topics")),
            0,
            "deleted run's bytes must leave the disk"
        );
        assert_eq!(b.retained("run/gone/status"), 0);
    }

    #[test]
    fn recovered_topics_reload_memory_window_tail() {
        let dir = TestDir::new("log-warm-tail");
        {
            let (b, _) = LogBroker::open(dir.path(), durable_config()).unwrap();
            for i in 0..100 {
                b.publish("t", None, payload(&format!("m{i}"))).unwrap();
            }
            // Killed here: no flush, no graceful close.
        }
        let (b, report) = LogBroker::open(dir.path(), durable_config()).unwrap();
        assert_eq!(report.messages, 100);
        // The last `memory_messages` records are hot again, at the same
        // eviction watermark the crashed broker had…
        b.topics.with("t", |s| {
            let part = &s.expect("recovered topic").partitions[0];
            assert_eq!(part.base, 92);
            assert_eq!(part.log.len(), 8);
            assert_eq!(part.log[0].offset, 92);
            assert_eq!(part.log.back().unwrap().payload_str(), "m99");
        });
        // …so a tail subscriber replays from memory, a historical one
        // crosses the disk/memory seam without gap or duplicate…
        let tail = b.subscribe("t", SubscribeMode::FromOffset(95)).unwrap();
        for i in 95..100 {
            let m = tail.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(m.offset, i);
            assert_eq!(m.payload_str(), format!("m{i}"));
        }
        let full = b.subscribe("t", SubscribeMode::Beginning).unwrap();
        for i in 0..100 {
            let m = full.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(m.offset, i);
        }
        // …and publishing resumes at the recovered offset.
        let r = b.publish("t", None, payload("m100")).unwrap();
        assert_eq!(r.offset, 100);
        assert_eq!(
            tail.recv_timeout(Duration::from_secs(1)).unwrap().offset,
            100
        );
    }

    #[test]
    fn open_refuses_foreign_dir() {
        let dir = TestDir::new("log-foreign");
        std::fs::write(dir.path().join("precious.txt"), b"not ours").unwrap();
        let err = LogBroker::open(dir.path(), DurabilityConfig::default())
            .err()
            .expect("a foreign dir must be refused");
        assert!(matches!(err, MqError::Store { .. }), "{err}");
    }
}
