//! # ginflow-mq — the message-queue substrate
//!
//! GinFlow's inter-agent communications "rely on a message queue middleware
//! which can be either Apache ActiveMQ or Kafka. The choice for one or the
//! other depends on the level of resilience needed by the user" (§IV-A).
//! This crate rebuilds both behavioural profiles in-process:
//!
//! * [`TransientBroker`] — the ActiveMQ profile: topic pub/sub, at-most-once,
//!   nothing persisted. Fast, but a crashed agent's history is gone, so SA
//!   recovery is impossible (exactly the trade-off Fig 14/16 explore).
//! * [`LogBroker`] — the Kafka profile: partitioned append-only logs with
//!   monotonically increasing offsets. Subscribers can attach from the
//!   beginning or any offset, and [`Broker::fetch`] supports the replay
//!   that §IV-B's fault-recovery mechanism is built on.
//!
//! Both implement the [`Broker`] trait, so the agent runtime and the
//! simulator are generic over the middleware — switching between the two
//! is the paper's Fig 14 experiment.

pub mod broker;
pub mod error;
pub mod log;
pub mod message;
pub mod transient;

pub use broker::{Broker, Receipt, SubscribeMode, Subscription};
pub use error::MqError;
pub use log::LogBroker;
pub use message::Message;
pub use transient::TransientBroker;

use std::sync::Arc;

/// Middleware profile selector (the Fig 14 experiment axis).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BrokerKind {
    /// ActiveMQ-like transient pub/sub.
    Transient,
    /// Kafka-like persistent log.
    Log,
}

impl BrokerKind {
    /// Label used in reports ("activemq" / "kafka"), matching the paper's
    /// terminology.
    pub fn label(self) -> &'static str {
        match self {
            BrokerKind::Transient => "activemq",
            BrokerKind::Log => "kafka",
        }
    }

    /// Instantiate the corresponding broker.
    pub fn build(self) -> Arc<dyn Broker> {
        match self {
            BrokerKind::Transient => Arc::new(TransientBroker::new()),
            BrokerKind::Log => Arc::new(LogBroker::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_builds_matching_brokers() {
        assert!(!BrokerKind::Transient.build().persistent());
        assert!(BrokerKind::Log.build().persistent());
        assert_eq!(BrokerKind::Transient.label(), "activemq");
        assert_eq!(BrokerKind::Log.label(), "kafka");
    }
}
