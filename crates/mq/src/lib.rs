//! # ginflow-mq — the message-queue substrate
//!
//! GinFlow's inter-agent communications "rely on a message queue middleware
//! which can be either Apache ActiveMQ or Kafka. The choice for one or the
//! other depends on the level of resilience needed by the user" (§IV-A).
//! This crate rebuilds both behavioural profiles in-process:
//!
//! * [`TransientBroker`] — the ActiveMQ profile: topic pub/sub, at-most-once,
//!   nothing persisted. Fast, but a crashed agent's history is gone, so SA
//!   recovery is impossible (exactly the trade-off Fig 14/16 explore).
//! * [`LogBroker`] — the Kafka profile: partitioned append-only logs with
//!   monotonically increasing offsets. Subscribers can attach from the
//!   beginning or any offset, and [`Broker::fetch`] supports the replay
//!   that §IV-B's fault-recovery mechanism is built on.
//!
//! Both implement the [`Broker`] trait, so the agent runtime and the
//! simulator are generic over the middleware — switching between the two
//! is the paper's Fig 14 experiment.
//!
//! Neither profile has to live in the caller's process: the [`wire`]
//! module defines the length-prefixed binary protocol `ginflow-net`'s
//! broker daemon speaks, and its client-side `RemoteBroker` implements
//! the same [`Broker`] trait over a TCP connection
//! ([`BrokerKind::Remote`]) — the membrane that lets one workflow span
//! multiple OS processes and hosts.
//!
//! Topics are **run-scoped** ([`namespace`]): every workflow run owns a
//! [`RunId`] and publishes under `run/<id>/…`, so one standing broker —
//! in-process or a long-lived daemon — serves any number of concurrent
//! or back-to-back runs without replaying one run's history into
//! another.
//!
//! The Kafka profile can be made **durable**: [`LogBroker::open`]
//! backs every partition with the [`store`] module's file-based
//! segmented log (append-before-fan-out, torn-tail crash recovery,
//! fsync policy knobs), so a daemon restart resumes the same offsets
//! and in-flight runs complete through the clients' ordinary
//! reconnect-replay — the persistence half of §IV-B's resilience
//! story.

pub mod broker;
pub mod error;
pub mod log;
pub mod message;
pub mod metrics;
pub mod namespace;
pub mod store;
pub mod transient;
pub mod wire;

pub use broker::{
    bounded_subscription_pair, subscription_pair, Broker, LagProbe, Receipt, SubscribeMode,
    SubscriberHandle, Subscription,
};
pub use error::MqError;
pub use log::LogBroker;
pub use message::Message;
pub use namespace::{RunId, TopicNamespace};
pub use store::{DurabilityConfig, FsyncPolicy};
pub use transient::{TransientBroker, DEFAULT_QUEUE_CAPACITY};

use std::sync::Arc;

/// Middleware profile selector (the Fig 14 experiment axis).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BrokerKind {
    /// ActiveMQ-like transient pub/sub.
    Transient,
    /// Kafka-like persistent log.
    Log,
    /// A broker reached over TCP through `ginflow-net`'s [`wire`]
    /// protocol. Carries no address (the selector stays `Copy`);
    /// construct the client with `ginflow_net::RemoteBroker::connect`
    /// and hand it to whatever needs an `Arc<dyn Broker>`.
    Remote,
}

impl BrokerKind {
    /// Label used in reports ("activemq" / "kafka", matching the paper's
    /// terminology; "remote" for the network client).
    pub fn label(self) -> &'static str {
        match self {
            BrokerKind::Transient => "activemq",
            BrokerKind::Log => "kafka",
            BrokerKind::Remote => "remote",
        }
    }

    /// Instantiate the corresponding **in-process** broker.
    ///
    /// # Panics
    ///
    /// [`BrokerKind::Remote`] carries no address and cannot be built
    /// here — connect with `ginflow_net::RemoteBroker` instead.
    pub fn build(self) -> Arc<dyn Broker> {
        match self {
            BrokerKind::Transient => Arc::new(TransientBroker::new()),
            BrokerKind::Log => Arc::new(LogBroker::new()),
            BrokerKind::Remote => {
                panic!(
                    "BrokerKind::Remote carries no address; connect with \
                     ginflow_net::RemoteBroker and pass the Arc directly"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_builds_matching_brokers() {
        assert!(!BrokerKind::Transient.build().persistent());
        assert!(BrokerKind::Log.build().persistent());
        assert_eq!(BrokerKind::Transient.label(), "activemq");
        assert_eq!(BrokerKind::Log.label(), "kafka");
        assert_eq!(BrokerKind::Remote.label(), "remote");
    }
}
