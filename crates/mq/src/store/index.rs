//! Sparse offset index: every `every`th record's byte position.
//!
//! A segment's offsets are dense (`base_offset + record_number`), so
//! the index only has to answer "where do I start scanning for
//! relative offset `r`" — it maps `r` to the byte position of the
//! nearest indexed record at or below `r`, and the reader walks
//! forward from there (at most `every` − 1 records, [`INDEX_EVERY`]
//! by default).
//!
//! The granularity is a property of the in-memory index, not the
//! sidecar format: [`SparseIndex::floor`] binary-searches whatever
//! entries exist, so sidecars written at any historical granularity
//! (the store used 64 before the read-path tuning) load and serve
//! unchanged.
//!
//! ## Sidecar file format (`<base:020>.idx`)
//!
//! | field     | size   | meaning                                  |
//! |-----------|--------|------------------------------------------|
//! | `magic`   | 8      | `b"GFIDX001"`                            |
//! | `records` | u64 LE | record count of the sealed segment       |
//! | `bytes`   | u64 LE | exact data length of the sealed segment  |
//! | entries   | 8 each | (`rel` u32 LE, `pos` u32 LE) pairs       |
//!
//! The sidecar is written once at seal time and is purely an
//! optimisation: recovery trusts it only when `bytes` matches the
//! segment file's length on disk, and rescans the segment otherwise.

use std::io::{self, Write};
use std::path::Path;

/// Default index granularity: one entry per this many records. 16
/// bounds a cold fetch's forward scan to 15 records past the floor
/// (the old 64-record stride decoded up to 63 — the linear-scan cost
/// the read-path bench row measures) at 8 bytes of index per 16
/// records, still a vanishing fraction of segment size.
pub const INDEX_EVERY: u64 = 16;

const MAGIC: &[u8; 8] = b"GFIDX001";

/// In-memory sparse index for one segment.
pub struct SparseIndex {
    /// (relative offset, byte position), ascending in both.
    entries: Vec<(u32, u32)>,
    /// Stride between noted entries.
    every: u64,
}

impl Default for SparseIndex {
    fn default() -> Self {
        SparseIndex::with_every(INDEX_EVERY)
    }
}

impl SparseIndex {
    /// An empty index noting every `every`th record (the A/B knob the
    /// durability bench uses to compare strides; production paths use
    /// [`Default`], i.e. [`INDEX_EVERY`]).
    pub fn with_every(every: u64) -> SparseIndex {
        SparseIndex {
            entries: Vec::new(),
            every: every.max(1),
        }
    }

    /// The stride this index notes entries at.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Record that relative offset `rel` begins at byte `pos`; only
    /// every `every`th call stores an entry.
    pub fn note(&mut self, rel: u64, pos: usize) {
        if rel.is_multiple_of(self.every) {
            self.entries.push((rel as u32, pos as u32));
        }
    }

    /// Nearest indexed `(rel, pos)` at or below `rel`; `(0, 0)` when
    /// the index is empty or `rel` precedes the first entry.
    pub fn floor(&self, rel: u64) -> (u64, usize) {
        let i = self.entries.partition_point(|&(r, _)| u64::from(r) <= rel);
        match i.checked_sub(1).and_then(|i| self.entries.get(i)) {
            Some(&(r, p)) => (u64::from(r), p as usize),
            None => (0, 0),
        }
    }

    /// Persist the sidecar for a sealed segment of `records` records
    /// and `bytes` data bytes.
    pub fn write_to(&self, path: &Path, records: u64, bytes: u64) -> io::Result<()> {
        let mut buf = Vec::with_capacity(24 + self.entries.len() * 8);
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&records.to_le_bytes());
        buf.extend_from_slice(&bytes.to_le_bytes());
        for &(rel, pos) in &self.entries {
            buf.extend_from_slice(&rel.to_le_bytes());
            buf.extend_from_slice(&pos.to_le_bytes());
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(&buf)?;
        f.sync_all()
    }

    /// Load a sidecar, returning `(index, records, bytes)`; `None` if
    /// the file is missing, short, or has the wrong magic — the caller
    /// falls back to rescanning the segment.
    pub fn load(path: &Path) -> Option<(SparseIndex, u64, u64)> {
        let data = std::fs::read(path).ok()?;
        if data.len() < 24 || &data[..8] != MAGIC || (data.len() - 24) % 8 != 0 {
            return None;
        }
        let records = u64::from_le_bytes(data[8..16].try_into().unwrap());
        let bytes = u64::from_le_bytes(data[16..24].try_into().unwrap());
        let entries = data[24..]
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes(c[..4].try_into().unwrap()),
                    u32::from_le_bytes(c[4..].try_into().unwrap()),
                )
            })
            .collect();
        // A loaded index never notes again (sealed segments are
        // read-only), so the stride it was written at is irrelevant —
        // `floor` walks whatever entries are there.
        Some((
            SparseIndex {
                entries,
                every: INDEX_EVERY,
            },
            records,
            bytes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_walks_sparse_entries() {
        let mut idx = SparseIndex::default();
        assert_eq!(idx.every(), INDEX_EVERY);
        for rel in 0..200u64 {
            idx.note(rel, (rel * 100) as usize);
        }
        assert_eq!(idx.entries.len(), 13); // 0, 16, …, 192
        assert_eq!(idx.floor(0), (0, 0));
        assert_eq!(idx.floor(15), (0, 0));
        assert_eq!(idx.floor(16), (16, 1600));
        assert_eq!(idx.floor(199), (192, 19200));
        assert_eq!(idx.floor(10_000), (192, 19200));
        assert_eq!(SparseIndex::default().floor(5), (0, 0));
    }

    #[test]
    fn granularity_is_an_instance_knob() {
        let mut coarse = SparseIndex::with_every(64);
        for rel in 0..200u64 {
            coarse.note(rel, (rel * 100) as usize);
        }
        assert_eq!(coarse.entries.len(), 4); // 0, 64, 128, 192
        assert_eq!(coarse.floor(63), (0, 0));
        assert_eq!(coarse.floor(64), (64, 6400));
        // A stride-0 request is clamped rather than dividing by zero.
        assert_eq!(SparseIndex::with_every(0).every(), 1);
    }

    #[test]
    fn sidecar_roundtrip_and_garbage_rejection() {
        let dir = crate::store::testutil::TestDir::new("idx");
        let path = dir.path().join("x.idx");
        let mut idx = SparseIndex::default();
        for rel in 0..130u64 {
            idx.note(rel, (rel * 7) as usize);
        }
        idx.write_to(&path, 130, 910).unwrap();
        let (loaded, records, bytes) = SparseIndex::load(&path).unwrap();
        assert_eq!((records, bytes), (130, 910));
        assert_eq!(loaded.entries, idx.entries);

        std::fs::write(&path, b"not an index").unwrap();
        assert!(SparseIndex::load(&path).is_none());
    }
}
