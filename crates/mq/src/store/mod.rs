//! File-backed segmented log store — the persistence layer under
//! [`LogBroker`](crate::LogBroker).
//!
//! This is the durability primitive the paper's resilience story rests
//! on: "the ability of Kafka to persist the messages exchanged by the
//! services and to replay them on demand" (§IV-B). Every publish is
//! appended to an on-disk segment *before* in-memory fan-out, so a
//! daemon killed mid-run comes back serving the same offsets and the
//! client-side reconnect-replay machinery completes in-flight runs with
//! zero client changes.
//!
//! ## Data-dir layout
//!
//! | path                                      | content                            |
//! |-------------------------------------------|------------------------------------|
//! | `<root>/MANIFEST`                         | schema stamp (see [`manifest`])    |
//! | `<root>/topics/<enc>/…/<enc>/`            | one dir per topic path component   |
//! | `…/<topic>/@p<N>/`                        | partition `N` of that topic        |
//! | `…/@p<N>/<base_offset:020>.seg`           | segment: records from that offset  |
//! | `…/@p<N>/<base_offset:020>.idx`           | sparse index sidecar (sealed only) |
//!
//! Topic names mirror the broker's `run/<id>/…` namespace directly:
//! each `/`-separated component becomes one directory level, with
//! non-`[A-Za-z0-9._-]` bytes percent-encoded (and `.`/`..`/empty
//! components escaped) so any valid topic name is a safe path. The
//! `@p<N>` partition level cannot collide with a topic component
//! because `@` is always percent-encoded. Deleting a run's topics
//! therefore reclaims a whole `topics/run/<id>/` subtree.
//!
//! Segment files are created at their full capacity (sparse) and
//! appended through a shared mmap; a segment **seals** on rotation —
//! synced, truncated to its exact length, and given its `.idx` sidecar.
//! The record and index formats are documented in [`segment`] and
//! [`index`]; crash recovery (torn-tail truncation, index rebuilds,
//! next-offset reconstruction) in [`recovery`].

pub mod index;
pub mod manifest;
pub mod recovery;
pub mod segment;

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use bytes::Bytes;

use crate::metrics::{self, Counter, Gauge};
use crate::MqError;
use segment::{record_frame_len, SealedSegment, SegmentWriter};

/// The store's instrumentation handles, registered once in the global
/// metric registry and shared by every partition (one relaxed add per
/// append — no per-store registration bookkeeping).
struct StoreMetrics {
    appends: Arc<Counter>,
    append_bytes: Arc<Counter>,
    fsyncs: Arc<Counter>,
    rotations: Arc<Counter>,
    read_batches: Arc<Counter>,
    recovery_truncated: Arc<Counter>,
    disk_bytes: Arc<Gauge>,
}

fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = metrics::global();
        StoreMetrics {
            appends: m.counter(
                "gf_store_appends_total",
                "records appended to segment files",
            ),
            append_bytes: m.counter(
                "gf_store_append_bytes_total",
                "record frame bytes appended to segment files",
            ),
            fsyncs: m.counter(
                "gf_store_fsyncs_total",
                "msync calls issued by the fsync policy",
            ),
            rotations: m.counter(
                "gf_store_rotations_total",
                "segment rotations (seal + fresh active segment)",
            ),
            read_batches: m.counter(
                "gf_store_read_batches_total",
                "cold reads served from segment files instead of the memory window",
            ),
            recovery_truncated: m.counter(
                "gf_store_recovery_truncated_bytes_total",
                "torn-tail bytes truncated during crash recovery",
            ),
            disk_bytes: m.gauge(
                "gf_store_disk_bytes",
                "approximate bytes occupied by the data dir",
            ),
        }
    })
}

/// When appended records are forced to stable storage.
///
/// Appends always land in the OS page cache immediately (surviving a
/// *process* crash); the policy only governs the machine-crash window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `msync` after every append — smallest window, slowest.
    Always,
    /// Queue asynchronous writeback (`msync(MS_ASYNC)`) at most once
    /// per interval, checked on append — the default, bounding
    /// machine-crash loss to roughly the interval without ever
    /// blocking a publish on disk I/O.
    Interval(Duration),
    /// Never sync explicitly; the OS writes back at its leisure.
    Never,
}

impl FsyncPolicy {
    /// Default interval for [`FsyncPolicy::Interval`].
    pub const DEFAULT_INTERVAL_MS: u64 = 50;

    /// Parse a CLI knob: `always`, `never`, `interval`, or
    /// `interval:<ms>`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            "interval" => Some(FsyncPolicy::Interval(Duration::from_millis(
                Self::DEFAULT_INTERVAL_MS,
            ))),
            _ => {
                let ms = s.strip_prefix("interval:")?.parse::<u64>().ok()?;
                Some(FsyncPolicy::Interval(Duration::from_millis(ms)))
            }
        }
    }
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::Interval(Duration::from_millis(Self::DEFAULT_INTERVAL_MS))
    }
}

/// Tuning knobs of a durable [`LogBroker`](crate::LogBroker).
#[derive(Clone, Copy, Debug)]
pub struct DurabilityConfig {
    /// Fsync policy for appended records.
    pub fsync: FsyncPolicy,
    /// Segment capacity: rotation happens when the next record would
    /// not fit. Default 64 MiB.
    pub segment_bytes: usize,
    /// Also rotate a non-empty segment older than this (age counted
    /// from its first append), so retention can eventually reclaim
    /// cold segments. Default off.
    pub segment_max_age: Option<Duration>,
    /// Per-partition cap on messages kept in memory for hot replay;
    /// older offsets are served from segment reads. Default 1024.
    pub memory_messages: usize,
    /// Sparse-index stride: one index entry per this many records, so
    /// a cold fetch scans at most `index_every − 1` records past its
    /// floor. Default [`index::INDEX_EVERY`] (16).
    pub index_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            fsync: FsyncPolicy::default(),
            segment_bytes: 64 * 1024 * 1024,
            segment_max_age: None,
            memory_messages: 1024,
            index_every: index::INDEX_EVERY,
        }
    }
}

// ---------------------------------------------------------------------
// Topic name <-> directory path codec.
// ---------------------------------------------------------------------

fn byte_is_plain(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-')
}

/// Encode one `/`-separated topic component as a safe directory name.
pub(crate) fn encode_component(component: &str) -> String {
    match component {
        "" => return "%".to_owned(),
        "." => return "%2E".to_owned(),
        ".." => return "%2E%2E".to_owned(),
        _ => {}
    }
    let mut out = String::with_capacity(component.len());
    for &b in component.as_bytes() {
        if byte_is_plain(b) {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// Decode a directory name back to its topic component; `None` on
/// malformed escapes (a foreign file recovery should skip).
pub(crate) fn decode_component(name: &str) -> Option<String> {
    if name == "%" {
        return Some(String::new());
    }
    let bytes = name.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// The directory a topic's partitions live under.
pub(crate) fn topic_dir(root: &Path, topic: &str) -> PathBuf {
    let mut dir = root.join("topics");
    for component in topic.split('/') {
        dir.push(encode_component(component));
    }
    dir
}

fn io_err(context: &str, err: io::Error) -> MqError {
    MqError::Store {
        message: format!("{context}: {err}"),
    }
}

/// Total *allocated* bytes under `path` (block-based, so sparse
/// capacity-sized segment files count what they actually occupy — the
/// `du` a retention test asserts on).
pub fn dir_disk_bytes(path: &Path) -> u64 {
    use std::os::unix::fs::MetadataExt;
    let mut total = 0u64;
    let entries = match std::fs::read_dir(path) {
        Ok(e) => e,
        Err(_) => return 0,
    };
    for entry in entries.flatten() {
        let Ok(meta) = entry.metadata() else { continue };
        if meta.is_dir() {
            total += dir_disk_bytes(&entry.path());
        } else {
            total += meta.blocks() * 512;
        }
    }
    total
}

// ---------------------------------------------------------------------
// Per-partition store: sealed segments + the active writer.
// ---------------------------------------------------------------------

/// One partition's on-disk log. Not internally locked — the owning
/// broker serialises access under its topic lock.
pub struct PartitionStore {
    dir: PathBuf,
    config: DurabilityConfig,
    sealed: Vec<SealedSegment>,
    active: SegmentWriter,
}

impl PartitionStore {
    fn create(dir: PathBuf, config: DurabilityConfig) -> io::Result<PartitionStore> {
        std::fs::create_dir_all(&dir)?;
        let active = SegmentWriter::create(&dir, 0, config.segment_bytes, config.index_every)?;
        Ok(PartitionStore {
            dir,
            config,
            sealed: Vec::new(),
            active,
        })
    }

    pub(crate) fn from_parts(
        dir: PathBuf,
        config: DurabilityConfig,
        sealed: Vec<SealedSegment>,
        active: SegmentWriter,
    ) -> PartitionStore {
        PartitionStore {
            dir,
            config,
            sealed,
            active,
        }
    }

    /// The offset the next appended record will carry.
    pub fn next_offset(&self) -> u64 {
        self.active.base_offset + self.active.records
    }

    /// Number of sealed segments (rotation observability for tests).
    pub fn sealed_segments(&self) -> usize {
        self.sealed.len()
    }

    fn should_rotate(&self, frame: usize) -> bool {
        if self.active.is_empty() {
            return false;
        }
        if frame > self.active.remaining() {
            return true;
        }
        self.config
            .segment_max_age
            .is_some_and(|age| self.active.created.elapsed() >= age)
    }

    /// Append one record, rotating and applying the fsync policy.
    pub fn append(&mut self, key: Option<&[u8]>, payload: &[u8]) -> io::Result<()> {
        let frame = record_frame_len(key.map(<[u8]>::len), payload.len());
        if self.should_rotate(frame) {
            self.roll()?;
        }
        if frame > self.active.remaining() {
            // A single record larger than a whole segment: grow rather
            // than refuse.
            self.active.ensure_cap(frame)?;
        }
        self.active.append(key, payload);
        let m = store_metrics();
        m.appends.inc();
        m.append_bytes.add(frame as u64);
        m.disk_bytes.add(frame as u64);
        match self.config.fsync {
            FsyncPolicy::Always => {
                self.active.sync()?;
                m.fsyncs.inc();
            }
            FsyncPolicy::Interval(interval) => {
                if self.active.sync_if_due(interval)? {
                    m.fsyncs.inc();
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    fn roll(&mut self) -> io::Result<()> {
        let next_base = self.next_offset();
        let fresh = SegmentWriter::create(
            &self.dir,
            next_base,
            self.config.segment_bytes,
            self.config.index_every,
        )?;
        let old = std::mem::replace(&mut self.active, fresh);
        self.sealed.push(old.seal()?);
        store_metrics().rotations.inc();
        Ok(())
    }

    /// Read up to `max` records starting at offset `from` (clamped up
    /// to the log's start) as `(offset, key, payload)`.
    pub fn read(&self, from: u64, max: usize) -> io::Result<Vec<(u64, Option<Bytes>, Bytes)>> {
        store_metrics().read_batches.inc();
        let mut out = Vec::new();
        let first = self
            .sealed
            .partition_point(|s| s.base_offset + s.records <= from);
        for seg in &self.sealed[first..] {
            if out.len() >= max {
                return Ok(out);
            }
            let rel = from.saturating_sub(seg.base_offset);
            seg.read(rel, max - out.len(), &mut out)?;
        }
        if out.len() < max {
            let rel = from.saturating_sub(self.active.base_offset);
            self.active.read(rel, max - out.len(), &mut out);
        }
        Ok(out)
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.active.sync()
    }
}

// ---------------------------------------------------------------------
// The store façade.
// ---------------------------------------------------------------------

/// A topic reconstructed from disk at startup.
pub struct RecoveredTopic {
    /// Decoded topic name (e.g. `run/abc/status`).
    pub name: String,
    /// Partition stores in partition order, positioned at their
    /// recovered next-offsets.
    pub partitions: Vec<PartitionStore>,
    /// Torn-tail bytes truncated during recovery (crash artifacts).
    pub truncated_bytes: u64,
}

/// Handle on a validated data dir: creates and deletes topic trees.
/// Per-partition I/O happens through the [`PartitionStore`]s it hands
/// out, which the broker owns under its topic locks.
pub struct SegmentStore {
    root: PathBuf,
    config: DurabilityConfig,
}

impl SegmentStore {
    /// Validate (or initialise) `root` and recover every topic found in
    /// it. Refuses foreign and incompatible dirs per [`manifest`].
    pub fn open(
        root: impl Into<PathBuf>,
        config: DurabilityConfig,
    ) -> Result<(SegmentStore, Vec<RecoveredTopic>), MqError> {
        let root = root.into();
        manifest::init_or_check(&root)?;
        let recovered = recovery::scan(&root, config)?;
        let m = store_metrics();
        m.recovery_truncated
            .add(recovered.iter().map(|t| t.truncated_bytes).sum());
        m.disk_bytes.set(dir_disk_bytes(&root));
        Ok((SegmentStore { root, config }, recovered))
    }

    /// The data dir this store owns.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configuration partitions are created with.
    pub fn config(&self) -> DurabilityConfig {
        self.config
    }

    /// Create the on-disk partitions of a new topic. All partition
    /// directories are created eagerly so the partition *count* is
    /// itself durable.
    pub fn create_partitions(
        &self,
        topic: &str,
        partitions: u32,
    ) -> Result<Vec<PartitionStore>, MqError> {
        let dir = topic_dir(&self.root, topic);
        (0..partitions.max(1))
            .map(|p| {
                PartitionStore::create(dir.join(format!("@p{p}")), self.config)
                    .map_err(|e| io_err("creating partition", e))
            })
            .collect()
    }

    /// Remove a topic's directory tree (and now-empty parents up to
    /// `topics/`), reclaiming its disk. Returns whether anything
    /// existed. The caller must have dropped the topic's
    /// [`PartitionStore`]s first.
    pub fn delete_topic(&self, topic: &str) -> Result<bool, MqError> {
        let dir = topic_dir(&self.root, topic);
        store_metrics().disk_bytes.sub(dir_disk_bytes(&dir));
        match std::fs::remove_dir_all(&dir) {
            Ok(()) => {
                // Prune empty ancestors so `topics/run/<id>/` vanishes
                // once its last topic is deleted.
                let stop = self.root.join("topics");
                let mut parent = dir.parent().map(Path::to_path_buf);
                while let Some(p) = parent {
                    if p == stop || std::fs::remove_dir(&p).is_err() {
                        break;
                    }
                    parent = p.parent().map(Path::to_path_buf);
                }
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(io_err("deleting topic dir", e)),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique, self-cleaning temp directory for store tests.
    pub struct TestDir(PathBuf);

    impl TestDir {
        pub fn new(tag: &str) -> TestDir {
            static N: AtomicU64 = AtomicU64::new(0);
            let path = std::env::temp_dir().join(format!(
                "ginflow-store-{tag}-{}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            TestDir(path)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::TestDir;

    #[test]
    fn component_codec_roundtrips_hostile_names() {
        for name in [
            "plain",
            "run",
            "with space",
            "π/∞",
            ".",
            "..",
            "",
            "@p0",
            "a%b",
            "UPPER.low_-",
        ] {
            for component in name.split('/') {
                let enc = encode_component(component);
                assert!(
                    enc.bytes().all(|b| super::byte_is_plain(b) || b == b'%'),
                    "{enc:?} must be a safe file name"
                );
                assert_ne!(enc, ".");
                assert_ne!(enc, "..");
                assert!(!enc.is_empty());
                assert!(!enc.starts_with('@'), "cannot collide with @pN dirs");
                assert_eq!(decode_component(&enc).as_deref(), Some(component));
            }
        }
        assert_eq!(decode_component("%zz"), None);
    }

    #[test]
    fn append_read_rotate() {
        let dir = TestDir::new("partition");
        let config = DurabilityConfig {
            segment_bytes: 256, // force rotation quickly
            fsync: FsyncPolicy::Never,
            ..DurabilityConfig::default()
        };
        let mut p = PartitionStore::create(dir.path().join("@p0"), config).unwrap();
        for i in 0..50u32 {
            p.append(Some(b"k"), format!("payload-{i:04}").as_bytes())
                .unwrap();
        }
        assert_eq!(p.next_offset(), 50);
        assert!(p.sealed_segments() > 1, "256-byte segments must rotate");
        // Reads span sealed segments and the active one.
        let all = p.read(0, 1000).unwrap();
        assert_eq!(all.len(), 50);
        for (i, (offset, key, payload)) in all.iter().enumerate() {
            assert_eq!(*offset, i as u64);
            assert_eq!(key.as_deref(), Some(&b"k"[..]));
            assert_eq!(&payload[..], format!("payload-{i:04}").as_bytes());
        }
        let tail = p.read(47, 10).unwrap();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].0, 47);
        let paged = p.read(3, 5).unwrap();
        assert_eq!(paged.len(), 5);
        assert_eq!(paged[0].0, 3);
        assert_eq!(paged[4].0, 7);
    }

    #[test]
    fn oversized_record_grows_segment() {
        let dir = TestDir::new("oversized");
        let config = DurabilityConfig {
            segment_bytes: 64,
            fsync: FsyncPolicy::Always,
            ..DurabilityConfig::default()
        };
        let mut p = PartitionStore::create(dir.path().join("@p0"), config).unwrap();
        let big = vec![0xAB; 1000];
        p.append(None, &big).unwrap();
        p.append(None, b"after").unwrap();
        let all = p.read(0, 10).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].2.len(), 1000);
    }

    #[test]
    fn delete_topic_prunes_empty_parents() {
        let dir = TestDir::new("delete");
        let (store, recovered) =
            SegmentStore::open(dir.path(), DurabilityConfig::default()).unwrap();
        assert!(recovered.is_empty());
        let parts = store.create_partitions("run/abc/status", 2).unwrap();
        assert_eq!(parts.len(), 2);
        drop(parts);
        assert!(store.delete_topic("run/abc/status").unwrap());
        assert!(!store.delete_topic("run/abc/status").unwrap());
        assert!(
            !dir.path().join("topics/run").exists(),
            "empty run/<id> ancestors must be pruned"
        );
        assert!(dir.path().join("MANIFEST").exists());
    }
}
