//! Startup recovery: rebuild every topic's partition state from disk.
//!
//! The scan walks `<root>/topics/`, treating any directory that
//! contains `@p<N>` entries as a topic leaf (everything else is a
//! namespace level to recurse into). Per partition:
//!
//! 1. Segment files are ordered by their base offset (encoded in the
//!    file name, zero-padded so lexicographic = numeric order).
//! 2. Every segment but the last is **sealed**: its `.idx` sidecar is
//!    trusted when its recorded byte length matches the file; otherwise
//!    the file is rescanned record by record and re-sealed (the sidecar
//!    rewritten, the file truncated to its valid length) — this heals a
//!    crash that landed between rotation steps.
//! 3. The last segment becomes the **active** writer again: the file is
//!    regrown to capacity, remapped, and scanned from the start; the
//!    first invalid record marks the torn tail, which is zeroed so the
//!    log terminates cleanly. A partial final record is a crash
//!    artifact, not corruption — it is counted, truncated, and dropped.
//! 4. The partition's next offset is `last base + surviving records`,
//!    which is exactly what clients' reconnect-replay watermarks expect.
//!
//! A gap or overlap in the base-offset chain means the directory was
//! tampered with (not a crash shape this store can produce) and is
//! refused with a clear error rather than guessed at.

use std::io;
use std::path::{Path, PathBuf};

use super::index::SparseIndex;
use super::segment::{decode_record, index_file_name, Decoded, SealedSegment, SegmentWriter};
use super::{decode_component, DurabilityConfig, PartitionStore, RecoveredTopic};
use crate::MqError;

fn io_err(context: &Path, err: io::Error) -> MqError {
    MqError::Store {
        message: format!("recovering {}: {err}", context.display()),
    }
}

fn corrupt(path: &Path, what: &str) -> MqError {
    MqError::Store {
        message: format!("segment chain of {} is corrupt: {what}", path.display()),
    }
}

/// Recover every topic under `root`. Topics come back sorted by name so
/// recovery (and anything logged about it) is deterministic.
pub(crate) fn scan(root: &Path, config: DurabilityConfig) -> Result<Vec<RecoveredTopic>, MqError> {
    let topics_root = root.join("topics");
    let mut out = Vec::new();
    if topics_root.is_dir() {
        walk(&topics_root, &mut Vec::new(), config, &mut out)?;
    }
    out.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(out)
}

fn walk(
    dir: &Path,
    components: &mut Vec<String>,
    config: DurabilityConfig,
    out: &mut Vec<RecoveredTopic>,
) -> Result<(), MqError> {
    // Partition dirs are named `@p<N>`; `@` is always percent-encoded
    // in topic components, so their presence marks a topic leaf
    // unambiguously (topics may still nest *beside* them).
    let mut partition_dirs: Vec<(u32, PathBuf)> = Vec::new();
    let mut sub_dirs: Vec<(String, PathBuf)> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        if !entry.file_type().map_err(|e| io_err(dir, e))?.is_dir() {
            continue; // stray files are ignored, never adopted
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(n) = name.strip_prefix("@p").and_then(|n| n.parse::<u32>().ok()) {
            partition_dirs.push((n, entry.path()));
        } else if let Some(component) = decode_component(&name) {
            sub_dirs.push((component, entry.path()));
        }
    }

    if !partition_dirs.is_empty() {
        partition_dirs.sort_by_key(|&(n, _)| n);
        if partition_dirs
            .iter()
            .enumerate()
            .any(|(i, &(n, _))| n as usize != i)
        {
            return Err(corrupt(dir, "partition directories are not contiguous"));
        }
        let mut partitions = Vec::with_capacity(partition_dirs.len());
        let mut truncated_bytes = 0u64;
        for (_, pdir) in partition_dirs {
            let (partition, truncated) = recover_partition(pdir, config)?;
            truncated_bytes += truncated;
            partitions.push(partition);
        }
        out.push(RecoveredTopic {
            name: components.join("/"),
            partitions,
            truncated_bytes,
        });
    }

    sub_dirs.sort_by(|a, b| a.0.cmp(&b.0));
    for (component, path) in sub_dirs {
        components.push(component);
        walk(&path, components, config, out)?;
        components.pop();
    }
    Ok(())
}

/// Segment files of one partition dir, sorted by base offset.
fn segment_files(dir: &Path) -> Result<Vec<(u64, PathBuf)>, MqError> {
    let mut segs = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(base) = name
            .strip_suffix(".seg")
            .and_then(|b| b.parse::<u64>().ok())
        {
            segs.push((base, entry.path()));
        }
    }
    segs.sort_by_key(|&(base, _)| base);
    Ok(segs)
}

/// Rebuild one partition: sealed segments plus the reopened active
/// writer. Returns the store and the count of torn-tail bytes dropped.
fn recover_partition(
    dir: PathBuf,
    config: DurabilityConfig,
) -> Result<(PartitionStore, u64), MqError> {
    let segs = segment_files(&dir)?;
    let Some((&(last_base, ref last_path), earlier)) = segs.split_last() else {
        // A partition dir with no segments (e.g. swept by hand): start
        // it fresh at offset zero.
        let active = SegmentWriter::create(&dir, 0, config.segment_bytes, config.index_every)
            .map_err(|e| io_err(&dir, e))?;
        return Ok((
            PartitionStore::from_parts(dir, config, Vec::new(), active),
            0,
        ));
    };

    let mut sealed = Vec::with_capacity(earlier.len());
    let mut expected_base = 0u64;
    for &(base, ref path) in earlier {
        if base != expected_base {
            return Err(corrupt(path, "base offset does not continue the chain"));
        }
        let seg = recover_sealed(path.clone(), base, config.index_every)?;
        expected_base = base + seg.records;
        sealed.push(seg);
    }
    if last_base != expected_base {
        return Err(corrupt(
            last_path,
            "base offset does not continue the chain",
        ));
    }

    let mut active = SegmentWriter::open_existing(
        last_path.clone(),
        last_base,
        config.segment_bytes,
        config.index_every,
    )
    .map_err(|e| io_err(last_path, e))?;
    let truncated = active.recover_tail();
    Ok((
        PartitionStore::from_parts(dir, config, sealed, active),
        truncated,
    ))
}

/// Recover one sealed (non-last) segment, trusting its sidecar only
/// when it matches the file (whatever stride it was written at), and
/// re-sealing from a full rescan at `index_every` otherwise.
fn recover_sealed(path: PathBuf, base: u64, index_every: u64) -> Result<SealedSegment, MqError> {
    let file_len = std::fs::metadata(&path)
        .map_err(|e| io_err(&path, e))?
        .len();
    let idx_path = path.with_file_name(index_file_name(base));
    if let Some((index, records, bytes)) = SparseIndex::load(&idx_path) {
        if bytes == file_len {
            return Ok(SealedSegment {
                base_offset: base,
                records,
                path,
                index,
            });
        }
    }

    // No trustworthy sidecar: rescan the file (a crash between the
    // rotation steps leaves exactly this shape) and re-seal it.
    let data = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
    let mut index = SparseIndex::with_every(index_every);
    let mut records = 0u64;
    let mut pos = 0usize;
    while let Decoded::Record { frame, .. } = decode_record(&data[pos..]) {
        index.note(records, pos);
        records += 1;
        pos += frame;
    }
    if records == 0 {
        return Err(corrupt(&path, "sealed segment holds no valid records"));
    }
    if (pos as u64) < file_len {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        file.set_len(pos as u64).map_err(|e| io_err(&path, e))?;
        file.sync_all().map_err(|e| io_err(&path, e))?;
    }
    index
        .write_to(&idx_path, records, pos as u64)
        .map_err(|e| io_err(&idx_path, e))?;
    Ok(SealedSegment {
        base_offset: base,
        records,
        path,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::segment::{encode_record, record_frame_len};
    use crate::store::testutil::TestDir;
    use crate::store::{FsyncPolicy, SegmentStore};

    fn config(segment_bytes: usize) -> DurabilityConfig {
        DurabilityConfig {
            segment_bytes,
            fsync: FsyncPolicy::Never,
            ..DurabilityConfig::default()
        }
    }

    fn fill(store: &SegmentStore, topic: &str, n: u32) -> Vec<super::PartitionStore> {
        let mut parts = store.create_partitions(topic, 1).unwrap();
        for i in 0..n {
            parts[0].append(None, format!("m{i}").as_bytes()).unwrap();
        }
        parts
    }

    #[test]
    fn recovery_restores_offsets_and_data() {
        let dir = TestDir::new("recover-basic");
        {
            let (store, _) = SegmentStore::open(dir.path(), config(128)).unwrap();
            let parts = fill(&store, "run/r1/status", 40);
            assert_eq!(parts[0].next_offset(), 40);
            // Drop without any explicit close: clean-shutdown path.
        }
        let (_store, recovered) = SegmentStore::open(dir.path(), config(128)).unwrap();
        assert_eq!(recovered.len(), 1);
        let topic = &recovered[0];
        assert_eq!(topic.name, "run/r1/status");
        assert_eq!(topic.truncated_bytes, 0);
        assert_eq!(topic.partitions[0].next_offset(), 40);
        let all = topic.partitions[0].read(0, 100).unwrap();
        assert_eq!(all.len(), 40);
        assert_eq!(&all[39].2[..], b"m39");
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = TestDir::new("recover-torn");
        let pdir;
        {
            let (store, _) = SegmentStore::open(dir.path(), config(1 << 16)).unwrap();
            let mut parts = fill(&store, "t", 5);
            parts[0].sync().unwrap();
            pdir = super::segment_files(&dir.path().join("topics/t/@p0"))
                .unwrap()
                .pop()
                .unwrap()
                .1;
        }
        // Simulate a crash mid-append: write a record frame whose body
        // never finished (good length, garbage body) at the valid end.
        let valid_end: usize = (0..5)
            .map(|i| record_frame_len(None, format!("m{i}").len()))
            .sum();
        let mut torn = Vec::new();
        encode_record(&mut torn, None, b"never-finished");
        let tear_at = torn.len() - 3;
        let file = std::fs::OpenOptions::new().write(true).open(&pdir).unwrap();
        use std::io::{Seek, SeekFrom, Write};
        let mut file = file;
        file.seek(SeekFrom::Start(valid_end as u64)).unwrap();
        file.write_all(&torn[..tear_at]).unwrap();
        drop(file);

        let (_store, recovered) = SegmentStore::open(dir.path(), config(1 << 16)).unwrap();
        assert_eq!(recovered.len(), 1);
        assert!(recovered[0].truncated_bytes > 0, "tear must be counted");
        assert_eq!(recovered[0].partitions[0].next_offset(), 5);
        // And the partition accepts appends again at the right offset.
        let mut parts = recovered.into_iter().next().unwrap().partitions;
        parts[0].append(None, b"m5").unwrap();
        let all = parts[0].read(0, 100).unwrap();
        assert_eq!(all.len(), 6);
        assert_eq!(&all[5].2[..], b"m5");
    }

    #[test]
    fn missing_index_sidecar_is_healed() {
        let dir = TestDir::new("recover-noidx");
        {
            let (store, _) = SegmentStore::open(dir.path(), config(128)).unwrap();
            let parts = fill(&store, "t", 40);
            assert!(parts[0].sealed_segments() > 0);
        }
        // Delete every sidecar: recovery must rescan and re-seal.
        for entry in std::fs::read_dir(dir.path().join("topics/t/@p0")).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "idx") {
                std::fs::remove_file(&p).unwrap();
            }
        }
        let (_store, recovered) = SegmentStore::open(dir.path(), config(128)).unwrap();
        assert_eq!(recovered[0].partitions[0].next_offset(), 40);
        assert_eq!(recovered[0].partitions[0].read(0, 100).unwrap().len(), 40);
    }

    #[test]
    fn broken_chain_is_refused() {
        let dir = TestDir::new("recover-chain");
        {
            let (store, _) = SegmentStore::open(dir.path(), config(128)).unwrap();
            let parts = fill(&store, "t", 40);
            assert!(parts[0].sealed_segments() > 1);
        }
        // Delete the first segment: the chain no longer starts at 0.
        let first = super::segment_files(&dir.path().join("topics/t/@p0"))
            .unwrap()
            .remove(0)
            .1;
        std::fs::remove_file(first).unwrap();
        let err = SegmentStore::open(dir.path(), config(128))
            .err()
            .expect("a broken chain must be refused");
        assert!(err.to_string().contains("chain"), "{err}");
    }
}
