//! The data-dir manifest: schema-versioned ownership stamp.
//!
//! A data dir is only ever opened when its `MANIFEST` proves it was
//! written by a compatible version of this store. The discipline is
//! deliberately strict — refusing early with a clear error beats
//! silently misreading someone else's bytes:
//!
//! * empty / nonexistent dir → initialise (write a fresh manifest)
//! * `MANIFEST` present, schema matches → open
//! * `MANIFEST` present, schema differs → refuse (incompatible)
//! * non-empty dir without `MANIFEST` → refuse (foreign dir — never
//!   adopt a directory we did not create)
//!
//! ## Manifest format (`MANIFEST`, text)
//!
//! | line | content                  |
//! |------|--------------------------|
//! | 1    | `ginflow segment store`  |
//! | 2    | `schema 1`               |
//!
//! The file is written atomically (tmp + rename) so a crash during
//! initialisation leaves either no manifest (dir re-initialised next
//! time) or a complete one.

use std::io;
use std::path::Path;

use crate::MqError;

const MAGIC_LINE: &str = "ginflow segment store";

/// Current on-disk schema version. Bump on any incompatible change to
/// the record, index, or layout formats.
pub const SCHEMA_VERSION: u32 = 1;

const FILE_NAME: &str = "MANIFEST";

fn io_err(context: &str, err: io::Error) -> MqError {
    MqError::Store {
        message: format!("{context}: {err}"),
    }
}

/// True if `dir` exists and contains any entry at all.
fn dir_non_empty(dir: &Path) -> io::Result<bool> {
    match std::fs::read_dir(dir) {
        Ok(mut entries) => Ok(entries.next().is_some()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(e),
    }
}

/// Validate or initialise the manifest of `dir` per the rules above.
pub fn init_or_check(dir: &Path) -> Result<(), MqError> {
    let path = dir.join(FILE_NAME);
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let mut lines = text.lines();
            if lines.next() != Some(MAGIC_LINE) {
                return Err(MqError::Store {
                    message: format!(
                        "{} is not a ginflow segment store manifest; refusing to open {}",
                        path.display(),
                        dir.display()
                    ),
                });
            }
            let schema = lines
                .next()
                .and_then(|l| l.strip_prefix("schema "))
                .and_then(|v| v.trim().parse::<u32>().ok());
            match schema {
                Some(v) if v == SCHEMA_VERSION => Ok(()),
                Some(v) => Err(MqError::Store {
                    message: format!(
                        "data dir {} has schema version {v}, this build supports {SCHEMA_VERSION}; \
                         refusing to open incompatible store",
                        dir.display()
                    ),
                }),
                None => Err(MqError::Store {
                    message: format!(
                        "manifest {} is malformed (missing schema line); refusing to open",
                        path.display()
                    ),
                }),
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            if dir_non_empty(dir).map_err(|e| io_err("inspecting data dir", e))? {
                return Err(MqError::Store {
                    message: format!(
                        "data dir {} is non-empty but has no MANIFEST; refusing to adopt a \
                         foreign directory",
                        dir.display()
                    ),
                });
            }
            std::fs::create_dir_all(dir).map_err(|e| io_err("creating data dir", e))?;
            let tmp = dir.join(".MANIFEST.tmp");
            std::fs::write(&tmp, format!("{MAGIC_LINE}\nschema {SCHEMA_VERSION}\n"))
                .map_err(|e| io_err("writing manifest", e))?;
            std::fs::rename(&tmp, &path).map_err(|e| io_err("committing manifest", e))?;
            Ok(())
        }
        Err(e) => Err(io_err("reading manifest", e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::testutil::TestDir;

    #[test]
    fn initialises_fresh_and_reopens() {
        let dir = TestDir::new("manifest-fresh");
        init_or_check(dir.path()).unwrap();
        assert!(dir.path().join("MANIFEST").exists());
        init_or_check(dir.path()).unwrap(); // idempotent
    }

    #[test]
    fn refuses_foreign_dir() {
        let dir = TestDir::new("manifest-foreign");
        std::fs::create_dir_all(dir.path()).unwrap();
        std::fs::write(dir.path().join("stuff.txt"), b"hi").unwrap();
        let err = init_or_check(dir.path()).unwrap_err();
        assert!(err.to_string().contains("foreign"), "{err}");
    }

    #[test]
    fn refuses_version_bump_and_garbage() {
        let dir = TestDir::new("manifest-bump");
        std::fs::create_dir_all(dir.path()).unwrap();
        std::fs::write(
            dir.path().join("MANIFEST"),
            format!("{MAGIC_LINE}\nschema {}\n", SCHEMA_VERSION + 1),
        )
        .unwrap();
        let err = init_or_check(dir.path()).unwrap_err();
        assert!(err.to_string().contains("incompatible"), "{err}");

        std::fs::write(dir.path().join("MANIFEST"), "something else\n").unwrap();
        let err = init_or_check(dir.path()).unwrap_err();
        assert!(err.to_string().contains("refusing"), "{err}");
    }
}
