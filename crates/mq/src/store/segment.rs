//! The on-disk record codec and the mmap-backed active-segment writer.
//!
//! ## Record format
//!
//! Every message is one length-prefixed, CRC-guarded record:
//!
//! | field     | size     | meaning                                        |
//! |-----------|----------|------------------------------------------------|
//! | `len`     | u32 LE   | body length in bytes; `0` terminates the log   |
//! | `crc`     | u32 LE   | CRC-32 (IEEE) of the body                      |
//! | `key_len` | u32 LE   | key length; [`NO_KEY`] when the key is absent  |
//! | `key`     | `key_len`| partition key bytes (absent under [`NO_KEY`])  |
//! | `payload` | rest     | message payload                                |
//!
//! The body is `key_len + key + payload`; offsets are *implicit* —
//! record `i` of a segment holds offset `base_offset + i`, which is
//! what makes the log dense and the index sparse.
//!
//! ## Why mmap
//!
//! The writer appends by `memcpy` into a shared file mapping instead of
//! a `write(2)` per record: a publish costs tens of nanoseconds instead
//! of a syscall, which keeps the durable path within the same order of
//! magnitude as the in-memory broker (the CI bench gate). Pages dirtied
//! through the mapping live in the OS page cache, so they survive a
//! SIGKILL of the daemon; only a *machine* crash can lose data that the
//! fsync policy has not yet `msync`ed. The `len` field is written
//! *last*, so a record interrupted mid-copy is seen by recovery as
//! either a zero `len` (clean end) or a CRC mismatch (torn tail) —
//! never as a valid record.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::AsRawFd;
use std::path::{Path, PathBuf};
use std::time::Instant;

use super::index::SparseIndex;

/// `key_len` sentinel distinguishing "no key" from an empty key.
pub const NO_KEY: u32 = u32::MAX;

/// Bytes of framing (`len` + `crc`) ahead of every record body.
pub const RECORD_HEADER: usize = 8;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the polynomial Kafka and zlib use).
// ---------------------------------------------------------------------

// Slicing-by-8: eight derived tables let the hot loop fold 8 input
// bytes per iteration with independent lookups instead of a serial
// 1-byte dependency chain — ~8x faster on the 64–128 byte bodies the
// publish path CRCs, which is what keeps the durable broker within the
// CI gate's 0.5x-of-in-memory throughput floor.
const fn make_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut i = 0;
    while i < 256 {
        let mut c = tables[0][i];
        let mut t = 1;
        while t < 8 {
            c = tables[0][(c & 0xff) as usize] ^ (c >> 8);
            tables[t][i] = c;
            t += 1;
        }
        i += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = make_crc_tables();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = CRC_TABLES[7][(lo & 0xff) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xff) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = CRC_TABLES[0][((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Total on-disk bytes of one record with the given key/payload sizes.
pub fn record_frame_len(key_len: Option<usize>, payload_len: usize) -> usize {
    RECORD_HEADER + 4 + key_len.unwrap_or(0) + payload_len
}

/// Append one encoded record to `out` (the `Vec` form of what
/// [`SegmentWriter::append`] writes through the mapping — shared by
/// tests and the docs' format table).
pub fn encode_record(out: &mut Vec<u8>, key: Option<&[u8]>, payload: &[u8]) {
    let key_len = key.map_or(0, <[u8]>::len);
    let body_len = 4 + key_len + payload.len();
    out.reserve(RECORD_HEADER + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    let body_start = out.len() + 4;
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    match key {
        Some(k) => {
            out.extend_from_slice(&(key_len as u32).to_le_bytes());
            out.extend_from_slice(k);
        }
        None => out.extend_from_slice(&NO_KEY.to_le_bytes()),
    }
    out.extend_from_slice(payload);
    let crc = crc32(&out[body_start..]);
    out[body_start - 4..body_start].copy_from_slice(&crc.to_le_bytes());
}

/// Outcome of decoding the record at the head of `buf`.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// A valid record; `frame` bytes long on disk.
    Record {
        /// Partition key, if the record carried one.
        key: Option<&'a [u8]>,
        /// Message payload.
        payload: &'a [u8],
        /// Total encoded length (header + body).
        frame: usize,
    },
    /// Clean end of the log (zero `len`, or fewer than
    /// [`RECORD_HEADER`] bytes remain).
    End,
    /// A partial or corrupt record — a crash artifact recovery
    /// truncates.
    Torn,
}

fn read_u32(buf: &[u8]) -> u32 {
    u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]])
}

/// Decode the record at the head of `buf`.
pub fn decode_record(buf: &[u8]) -> Decoded<'_> {
    if buf.len() < RECORD_HEADER {
        return Decoded::End;
    }
    let len = read_u32(buf) as usize;
    if len == 0 {
        return Decoded::End;
    }
    if len < 4 || len > buf.len() - RECORD_HEADER {
        return Decoded::Torn;
    }
    let crc = read_u32(&buf[4..]);
    let body = &buf[RECORD_HEADER..RECORD_HEADER + len];
    if crc32(body) != crc {
        return Decoded::Torn;
    }
    let key_len = read_u32(body);
    let frame = RECORD_HEADER + len;
    if key_len == NO_KEY {
        return Decoded::Record {
            key: None,
            payload: &body[4..],
            frame,
        };
    }
    let key_len = key_len as usize;
    if key_len > len - 4 {
        return Decoded::Torn;
    }
    Decoded::Record {
        key: Some(&body[4..4 + key_len]),
        payload: &body[4 + key_len..],
        frame,
    }
}

// ---------------------------------------------------------------------
// mmap plumbing (raw syscalls; the platform libc is linked by std, the
// same trick shims/mio uses for epoll).
// ---------------------------------------------------------------------

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn msync(addr: *mut c_void, len: usize, flags: c_int) -> c_int;
    fn clock_gettime(clock: c_int, tp: *mut Timespec) -> c_int;
}

#[repr(C)]
struct Timespec {
    sec: i64,
    nsec: i64,
}

/// `CLOCK_MONOTONIC_COARSE`: the tick-resolution (~1–4 ms) monotonic
/// clock the vDSO serves without a timer read — an order of magnitude
/// cheaper than `Instant::now()`, and plenty for fsync deadlines in
/// the tens of milliseconds.
const CLOCK_MONOTONIC_COARSE: c_int = 6;

/// Coarse monotonic milliseconds — the interval-fsync deadline clock.
/// Cheap enough to read on every append.
fn coarse_millis() -> u64 {
    let mut ts = Timespec { sec: 0, nsec: 0 };
    if unsafe { clock_gettime(CLOCK_MONOTONIC_COARSE, &mut ts) } != 0 {
        return 0;
    }
    ts.sec as u64 * 1000 + (ts.nsec / 1_000_000) as u64
}

const PROT_READ: c_int = 1;
const PROT_WRITE: c_int = 2;
const MAP_SHARED: c_int = 1;
const MS_ASYNC: c_int = 1;
const MS_SYNC: c_int = 4;
const PAGE: usize = 4096;

/// A shared, writable file mapping. Unmapped on drop.
struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// The mapping is only ever mutated under its owning partition's lock.
unsafe impl Send for Mmap {}

impl Mmap {
    fn map(file: &File, len: usize) -> io::Result<Mmap> {
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *mut u8,
            len,
        })
    }

    /// `msync` the first `upto` bytes (page-rounded). `MS_SYNC` blocks
    /// until the pages are on stable storage; `MS_ASYNC` just queues
    /// them for kernel writeback and returns — the interval policy's
    /// non-stalling flavor.
    fn sync_flags(&self, upto: usize, flags: c_int) -> io::Result<()> {
        let len = upto.min(self.len).div_ceil(PAGE) * PAGE;
        if len == 0 {
            return Ok(());
        }
        if unsafe { msync(self.ptr as *mut c_void, len.min(self.len), flags) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Blocking `msync` of the first `upto` bytes to stable storage.
    fn sync(&self, upto: usize) -> io::Result<()> {
        self.sync_flags(upto, MS_SYNC)
    }

    fn as_slice(&self) -> &[u8] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            unsafe { munmap(self.ptr as *mut c_void, self.len) };
        }
    }
}

/// Segment file name for a base offset (`{base:020}.seg`, so
/// lexicographic order is offset order).
pub(crate) fn segment_file_name(base_offset: u64) -> String {
    format!("{base_offset:020}.seg")
}

/// Sidecar index file name for a base offset.
pub(crate) fn index_file_name(base_offset: u64) -> String {
    format!("{base_offset:020}.idx")
}

/// A sealed (read-only) segment: exact-length file plus its in-memory
/// sparse index, as recovered or produced by [`SegmentWriter::seal`].
pub(crate) struct SealedSegment {
    pub base_offset: u64,
    pub records: u64,
    pub path: PathBuf,
    pub index: SparseIndex,
}

impl SealedSegment {
    /// Bytes fetched per `read(2)` while satisfying a cold read. One
    /// chunk covers the index floor's forward scan (`index_every`
    /// records) plus a typical batch, so most fetches cost one seek
    /// and one read instead of the whole-file `fs::read` this path
    /// used before the read-path tuning.
    const READ_CHUNK: usize = 64 * 1024;

    /// Read records `[rel, …)` (relative to `base_offset`) into `out`
    /// as `(offset, key, payload)`, at most `max` of them.
    ///
    /// Seeks straight to the sparse-index floor and streams forward in
    /// [`Self::READ_CHUNK`] slices, so a fetch touches `O(scan + batch)`
    /// bytes — not the whole segment. The scan past the floor is at
    /// most `index_every − 1` records, which is what the index stride
    /// knob bounds.
    pub fn read(
        &self,
        rel: u64,
        max: usize,
        out: &mut Vec<(u64, Option<bytes::Bytes>, bytes::Bytes)>,
    ) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let (mut at, pos) = self.index.floor(rel);
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(pos as u64))?;
        let mut data: Vec<u8> = Vec::new();
        let mut consumed = 0usize;
        let mut took = 0usize;
        while took < max && at < self.records {
            match decode_record(&data[consumed..]) {
                Decoded::Record {
                    key,
                    payload,
                    frame,
                } => {
                    if at >= rel {
                        out.push((
                            self.base_offset + at,
                            key.map(bytes::Bytes::copy_from_slice),
                            bytes::Bytes::copy_from_slice(payload),
                        ));
                        took += 1;
                    }
                    at += 1;
                    consumed += frame;
                }
                // `End`/`Torn` here usually just means the buffered
                // window ends mid-record — fetch another chunk and
                // retry. A refill that yields nothing is the real
                // verdict: end of file, or (since a sealed segment was
                // scanned whole at recovery) concurrent external
                // damage — stop rather than serve garbage.
                Decoded::End | Decoded::Torn => {
                    data.drain(..consumed);
                    consumed = 0;
                    let filled = (&mut file)
                        .take(Self::READ_CHUNK as u64)
                        .read_to_end(&mut data)?;
                    if filled == 0 {
                        break;
                    }
                }
            }
        }
        Ok(())
    }
}

/// The active (append) segment of one partition: a capacity-sized file
/// appended through a shared mapping.
pub(crate) struct SegmentWriter {
    pub base_offset: u64,
    pub records: u64,
    pub index: SparseIndex,
    /// Valid data bytes (everything below is CRC-complete records).
    len: usize,
    /// Mapped capacity = current file length.
    cap: usize,
    map: Mmap,
    file: File,
    path: PathBuf,
    /// First append's time — drives age-based rotation.
    pub created: Instant,
    /// [`coarse_millis`] of the last sync — the interval-policy clock.
    last_sync_ms: u64,
}

impl SegmentWriter {
    /// Create a fresh segment of `cap` bytes (sparse until written),
    /// indexing every `index_every`th record.
    pub fn create(
        dir: &Path,
        base_offset: u64,
        cap: usize,
        index_every: u64,
    ) -> io::Result<SegmentWriter> {
        let path = dir.join(segment_file_name(base_offset));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        file.set_len(cap as u64)?;
        let map = Mmap::map(&file, cap)?;
        Ok(SegmentWriter {
            base_offset,
            records: 0,
            index: SparseIndex::with_every(index_every),
            len: 0,
            cap,
            map,
            file,
            path,
            created: Instant::now(),
            last_sync_ms: coarse_millis(),
        })
    }

    /// Reopen an existing segment file as the active writer, growing it
    /// back to at least `cap_hint` (a previously sealed file was
    /// truncated to its exact length). The caller must follow with
    /// [`SegmentWriter::recover_tail`].
    pub fn open_existing(
        path: PathBuf,
        base_offset: u64,
        cap_hint: usize,
        index_every: u64,
    ) -> io::Result<SegmentWriter> {
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let cap = (file.metadata()?.len() as usize).max(cap_hint);
        file.set_len(cap as u64)?;
        let map = Mmap::map(&file, cap)?;
        Ok(SegmentWriter {
            base_offset,
            records: 0,
            index: SparseIndex::with_every(index_every),
            len: 0,
            cap,
            map,
            file,
            path,
            created: Instant::now(),
            last_sync_ms: coarse_millis(),
        })
    }

    /// Scan the mapping from the start, counting CRC-complete records
    /// and rebuilding the sparse index; everything after the first
    /// invalid record is discarded (the torn tail of a crash). Returns
    /// the number of trailing bytes truncated.
    pub fn recover_tail(&mut self) -> u64 {
        let data = self.map.as_slice();
        let mut pos = 0usize;
        let mut records = 0u64;
        let mut index = SparseIndex::with_every(self.index.every());
        while let Decoded::Record { frame, .. } = decode_record(&data[pos..]) {
            index.note(records, pos);
            records += 1;
            pos += frame;
        }
        self.records = records;
        self.index = index;
        self.len = pos;
        // Count only *non-zero* discarded bytes as truncation: the
        // region past `pos` in a capacity-sized file is usually just
        // the zero fill.
        let torn = data[pos..].iter().filter(|&&b| b != 0).count() as u64;
        // Re-terminate the log cleanly so the garbage can never be
        // re-examined by a later recovery.
        let zero_to = (pos + RECORD_HEADER).min(self.cap);
        unsafe {
            std::ptr::write_bytes(self.map.ptr.add(pos), 0, zero_to - pos);
        }
        torn
    }

    /// Bytes of capacity left.
    pub fn remaining(&self) -> usize {
        self.cap - self.len
    }

    /// Has this segment any records yet?
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Grow capacity to hold at least `frame` more bytes (only used
    /// when a single record exceeds a fresh segment's capacity).
    pub fn ensure_cap(&mut self, frame: usize) -> io::Result<()> {
        if self.len + frame <= self.cap {
            return Ok(());
        }
        let cap = self.len + frame;
        self.map = Mmap {
            ptr: std::ptr::null_mut(),
            len: 0,
        }; // unmap first
        self.file.set_len(cap as u64)?;
        self.map = Mmap::map(&self.file, cap)?;
        self.cap = cap;
        Ok(())
    }

    /// Append one record (the caller has checked capacity / rolled).
    pub fn append(&mut self, key: Option<&[u8]>, payload: &[u8]) {
        let key_len = key.map_or(0, <[u8]>::len);
        let body_len = 4 + key_len + payload.len();
        debug_assert!(self.len + RECORD_HEADER + body_len <= self.cap);
        unsafe {
            let p = self.map.ptr.add(self.len);
            let body = p.add(RECORD_HEADER);
            match key {
                Some(k) => {
                    body.copy_from((key_len as u32).to_le_bytes().as_ptr(), 4);
                    body.add(4).copy_from(k.as_ptr(), key_len);
                }
                None => body.copy_from(NO_KEY.to_le_bytes().as_ptr(), 4),
            }
            body.add(4 + key_len)
                .copy_from(payload.as_ptr(), payload.len());
            let crc = crc32(std::slice::from_raw_parts(body, body_len));
            p.add(4).copy_from(crc.to_le_bytes().as_ptr(), 4);
            // `len` last: recovery never sees a framed-but-partial body.
            p.copy_from((body_len as u32).to_le_bytes().as_ptr(), 4);
        }
        if self.records == 0 {
            self.created = Instant::now();
        }
        self.index.note(self.records, self.len);
        self.records += 1;
        self.len += RECORD_HEADER + body_len;
    }

    /// `msync` everything appended so far.
    pub fn sync(&mut self) -> io::Result<()> {
        self.map.sync(self.len)?;
        self.last_sync_ms = coarse_millis();
        Ok(())
    }

    /// Apply the interval fsync policy: when `interval` has elapsed
    /// since the last sync (as seen by the coarse clock, so the
    /// deadline check costs nanoseconds), hand the dirty pages to
    /// kernel writeback with `MS_ASYNC` — the publish path never
    /// stalls on disk I/O. A process crash loses nothing either way
    /// (the page cache survives); a *machine* crash under this policy
    /// loses at most ~`interval` plus the writeback in flight, which
    /// is the deal the knob advertises. [`SegmentWriter::sync`]
    /// (driven by `flush`, seal, and drop) remains fully blocking.
    /// Returns whether a sync was actually issued.
    pub fn sync_if_due(&mut self, interval: std::time::Duration) -> io::Result<bool> {
        if coarse_millis().saturating_sub(self.last_sync_ms) >= interval.as_millis() as u64 {
            self.map.sync_flags(self.len, MS_ASYNC)?;
            self.last_sync_ms = coarse_millis();
            return Ok(true);
        }
        Ok(false)
    }

    /// Read records `[rel, …)` from the mapping into `out`, at most
    /// `max` of them.
    pub fn read(
        &self,
        rel: u64,
        max: usize,
        out: &mut Vec<(u64, Option<bytes::Bytes>, bytes::Bytes)>,
    ) {
        let (mut at, pos) = self.index.floor(rel);
        let data = &self.map.as_slice()[..self.len];
        let mut buf = &data[pos.min(data.len())..];
        let mut took = 0usize;
        while took < max && at < self.records {
            match decode_record(buf) {
                Decoded::Record {
                    key,
                    payload,
                    frame,
                } => {
                    if at >= rel {
                        out.push((
                            self.base_offset + at,
                            key.map(bytes::Bytes::copy_from_slice),
                            bytes::Bytes::copy_from_slice(payload),
                        ));
                        took += 1;
                    }
                    at += 1;
                    buf = &buf[frame..];
                }
                Decoded::End | Decoded::Torn => break,
            }
        }
    }

    /// Freeze this segment: sync, truncate to its exact data length,
    /// persist the sparse index sidecar, and return the read-only view.
    pub fn seal(mut self) -> io::Result<SealedSegment> {
        self.map.sync(self.len)?;
        // Unmap before truncating below the mapped range.
        self.map = Mmap {
            ptr: std::ptr::null_mut(),
            len: 0,
        };
        self.file.set_len(self.len as u64)?;
        self.file.sync_all()?;
        let idx_path = self.path.with_file_name(index_file_name(self.base_offset));
        self.index
            .write_to(&idx_path, self.records, self.len as u64)?;
        Ok(SealedSegment {
            base_offset: self.base_offset,
            records: self.records,
            path: self.path.clone(),
            index: std::mem::take(&mut self.index),
        })
    }
}

impl Drop for SegmentWriter {
    fn drop(&mut self) {
        // Clean shutdown durability: push appended bytes to the OS (a
        // process exit keeps page-cache writes anyway; this guards the
        // machine-crash window for data the policy had not synced yet).
        if self.len > 0 {
            let _ = self.map.sync(self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // zlib's documented check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip_and_frame_len() {
        let mut buf = Vec::new();
        encode_record(&mut buf, Some(b"k"), b"payload");
        assert_eq!(buf.len(), record_frame_len(Some(1), 7));
        match decode_record(&buf) {
            Decoded::Record {
                key,
                payload,
                frame,
            } => {
                assert_eq!(key, Some(&b"k"[..]));
                assert_eq!(payload, b"payload");
                assert_eq!(frame, buf.len());
            }
            other => panic!("{other:?}"),
        }
        // Keyless and empty-key are distinct on disk.
        let mut keyless = Vec::new();
        encode_record(&mut keyless, None, b"p");
        let mut empty_key = Vec::new();
        encode_record(&mut empty_key, Some(b""), b"p");
        assert_ne!(keyless, empty_key);
        assert!(matches!(
            decode_record(&keyless),
            Decoded::Record { key: None, .. }
        ));
        assert!(matches!(
            decode_record(&empty_key),
            Decoded::Record { key: Some(&[]), .. }
        ));
    }

    #[test]
    fn corrupt_records_decode_as_torn() {
        let mut buf = Vec::new();
        encode_record(&mut buf, None, b"hello");
        let mut flipped = buf.clone();
        *flipped.last_mut().unwrap() ^= 0x01;
        assert_eq!(decode_record(&flipped), Decoded::Torn);
        // A length pointing past the buffer is torn, zeros are End.
        assert_eq!(decode_record(&[0xff; 8]), Decoded::Torn);
        assert_eq!(decode_record(&[0u8; 64]), Decoded::End);
        assert_eq!(decode_record(&buf[..5]), Decoded::End);
    }
}
