//! The [`Broker`] abstraction both middleware profiles implement.

use crate::error::MqError;
use crate::message::Message;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Where a subscription starts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubscribeMode {
    /// Only messages published after the subscription (both brokers).
    Latest,
    /// All retained messages, then live (persistent broker only).
    Beginning,
    /// Retained messages from the given offset (single-partition topics),
    /// then live (persistent broker only).
    FromOffset(u64),
}

/// Acknowledgement of a publish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Receipt {
    /// Partition the message was routed to.
    pub partition: u32,
    /// Offset assigned within that partition.
    pub offset: u64,
}

/// The middleware interface: topic-based pub/sub with optional
/// persistence and replay.
pub trait Broker: Send + Sync {
    /// Publish `payload` to `topic`; the optional `key` pins the partition
    /// on partitioned brokers.
    fn publish(&self, topic: &str, key: Option<Bytes>, payload: Bytes) -> Result<Receipt, MqError>;

    /// Publish without waiting for the broker's acknowledgement — the
    /// hot-path variant for callers that do not consume the [`Receipt`]
    /// (agents firing results and status updates).
    ///
    /// In-process brokers complete synchronously, so the default simply
    /// forwards to [`Broker::publish`]. Out-of-process frontends
    /// (`ginflow-net`'s `RemoteBroker`) override this with a *pipelined*
    /// path: the frame is written and the call returns, acks are
    /// consumed asynchronously, and the call only blocks when the
    /// in-flight window is full. Per-topic FIFO ordering is preserved
    /// either way. A pipelined publish that later fails (connection
    /// lost before the ack) surfaces on the next [`Broker::flush`] —
    /// the same at-most-once-on-outage contract the blocking path gives
    /// callers that discard its error.
    fn publish_nowait(
        &self,
        topic: &str,
        key: Option<Bytes>,
        payload: Bytes,
    ) -> Result<(), MqError> {
        self.publish(topic, key, payload).map(|_| ())
    }

    /// Block until every pipelined [`Broker::publish_nowait`] has been
    /// acknowledged. Returns the first latched pipeline error (e.g.
    /// publishes lost to a severed connection) since the previous
    /// flush, if any. In-process brokers have nothing in flight, so the
    /// default is a no-op.
    fn flush(&self) -> Result<(), MqError> {
        Ok(())
    }

    /// Subscribe to a topic.
    fn subscribe(&self, topic: &str, mode: SubscribeMode) -> Result<Subscription, MqError>;

    /// Open many subscriptions at once, in order. Semantically identical
    /// to calling [`Broker::subscribe`] per request (the default does
    /// exactly that); out-of-process frontends override this to
    /// *pipeline* the round trips — all SUBSCRIBE frames go out before
    /// the first ack is awaited, so launching a 1000-agent run costs
    /// one round trip rather than a thousand.
    fn subscribe_many(
        &self,
        requests: &[(String, SubscribeMode)],
    ) -> Result<Vec<Subscription>, MqError> {
        requests
            .iter()
            .map(|(topic, mode)| self.subscribe(topic, *mode))
            .collect()
    }

    /// Read retained messages without subscribing (replay). Only the
    /// persistent broker supports this.
    fn fetch(
        &self,
        topic: &str,
        partition: u32,
        from_offset: u64,
        max: usize,
    ) -> Result<Vec<Message>, MqError>;

    /// Does the broker retain messages (enabling replay / recovery)?
    fn persistent(&self) -> bool;

    /// Number of partitions of `topic` (1 if it does not exist yet).
    fn partitions(&self, topic: &str) -> u32;

    /// Total retained messages in `topic` across partitions (0 on
    /// non-persistent brokers) — used by recovery to bound replay.
    fn retained(&self, topic: &str) -> u64;

    /// Drop `topic` entirely: retained messages and subscriber
    /// registrations (live [`Subscription`]s see disconnection). The
    /// reclamation hook a standing daemon's run GC is built on. Returns
    /// whether the topic existed; the default (for brokers that cannot
    /// reclaim, e.g. a remote frontend) removes nothing.
    fn delete_topic(&self, topic: &str) -> bool {
        let _ = topic;
        false
    }

    /// Names of every topic the broker currently knows, in no
    /// particular order. How a server rehydrates its run registry from
    /// a broker recovered off disk. Brokers that cannot enumerate
    /// (e.g. a remote frontend) return nothing — the default.
    fn topic_names(&self) -> Vec<String> {
        Vec::new()
    }
}

/// Callback invoked (after the broker's topic lock is released)
/// whenever a message lands in a subscription's queue.
pub(crate) type WakeFn = Arc<dyn Fn() + Send + Sync>;

/// Counter of messages dropped from a bounded subscription queue.
type LagCounter = Arc<std::sync::atomic::AtomicU64>;

/// The registered waker of one subscription, shared between the
/// subscriber-facing [`Subscription`] and the broker-side
/// [`SubscriberHandle`].
///
/// `armed` shadows `Some`-ness of the slot so the publish hot path can
/// skip waker collection entirely for the (common) subscribers that
/// never registered one — blocking consumers like the status collector,
/// and every subscription of the legacy backend.
#[derive(Default)]
pub(crate) struct WakerSlot {
    armed: std::sync::atomic::AtomicBool,
    slot: Mutex<Option<WakeFn>>,
}

impl WakerSlot {
    fn armed(&self) -> bool {
        self.armed.load(std::sync::atomic::Ordering::Acquire)
    }

    fn wake(&self) {
        // Clone out of the lock so a waker may call back into the
        // subscription (e.g. schedule work that drains it) freely.
        let waker = self.slot.lock().clone();
        if let Some(wake) = waker {
            wake();
        }
    }
}

/// Broker-side endpoint of a subscription: the delivery channel plus the
/// wakeup hook. Brokers hold one per subscriber, call
/// [`SubscriberHandle::deliver`] on publish while holding their topic
/// lock (ordering), then fire the collected wakers *after* releasing it
/// (so a waker may itself publish without deadlocking) — making delivery
/// push-based end to end: no consumer ever needs to poll.
///
/// Public because it is also the bridge API for out-of-process broker
/// frontends: `ginflow-net`'s `RemoteBroker` feeds EVENT frames arriving
/// over TCP into a local [`Subscription`] through a handle obtained from
/// [`subscription_pair`].
pub struct SubscriberHandle {
    tx: Sender<Message>,
    /// Clone of the subscriber's receiving end, used to evict the oldest
    /// message when a bounded queue is full.
    rx: Receiver<Message>,
    waker: Arc<WakerSlot>,
    /// `None` = unbounded (the persistent broker, where the log itself
    /// is the backstop); `Some(cap)` = drop-oldest beyond `cap`.
    capacity: Option<usize>,
    lagged: LagCounter,
    /// Set by [`Subscription`]'s `Drop`. The handle holds a receiver
    /// clone (for drop-oldest eviction), so channel disconnection can no
    /// longer signal a gone subscriber — this flag does.
    dropped: Arc<std::sync::atomic::AtomicBool>,
}

impl SubscriberHandle {
    /// Enqueue a message. Returns false when the subscriber is gone (the
    /// broker prunes the handle). Does not wake — the broker wakes via
    /// [`SubscriberHandle::waker`] once its topic lock is released; a
    /// bridge that delivers outside a topic lock calls
    /// [`SubscriberHandle::wake`] itself.
    ///
    /// On a bounded queue, delivery beyond capacity evicts the *oldest*
    /// queued message and bumps the subscription's
    /// [`Subscription::lagged`] counter — a stalled consumer loses the
    /// head of its backlog rather than growing it without limit.
    pub fn deliver(&self, message: Message) -> bool {
        if self.dropped.load(std::sync::atomic::Ordering::Acquire) {
            return false;
        }
        if let Some(cap) = self.capacity {
            while self.tx.len() >= cap.max(1) {
                if self.rx.try_recv().is_err() {
                    break;
                }
                self.lagged
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        self.tx.send(message).is_ok()
    }

    /// Fire the subscriber's waker, if one is registered. Bridges that
    /// deliver outside any broker lock pair this with
    /// [`SubscriberHandle::deliver`].
    pub fn wake(&self) {
        if self.waker.armed() {
            self.waker.wake();
        }
    }

    /// The subscriber's waker, for post-delivery wakeups — `None` while
    /// no waker is registered, so publishes skip the whole wake pass for
    /// blocking consumers.
    pub(crate) fn waker(&self) -> Option<Arc<WakerSlot>> {
        self.waker.armed().then(|| self.waker.clone())
    }
}

/// Fire a batch of wakers collected during a locked delivery pass.
pub(crate) fn wake_all(wakers: Vec<Arc<WakerSlot>>) {
    for waker in wakers {
        waker.wake();
    }
}

/// FNV-1a — deterministic, dependency-free hashing (partition routing
/// and topic-shard selection).
pub(crate) fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c9dc5;
    for &b in bytes {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x01000193);
    }
    hash
}

/// Number of lock shards the in-process brokers split their topic maps
/// into. Publishes to different topics hash to different shards, so
/// concurrent runs (distinct run-scoped namespaces) and concurrent
/// agents (distinct inbox topics) stop serialising on one global mutex.
/// Power of two so the modulo is a mask.
pub(crate) const TOPIC_SHARDS: usize = 16;

/// Shard count, honouring the `GINFLOW_MQ_SINGLE_SHARD` debug knob
/// (set to any value to collapse the map back to one global lock — the
/// A/B lever for benchmarking what sharding buys in isolation).
fn shard_count() -> usize {
    static N: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *N.get_or_init(|| {
        if std::env::var_os("GINFLOW_MQ_SINGLE_SHARD").is_some() {
            1
        } else {
            TOPIC_SHARDS
        }
    })
}

/// A topic map split into [`TOPIC_SHARDS`] independently locked shards,
/// keyed by FNV-1a of the topic name. All broker operations address one
/// topic, so no operation ever needs more than one shard lock — there
/// is no lock-ordering hazard and no global pause.
pub(crate) struct TopicShards<S> {
    shards: Box<[Mutex<std::collections::HashMap<String, S>>]>,
}

impl<S> Default for TopicShards<S> {
    fn default() -> Self {
        TopicShards {
            shards: (0..shard_count())
                .map(|_| Mutex::new(std::collections::HashMap::new()))
                .collect(),
        }
    }
}

impl<S> TopicShards<S> {
    /// The shard holding `topic`.
    pub fn shard(&self, topic: &str) -> &Mutex<std::collections::HashMap<String, S>> {
        &self.shards[fnv1a(topic.as_bytes()) as usize % self.shards.len()]
    }

    /// Lock `topic`'s shard and look the topic up.
    pub fn with<R>(&self, topic: &str, f: impl FnOnce(Option<&S>) -> R) -> R {
        f(self.shard(topic).lock().get(topic))
    }

    /// Remove `topic` from its shard, returning its state if present.
    pub fn remove(&self, topic: &str) -> Option<S> {
        self.shard(topic).lock().remove(topic)
    }

    /// Every topic name, shard by shard (no cross-shard snapshot —
    /// topics created or deleted concurrently may or may not appear).
    pub fn names(&self) -> Vec<String> {
        self.shards
            .iter()
            .flat_map(|s| s.lock().keys().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Visit every topic mutably, one shard lock at a time.
    pub fn for_each_mut(&self, mut f: impl FnMut(&str, &mut S)) {
        for shard in self.shards.iter() {
            for (name, state) in shard.lock().iter_mut() {
                f(name, state);
            }
        }
    }
}

/// Create a connected broker-side / subscriber-side endpoint pair with
/// an unbounded queue. The broker (or network bridge) keeps the
/// [`SubscriberHandle`] and delivers into it; the consumer receives
/// through the [`Subscription`].
pub fn subscription_pair() -> (SubscriberHandle, Subscription) {
    bounded_subscription_pair(None)
}

/// [`subscription_pair`] with an optional queue bound: beyond
/// `capacity`, delivery evicts the oldest queued message (counted by
/// [`Subscription::lagged`]) instead of growing the queue.
pub fn bounded_subscription_pair(capacity: Option<usize>) -> (SubscriberHandle, Subscription) {
    let (tx, rx) = unbounded();
    let waker = Arc::new(WakerSlot::default());
    let lagged: LagCounter = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let dropped = Arc::new(std::sync::atomic::AtomicBool::new(false));
    (
        SubscriberHandle {
            tx,
            rx: rx.clone(),
            waker: waker.clone(),
            capacity,
            lagged: lagged.clone(),
            dropped: dropped.clone(),
        },
        Subscription {
            rx,
            waker,
            lagged,
            dropped,
        },
    )
}

/// A live subscription: a stream of [`Message`]s.
pub struct Subscription {
    pub(crate) rx: Receiver<Message>,
    pub(crate) waker: Arc<WakerSlot>,
    lagged: LagCounter,
    dropped: Arc<std::sync::atomic::AtomicBool>,
}

impl Drop for Subscription {
    fn drop(&mut self) {
        // Future deliveries fail, so brokers prune the handle.
        self.dropped
            .store(true, std::sync::atomic::Ordering::Release);
        // The broker-side handle keeps a receiver clone (for
        // drop-oldest eviction), so the channel outlives us — drain the
        // backlog now rather than holding it until the next publish on
        // this topic finally prunes the handle.
        while self.rx.try_recv().is_ok() {}
    }
}

impl Subscription {
    /// Register a wakeup callback fired on every delivery. If messages
    /// are already queued (e.g. a replayed history) the callback fires
    /// immediately, so no edge is ever lost between subscribing and
    /// registering.
    ///
    /// This is what makes event-driven consumers possible: instead of
    /// polling [`Subscription::try_recv`] on a timer, a scheduler parks
    /// the consumer and lets the broker's publish path reschedule it.
    pub fn set_waker(&self, wake: impl Fn() + Send + Sync + 'static) {
        *self.waker.slot.lock() = Some(Arc::new(wake));
        self.waker
            .armed
            .store(true, std::sync::atomic::Ordering::Release);
        if !self.rx.is_empty() {
            self.waker.wake();
        }
    }

    /// Remove the registered waker (e.g. when the consumer dies).
    pub fn clear_waker(&self) {
        self.waker
            .armed
            .store(false, std::sync::atomic::Ordering::Release);
        *self.waker.slot.lock() = None;
    }
    /// Block until the next message (or the broker goes away).
    pub fn recv(&self) -> Result<Message, MqError> {
        self.rx.recv().map_err(|_| MqError::Disconnected)
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Result<Option<Message>, MqError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(MqError::Disconnected),
        }
    }

    /// Wait up to `timeout` for the next message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, MqError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(MqError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(MqError::Disconnected),
        }
    }

    /// Number of already-delivered messages waiting in the subscription.
    pub fn backlog(&self) -> usize {
        self.rx.len()
    }

    /// How many messages this subscription has lost to its queue bound
    /// (always 0 on unbounded subscriptions). A non-zero value means the
    /// consumer stalled long enough for the broker's drop-oldest policy
    /// to kick in — on the transient (at-most-once) profile that is
    /// defined behaviour, not an error.
    pub fn lagged(&self) -> u64 {
        self.lagged.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// A detached reader of this subscription's [`Subscription::lagged`]
    /// counter, usable after the subscription itself moved into a
    /// consumer thread — how a run aggregates slow-subscriber drops
    /// across all its subscriptions for its report.
    pub fn lag_probe(&self) -> LagProbe {
        LagProbe(self.lagged.clone())
    }
}

/// Shareable view of one subscription's lag counter (messages dropped by
/// the drop-oldest bound); see [`Subscription::lag_probe`].
#[derive(Clone)]
pub struct LagProbe(LagCounter);

impl LagProbe {
    /// The current drop count.
    pub fn get(&self) -> u64 {
        self.0.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Broker, LogBroker, SubscribeMode, TransientBroker};
    use bytes::Bytes;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn payload() -> Bytes {
        Bytes::from_static(b"m")
    }

    fn brokers() -> Vec<Arc<dyn Broker>> {
        vec![Arc::new(TransientBroker::new()), Arc::new(LogBroker::new())]
    }

    #[test]
    fn waker_fires_on_every_publish() {
        for broker in brokers() {
            let sub = broker.subscribe("t", SubscribeMode::Latest).unwrap();
            let fired = Arc::new(AtomicUsize::new(0));
            let counter = fired.clone();
            sub.set_waker(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(fired.load(Ordering::SeqCst), 0, "no backlog, no wake");
            for _ in 0..3 {
                broker.publish("t", None, payload()).unwrap();
            }
            assert_eq!(fired.load(Ordering::SeqCst), 3);
            assert_eq!(sub.backlog(), 3);
        }
    }

    #[test]
    fn waker_fires_immediately_on_existing_backlog() {
        // The recovery path: a replayed subscription has history queued
        // before any waker exists; registration must not lose the edge.
        let broker = LogBroker::new();
        broker.publish("t", None, payload()).unwrap();
        broker.publish("t", None, payload()).unwrap();
        let sub = broker.subscribe("t", SubscribeMode::Beginning).unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = fired.clone();
        sub.set_waker(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1, "backlog wakes at once");
    }

    #[test]
    fn cleared_waker_stays_silent() {
        for broker in brokers() {
            let sub = broker.subscribe("t", SubscribeMode::Latest).unwrap();
            let fired = Arc::new(AtomicUsize::new(0));
            let counter = fired.clone();
            sub.set_waker(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
            sub.clear_waker();
            broker.publish("t", None, payload()).unwrap();
            assert_eq!(fired.load(Ordering::SeqCst), 0);
            assert_eq!(sub.backlog(), 1, "delivery itself is unaffected");
        }
    }

    #[test]
    fn waker_may_publish_without_deadlocking() {
        // Wakers run after the topic lock is released, so a waker that
        // itself publishes (agents answering messages inline) must work.
        for broker in brokers() {
            let sub = broker.subscribe("in", SubscribeMode::Latest).unwrap();
            let out = broker.subscribe("out", SubscribeMode::Latest).unwrap();
            let b = broker.clone();
            sub.set_waker(move || {
                b.publish("out", None, payload()).unwrap();
            });
            broker.publish("in", None, payload()).unwrap();
            assert_eq!(out.backlog(), 1);
        }
    }

    #[test]
    fn waker_of_a_dropped_subscription_is_pruned() {
        for broker in brokers() {
            let sub = broker.subscribe("t", SubscribeMode::Latest).unwrap();
            let fired = Arc::new(AtomicUsize::new(0));
            let counter = fired.clone();
            sub.set_waker(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
            drop(sub);
            broker.publish("t", None, payload()).unwrap();
            broker.publish("t", None, payload()).unwrap();
            assert!(
                fired.load(Ordering::SeqCst) <= 1,
                "at most the pruning publish may observe the stale handle"
            );
        }
    }
}
