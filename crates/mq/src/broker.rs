//! The [`Broker`] abstraction both middleware profiles implement.

use crate::error::MqError;
use crate::message::Message;
use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use std::time::Duration;

/// Where a subscription starts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubscribeMode {
    /// Only messages published after the subscription (both brokers).
    Latest,
    /// All retained messages, then live (persistent broker only).
    Beginning,
    /// Retained messages from the given offset (single-partition topics),
    /// then live (persistent broker only).
    FromOffset(u64),
}

/// Acknowledgement of a publish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Receipt {
    /// Partition the message was routed to.
    pub partition: u32,
    /// Offset assigned within that partition.
    pub offset: u64,
}

/// The middleware interface: topic-based pub/sub with optional
/// persistence and replay.
pub trait Broker: Send + Sync {
    /// Publish `payload` to `topic`; the optional `key` pins the partition
    /// on partitioned brokers.
    fn publish(&self, topic: &str, key: Option<Bytes>, payload: Bytes)
        -> Result<Receipt, MqError>;

    /// Subscribe to a topic.
    fn subscribe(&self, topic: &str, mode: SubscribeMode) -> Result<Subscription, MqError>;

    /// Read retained messages without subscribing (replay). Only the
    /// persistent broker supports this.
    fn fetch(
        &self,
        topic: &str,
        partition: u32,
        from_offset: u64,
        max: usize,
    ) -> Result<Vec<Message>, MqError>;

    /// Does the broker retain messages (enabling replay / recovery)?
    fn persistent(&self) -> bool;

    /// Number of partitions of `topic` (1 if it does not exist yet).
    fn partitions(&self, topic: &str) -> u32;

    /// Total retained messages in `topic` across partitions (0 on
    /// non-persistent brokers) — used by recovery to bound replay.
    fn retained(&self, topic: &str) -> u64;
}

/// A live subscription: a stream of [`Message`]s.
pub struct Subscription {
    pub(crate) rx: Receiver<Message>,
}

impl Subscription {
    /// Block until the next message (or the broker goes away).
    pub fn recv(&self) -> Result<Message, MqError> {
        self.rx.recv().map_err(|_| MqError::Disconnected)
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Result<Option<Message>, MqError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(MqError::Disconnected),
        }
    }

    /// Wait up to `timeout` for the next message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, MqError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(MqError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(MqError::Disconnected),
        }
    }

    /// Number of already-delivered messages waiting in the subscription.
    pub fn backlog(&self) -> usize {
        self.rx.len()
    }
}
