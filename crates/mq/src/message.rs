//! Messages flowing through the brokers.

use bytes::Bytes;
use std::fmt;
use std::sync::Arc;

/// One delivered message.
///
/// Cloning is cheap by construction — fan-out to N subscribers clones
/// three reference counts, never the bytes: the topic is a shared
/// `Arc<str>` (brokers keep one per topic and hand out clones), and key
/// and payload are [`Bytes`].
#[derive(Clone, PartialEq, Eq)]
pub struct Message {
    /// Topic the message was published to.
    pub topic: Arc<str>,
    /// Partition within the topic (always 0 on the transient broker).
    pub partition: u32,
    /// Offset within the partition (a per-topic sequence number on the
    /// transient broker — informational only there, stable on the log).
    pub offset: u64,
    /// Optional routing key (hashes to a partition on the log broker).
    pub key: Option<Bytes>,
    /// Payload bytes.
    pub payload: Bytes,
}

impl Message {
    /// Payload as UTF-8 (diagnostics).
    pub fn payload_str(&self) -> std::borrow::Cow<'_, str> {
        String::from_utf8_lossy(&self.payload)
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Message({}/{}@{} {} bytes)",
            self.topic,
            self.partition,
            self.offset,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_and_str() {
        let m = Message {
            topic: "sa.T1".into(),
            partition: 0,
            offset: 7,
            key: None,
            payload: Bytes::from_static(b"hello"),
        };
        assert_eq!(m.payload_str(), "hello");
        assert_eq!(format!("{m:?}"), "Message(sa.T1/0@7 5 bytes)");
    }
}
