//! The ActiveMQ-like transient broker: fast topic pub/sub, at-most-once,
//! no retention.
//!
//! Subscriber queues are **bounded** (default
//! [`DEFAULT_QUEUE_CAPACITY`]): a consumer that stalls while publishers
//! keep going loses the *oldest* queued messages instead of growing
//! memory without limit. Dropped counts are visible through
//! [`Subscription::lagged`]. This matches the profile's at-most-once
//! contract — a transient JMS topic makes no delivery promise to a slow
//! consumer either; the persistent [`crate::LogBroker`] is the profile
//! for consumers that must see everything.

use crate::broker::{
    bounded_subscription_pair, wake_all, Broker, Receipt, SubscribeMode, SubscriberHandle,
    Subscription, TopicShards,
};
use crate::error::MqError;
use crate::message::Message;
use bytes::Bytes;
use std::sync::Arc;

struct TopicState {
    /// The shared topic name every delivered [`Message`] clones — one
    /// allocation per topic lifetime, not one per publish.
    name: Arc<str>,
    /// Per-topic sequence number (informational offset).
    seq: u64,
    /// Live subscriber endpoints; dead ones are pruned on publish.
    subscribers: Vec<SubscriberHandle>,
}

impl TopicState {
    fn new(topic: &str) -> Self {
        TopicState {
            name: Arc::from(topic),
            seq: 0,
            subscribers: Vec::new(),
        }
    }
}

/// Default bound of one subscriber's delivery queue.
pub const DEFAULT_QUEUE_CAPACITY: usize = 8192;

/// Transient in-memory broker. Messages published to a topic with no
/// subscriber are dropped — at-most-once, like a non-persistent JMS
/// topic — and a subscriber whose queue exceeds its bound loses the
/// oldest entries (see the module docs). Like the log broker, the topic
/// map is split into lock shards keyed by topic hash so concurrent
/// publishers to distinct topics never serialise on one mutex.
pub struct TransientBroker {
    topics: TopicShards<TopicState>,
    queue_capacity: usize,
}

impl Default for TransientBroker {
    fn default() -> Self {
        TransientBroker::new()
    }
}

impl TransientBroker {
    /// New empty broker with the default subscriber-queue bound.
    pub fn new() -> Self {
        TransientBroker::with_queue_capacity(DEFAULT_QUEUE_CAPACITY)
    }

    /// New empty broker whose subscriber queues hold at most `capacity`
    /// messages (at least 1); beyond that, delivery drops the oldest.
    pub fn with_queue_capacity(capacity: usize) -> Self {
        TransientBroker {
            topics: TopicShards::default(),
            queue_capacity: capacity.max(1),
        }
    }
}

impl Broker for TransientBroker {
    fn publish(&self, topic: &str, key: Option<Bytes>, payload: Bytes) -> Result<Receipt, MqError> {
        let (wakers, offset) = {
            let mut topics = self.topics.shard(topic).lock();
            let state = topics
                .entry(topic.to_owned())
                .or_insert_with(|| TopicState::new(topic));
            let offset = state.seq;
            state.seq += 1;
            let message = Message {
                topic: state.name.clone(),
                partition: 0,
                offset,
                key,
                payload,
            };
            state.subscribers.retain(|sub| sub.deliver(message.clone()));
            let wakers = state.subscribers.iter().filter_map(|s| s.waker()).collect();
            (wakers, offset)
        };
        // Wake outside the topic lock: wakers may publish in turn.
        wake_all(wakers);
        Ok(Receipt {
            partition: 0,
            offset,
        })
    }

    fn subscribe(&self, topic: &str, mode: SubscribeMode) -> Result<Subscription, MqError> {
        match mode {
            SubscribeMode::Latest => {}
            SubscribeMode::Beginning | SubscribeMode::FromOffset(_) => {
                return Err(MqError::NotPersistent {
                    operation: "subscribe-from-history",
                })
            }
        }
        let (handle, subscription) = bounded_subscription_pair(Some(self.queue_capacity));
        self.topics
            .shard(topic)
            .lock()
            .entry(topic.to_owned())
            .or_insert_with(|| TopicState::new(topic))
            .subscribers
            .push(handle);
        Ok(subscription)
    }

    fn fetch(
        &self,
        _topic: &str,
        _partition: u32,
        _from_offset: u64,
        _max: usize,
    ) -> Result<Vec<Message>, MqError> {
        Err(MqError::NotPersistent { operation: "fetch" })
    }

    fn persistent(&self) -> bool {
        false
    }

    fn partitions(&self, _topic: &str) -> u32 {
        1
    }

    fn retained(&self, _topic: &str) -> u64 {
        0
    }

    fn delete_topic(&self, topic: &str) -> bool {
        self.topics.remove(topic).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn pub_sub_delivers_in_order() {
        let b = TransientBroker::new();
        let sub = b.subscribe("t", SubscribeMode::Latest).unwrap();
        for i in 0..5 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        for i in 0..5 {
            let m = sub.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(m.payload_str(), format!("m{i}"));
            assert_eq!(m.offset, i);
        }
        assert_eq!(sub.try_recv().unwrap(), None);
    }

    #[test]
    fn messages_without_subscribers_are_dropped() {
        let b = TransientBroker::new();
        b.publish("t", None, payload("lost")).unwrap();
        let sub = b.subscribe("t", SubscribeMode::Latest).unwrap();
        b.publish("t", None, payload("seen")).unwrap();
        let m = sub.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(m.payload_str(), "seen");
        assert_eq!(sub.try_recv().unwrap(), None, "history is gone");
    }

    #[test]
    fn fanout_to_multiple_subscribers() {
        let b = TransientBroker::new();
        let s1 = b.subscribe("t", SubscribeMode::Latest).unwrap();
        let s2 = b.subscribe("t", SubscribeMode::Latest).unwrap();
        b.publish("t", None, payload("x")).unwrap();
        assert_eq!(s1.recv().unwrap().payload_str(), "x");
        assert_eq!(s2.recv().unwrap().payload_str(), "x");
    }

    #[test]
    fn dead_subscribers_are_pruned() {
        let b = TransientBroker::new();
        let s1 = b.subscribe("t", SubscribeMode::Latest).unwrap();
        drop(s1);
        // Publishing should not error and should prune the dead channel.
        b.publish("t", None, payload("x")).unwrap();
        let s2 = b.subscribe("t", SubscribeMode::Latest).unwrap();
        b.publish("t", None, payload("y")).unwrap();
        assert_eq!(s2.recv().unwrap().payload_str(), "y");
    }

    #[test]
    fn replay_modes_rejected() {
        let b = TransientBroker::new();
        assert!(matches!(
            b.subscribe("t", SubscribeMode::Beginning),
            Err(MqError::NotPersistent { .. })
        ));
        assert!(matches!(
            b.fetch("t", 0, 0, 10),
            Err(MqError::NotPersistent { .. })
        ));
        assert!(!b.persistent());
        assert_eq!(b.retained("t"), 0);
    }

    #[test]
    fn stalled_subscriber_drops_oldest_within_bound() {
        let b = TransientBroker::with_queue_capacity(4);
        let sub = b.subscribe("t", SubscribeMode::Latest).unwrap();
        // Nobody drains: 10 publishes into a queue of 4.
        for i in 0..10 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        assert_eq!(sub.backlog(), 4, "queue must stay within its bound");
        assert_eq!(sub.lagged(), 6, "every drop is counted");
        // The survivors are the *newest* four, still in order.
        for i in 6..10 {
            assert_eq!(
                sub.recv_timeout(Duration::from_secs(1))
                    .unwrap()
                    .payload_str(),
                format!("m{i}")
            );
        }
        assert_eq!(sub.try_recv().unwrap(), None);
    }

    #[test]
    fn draining_subscriber_never_lags() {
        let b = TransientBroker::with_queue_capacity(2);
        let sub = b.subscribe("t", SubscribeMode::Latest).unwrap();
        for i in 0..100 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
            assert_eq!(sub.recv().unwrap().payload_str(), format!("m{i}"));
        }
        assert_eq!(sub.lagged(), 0);
    }

    #[test]
    fn bounds_are_per_subscription() {
        let b = TransientBroker::with_queue_capacity(3);
        let stalled = b.subscribe("t", SubscribeMode::Latest).unwrap();
        let draining = b.subscribe("t", SubscribeMode::Latest).unwrap();
        for i in 0..8 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
            assert_eq!(draining.recv().unwrap().payload_str(), format!("m{i}"));
        }
        assert_eq!(draining.lagged(), 0, "the live consumer saw everything");
        assert_eq!(stalled.backlog(), 3);
        assert_eq!(stalled.lagged(), 5);
    }

    #[test]
    fn delete_topic_disconnects_subscribers() {
        let b = TransientBroker::new();
        let sub = b.subscribe("t", SubscribeMode::Latest).unwrap();
        assert!(b.delete_topic("t"));
        assert!(matches!(sub.recv(), Err(MqError::Disconnected)));
        assert!(!b.delete_topic("t"));
    }

    #[test]
    fn topics_are_isolated() {
        let b = TransientBroker::new();
        let sa = b.subscribe("a", SubscribeMode::Latest).unwrap();
        let sb = b.subscribe("b", SubscribeMode::Latest).unwrap();
        b.publish("a", None, payload("for-a")).unwrap();
        assert_eq!(sa.recv().unwrap().payload_str(), "for-a");
        assert_eq!(sb.try_recv().unwrap(), None);
    }
}
