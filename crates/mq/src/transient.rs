//! The ActiveMQ-like transient broker: fast topic pub/sub, at-most-once,
//! no retention.

use crate::broker::{
    subscription_pair, wake_all, Broker, Receipt, SubscribeMode, SubscriberHandle, Subscription,
};
use crate::error::MqError;
use crate::message::Message;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::HashMap;

#[derive(Default)]
struct TopicState {
    /// Per-topic sequence number (informational offset).
    seq: u64,
    /// Live subscriber endpoints; dead ones are pruned on publish.
    subscribers: Vec<SubscriberHandle>,
}

/// Transient in-memory broker. Messages published to a topic with no
/// subscriber are dropped — at-most-once, like a non-persistent JMS topic.
#[derive(Default)]
pub struct TransientBroker {
    topics: Mutex<HashMap<String, TopicState>>,
}

impl TransientBroker {
    /// New empty broker.
    pub fn new() -> Self {
        TransientBroker::default()
    }
}

impl Broker for TransientBroker {
    fn publish(&self, topic: &str, key: Option<Bytes>, payload: Bytes) -> Result<Receipt, MqError> {
        let (wakers, offset) = {
            let mut topics = self.topics.lock();
            let state = topics.entry(topic.to_owned()).or_default();
            let offset = state.seq;
            state.seq += 1;
            let message = Message {
                topic: topic.to_owned(),
                partition: 0,
                offset,
                key,
                payload,
            };
            state.subscribers.retain(|sub| sub.deliver(message.clone()));
            let wakers = state.subscribers.iter().filter_map(|s| s.waker()).collect();
            (wakers, offset)
        };
        // Wake outside the topic lock: wakers may publish in turn.
        wake_all(wakers);
        Ok(Receipt {
            partition: 0,
            offset,
        })
    }

    fn subscribe(&self, topic: &str, mode: SubscribeMode) -> Result<Subscription, MqError> {
        match mode {
            SubscribeMode::Latest => {}
            SubscribeMode::Beginning | SubscribeMode::FromOffset(_) => {
                return Err(MqError::NotPersistent {
                    operation: "subscribe-from-history",
                })
            }
        }
        let (handle, subscription) = subscription_pair();
        self.topics
            .lock()
            .entry(topic.to_owned())
            .or_default()
            .subscribers
            .push(handle);
        Ok(subscription)
    }

    fn fetch(
        &self,
        _topic: &str,
        _partition: u32,
        _from_offset: u64,
        _max: usize,
    ) -> Result<Vec<Message>, MqError> {
        Err(MqError::NotPersistent { operation: "fetch" })
    }

    fn persistent(&self) -> bool {
        false
    }

    fn partitions(&self, _topic: &str) -> u32 {
        1
    }

    fn retained(&self, _topic: &str) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn payload(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn pub_sub_delivers_in_order() {
        let b = TransientBroker::new();
        let sub = b.subscribe("t", SubscribeMode::Latest).unwrap();
        for i in 0..5 {
            b.publish("t", None, payload(&format!("m{i}"))).unwrap();
        }
        for i in 0..5 {
            let m = sub.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(m.payload_str(), format!("m{i}"));
            assert_eq!(m.offset, i);
        }
        assert_eq!(sub.try_recv().unwrap(), None);
    }

    #[test]
    fn messages_without_subscribers_are_dropped() {
        let b = TransientBroker::new();
        b.publish("t", None, payload("lost")).unwrap();
        let sub = b.subscribe("t", SubscribeMode::Latest).unwrap();
        b.publish("t", None, payload("seen")).unwrap();
        let m = sub.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(m.payload_str(), "seen");
        assert_eq!(sub.try_recv().unwrap(), None, "history is gone");
    }

    #[test]
    fn fanout_to_multiple_subscribers() {
        let b = TransientBroker::new();
        let s1 = b.subscribe("t", SubscribeMode::Latest).unwrap();
        let s2 = b.subscribe("t", SubscribeMode::Latest).unwrap();
        b.publish("t", None, payload("x")).unwrap();
        assert_eq!(s1.recv().unwrap().payload_str(), "x");
        assert_eq!(s2.recv().unwrap().payload_str(), "x");
    }

    #[test]
    fn dead_subscribers_are_pruned() {
        let b = TransientBroker::new();
        let s1 = b.subscribe("t", SubscribeMode::Latest).unwrap();
        drop(s1);
        // Publishing should not error and should prune the dead channel.
        b.publish("t", None, payload("x")).unwrap();
        let s2 = b.subscribe("t", SubscribeMode::Latest).unwrap();
        b.publish("t", None, payload("y")).unwrap();
        assert_eq!(s2.recv().unwrap().payload_str(), "y");
    }

    #[test]
    fn replay_modes_rejected() {
        let b = TransientBroker::new();
        assert!(matches!(
            b.subscribe("t", SubscribeMode::Beginning),
            Err(MqError::NotPersistent { .. })
        ));
        assert!(matches!(
            b.fetch("t", 0, 0, 10),
            Err(MqError::NotPersistent { .. })
        ));
        assert!(!b.persistent());
        assert_eq!(b.retained("t"), 0);
    }

    #[test]
    fn topics_are_isolated() {
        let b = TransientBroker::new();
        let sa = b.subscribe("a", SubscribeMode::Latest).unwrap();
        let sb = b.subscribe("b", SubscribeMode::Latest).unwrap();
        b.publish("a", None, payload("for-a")).unwrap();
        assert_eq!(sa.recv().unwrap().payload_str(), "for-a");
        assert_eq!(sb.try_recv().unwrap(), None);
    }
}
