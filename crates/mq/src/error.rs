//! Broker errors.

use std::fmt;

/// Everything the brokers can refuse to do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MqError {
    /// The requested subscribe/fetch mode needs persistence the broker
    /// lacks (e.g. replay on the transient broker).
    NotPersistent {
        /// The attempted operation.
        operation: &'static str,
    },
    /// Fetch/publish addressed a partition the topic does not have.
    UnknownPartition {
        /// Topic name.
        topic: String,
        /// The requested partition.
        partition: u32,
    },
    /// The subscription's channel was disconnected (broker dropped).
    Disconnected,
    /// Timed out waiting for a message.
    Timeout,
    /// A remote broker refused the request; the message is the server's
    /// rendering of its own error.
    Remote {
        /// Server-side error text.
        message: String,
    },
    /// The segment store refused or failed an operation (foreign or
    /// incompatible data dir, unrecoverable corruption, I/O failure).
    Store {
        /// What went wrong, with enough context to act on.
        message: String,
    },
    /// `flush()` gave up waiting for the pipeline to drain: the
    /// connection stayed severed (or the server stalled) past the
    /// flush timeout, with acknowledgements still outstanding. The
    /// publishes are not necessarily lost — a later flush after the
    /// connection heals reports the final ledger.
    FlushTimeout {
        /// Publishes still awaiting acknowledgement at expiry.
        inflight: u64,
        /// How long the flush waited, in milliseconds.
        waited_ms: u64,
    },
    /// A run id or task name was rejected at the topic boundary (empty,
    /// or containing a path separator / whitespace) — publishing under
    /// it would silently collide or split namespaces.
    InvalidTopic {
        /// What kind of segment was rejected ("run id", "task name").
        what: &'static str,
        /// The offending value.
        name: String,
        /// Why it was rejected.
        reason: &'static str,
    },
}

impl fmt::Display for MqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MqError::NotPersistent { operation } => {
                write!(
                    f,
                    "operation {operation:?} requires a persistent broker (use the log broker)"
                )
            }
            MqError::UnknownPartition { topic, partition } => {
                write!(f, "topic {topic:?} has no partition {partition}")
            }
            MqError::Disconnected => f.write_str("broker disconnected"),
            MqError::Timeout => f.write_str("timed out waiting for a message"),
            MqError::Remote { message } => write!(f, "remote broker: {message}"),
            MqError::Store { message } => write!(f, "segment store: {message}"),
            MqError::FlushTimeout {
                inflight,
                waited_ms,
            } => {
                write!(
                    f,
                    "flush timed out after {waited_ms} ms with {inflight} \
                     publish(es) still unacknowledged"
                )
            }
            MqError::InvalidTopic { what, name, reason } => {
                write!(f, "invalid {what} {name:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for MqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(MqError::NotPersistent { operation: "fetch" }
            .to_string()
            .contains("fetch"));
        assert!(MqError::UnknownPartition {
            topic: "t".into(),
            partition: 3
        }
        .to_string()
        .contains('3'));
        let invalid = MqError::InvalidTopic {
            what: "run id",
            name: "a/b".into(),
            reason: "must not contain '/'",
        }
        .to_string();
        assert!(invalid.contains("run id"), "{invalid}");
        assert!(invalid.contains("a/b"), "{invalid}");
        let flush = MqError::FlushTimeout {
            inflight: 7,
            waited_ms: 1500,
        }
        .to_string();
        assert!(flush.contains("7") && flush.contains("1500"), "{flush}");
        let store = MqError::Store {
            message: "schema version 2, this build supports 1".into(),
        }
        .to_string();
        assert!(store.contains("segment store"), "{store}");
    }
}
