//! Run-scoped topic namespaces.
//!
//! The coordination substrate used to name topics globally (`sa.<task>`,
//! `status`), which welded one broker to one workflow run: a second run
//! against a warm `ginflow broker serve` daemon replayed the first run's
//! retained history. This module introduces the [`RunId`] and the
//! [`TopicNamespace`] derived from it, under which every topic of a run
//! lives:
//!
//! ```text
//! run/<id>/sa.<task>     one agent's inbox
//! run/<id>/status        the run's shared status topic
//! ```
//!
//! Two different run ids on one broker never see each other's messages;
//! N shard processes joining the *same* run id share one namespace.
//! Segments are validated at this boundary ([`RunId::new`],
//! [`TopicNamespace::inbox`]): an empty segment or one containing `/`
//! (or whitespace) would silently collide or split namespaces, so it is
//! rejected with [`MqError::InvalidTopic`] instead.

use crate::error::MqError;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Leading topic-path component of every run-scoped topic.
const RUN_PREFIX: &str = "run/";

/// Final path component of a run's shared status topic.
const STATUS_SEGMENT: &str = "status";

/// Check one topic-path segment (a run id or a task name). Rejects the
/// empty segment and `/` (both would collide or split namespaces) and
/// control characters (which would corrupt listings and logs); interior
/// spaces are fine — task names like `"load data"` stay legal.
pub fn validate_segment(what: &'static str, segment: &str) -> Result<(), MqError> {
    let reason = if segment.is_empty() {
        "must not be empty"
    } else if segment.contains('/') {
        "must not contain '/'"
    } else if segment.chars().any(char::is_control) {
        "must not contain control characters"
    } else {
        return Ok(());
    };
    Err(MqError::InvalidTopic {
        what,
        name: segment.to_owned(),
        reason,
    })
}

/// The identity of one workflow run — the namespace key every one of the
/// run's topics is prefixed with. Validated on construction: see
/// [`validate_segment`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RunId(String);

impl RunId {
    /// A run id from a caller-chosen string (e.g. `ginflow run
    /// --run-id`). Rejects empty segments and `/`-containing strings
    /// with [`MqError::InvalidTopic`] — both would collide or split the
    /// topic namespace silently.
    pub fn new(id: impl Into<String>) -> Result<RunId, MqError> {
        let id = id.into();
        validate_segment("run id", &id)?;
        Ok(RunId(id))
    }

    /// A fresh, effectively unique run id: wall clock and process id
    /// mixed into one hex word, plus the *full* process-local counter
    /// as its own component — so ids from one process can never repeat
    /// (whatever the platform's clock granularity), and collisions
    /// across processes need the same pid in the same nanosecond.
    pub fn generate() -> RunId {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let pid = std::process::id() as u64;
        let count = COUNTER.fetch_add(1, Ordering::Relaxed);
        RunId(format!("r{:x}-{count:x}", nanos ^ (pid << 40)))
    }

    /// The id as a plain string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The topic names of one run: every topic the run's agents publish or
/// subscribe to is derived here, so the naming scheme has exactly one
/// definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopicNamespace {
    run: RunId,
    /// Precomputed `run/<id>/status` (hot path: every status publish).
    status: String,
}

impl TopicNamespace {
    /// The namespace of `run`.
    pub fn new(run: RunId) -> TopicNamespace {
        let status = format!("{RUN_PREFIX}{}/{STATUS_SEGMENT}", run.0);
        TopicNamespace { run, status }
    }

    /// The run this namespace belongs to.
    pub fn run_id(&self) -> &RunId {
        &self.run
    }

    /// The inbox topic of `task`'s agent: `run/<id>/sa.<task>`. The task
    /// name is validated here — the topic boundary — so a name with `/`
    /// or an empty name fails loudly instead of landing in (or creating)
    /// a foreign namespace.
    pub fn inbox(&self, task: &str) -> Result<String, MqError> {
        validate_segment("task name", task)?;
        Ok(format!("{RUN_PREFIX}{}/sa.{task}", self.run.0))
    }

    /// The run's shared status topic: `run/<id>/status`.
    pub fn status(&self) -> &str {
        &self.status
    }
}

/// The run id a topic belongs to, if it is run-scoped (`run/<id>/…`
/// with a non-empty id and a non-empty remainder) — how a standing
/// broker daemon accounts topics to runs without any side channel.
pub fn run_of(topic: &str) -> Option<&str> {
    let rest = topic.strip_prefix(RUN_PREFIX)?;
    let (id, remainder) = rest.split_once('/')?;
    (!id.is_empty() && !remainder.is_empty()).then_some(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_shapes_topics() {
        let ns = TopicNamespace::new(RunId::new("alpha").unwrap());
        assert_eq!(ns.inbox("T1").unwrap(), "run/alpha/sa.T1");
        assert_eq!(ns.status(), "run/alpha/status");
        assert_eq!(ns.run_id().as_str(), "alpha");
    }

    #[test]
    fn distinct_runs_never_share_topics() {
        let a = TopicNamespace::new(RunId::new("a").unwrap());
        let b = TopicNamespace::new(RunId::new("b").unwrap());
        assert_ne!(a.inbox("T1").unwrap(), b.inbox("T1").unwrap());
        assert_ne!(a.status(), b.status());
    }

    #[test]
    fn invalid_segments_are_rejected_with_a_clear_error() {
        for bad in ["", "a/b", "/", "tab\there", "nl\n"] {
            let err = RunId::new(bad).unwrap_err();
            assert!(
                matches!(err, MqError::InvalidTopic { what: "run id", .. }),
                "{bad:?} → {err:?}"
            );
            let ns = TopicNamespace::new(RunId::generate());
            assert!(
                matches!(ns.inbox(bad), Err(MqError::InvalidTopic { .. })),
                "task {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn interior_spaces_stay_legal() {
        // Task names with spaces were always accepted by the workflow
        // builder and worked as topics; run scoping must not break them.
        let ns = TopicNamespace::new(RunId::new("r").unwrap());
        assert_eq!(ns.inbox("load data").unwrap(), "run/r/sa.load data");
    }

    #[test]
    fn slash_rejection_prevents_namespace_forgery() {
        // Without validation, task "x/status" in run "a" would publish
        // to "run/a/sa.x/status" — not a collision — but run id "a/sa.T"
        // would make inbox("x") = "run/a/sa.T/sa.x" and, worse,
        // "b/../a"-style ids could alias. The rule is simply: one
        // segment, no separators.
        assert!(RunId::new("a/status").is_err());
        let ns = TopicNamespace::new(RunId::new("a").unwrap());
        assert!(ns.inbox("x/../y").is_err());
    }

    #[test]
    fn generated_ids_are_unique_and_valid() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = RunId::generate();
            assert!(validate_segment("run id", id.as_str()).is_ok());
            assert!(
                seen.insert(id.as_str().to_owned()),
                "duplicate generated id"
            );
        }
    }

    #[test]
    fn run_of_parses_only_run_scoped_topics() {
        assert_eq!(run_of("run/alpha/sa.T1"), Some("alpha"));
        assert_eq!(run_of("run/alpha/status"), Some("alpha"));
        assert_eq!(run_of("status"), None);
        assert_eq!(run_of("sa.T1"), None);
        assert_eq!(run_of("run/"), None);
        assert_eq!(run_of("run//status"), None);
        assert_eq!(run_of("run/alpha"), None, "no remainder, not run-scoped");
        assert_eq!(run_of("run/alpha/"), None, "empty remainder");
    }

    #[test]
    fn display_roundtrips() {
        let id = RunId::new("alpha").unwrap();
        assert_eq!(id.to_string(), "alpha");
        assert_eq!(RunId::new(id.to_string()).unwrap(), id);
    }
}
