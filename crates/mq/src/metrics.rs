//! Zero-dependency, lock-free metrics registry — the observability
//! substrate every layer of the stack feeds (broker hot path, segment
//! store, network daemon, client pipeline, scheduler).
//!
//! Design constraints, in order:
//!
//! 1. **The hot path pays one relaxed atomic op.** Callers acquire
//!    [`Counter`]/[`Gauge`]/[`Histogram`] handles *once* at setup and
//!    increment through the `Arc` thereafter — no lock, no hash, no
//!    allocation per event. Acquisition itself (registration, family
//!    label lookup) takes a shard lock, but it happens per topic/run,
//!    not per message.
//! 2. **Labelled families shard like the PR-5 topic maps.** A
//!    [`Family`] spreads its label → instrument map over
//!    [`FAMILY_SHARDS`] FNV-picked mutexes so concurrent first-touch
//!    registrations (one per run, one per topic shard) don't convoy.
//! 3. **Disable means free.** [`set_enabled`] flips one process-global
//!    relaxed flag consulted by every write; the bench harness A/Bs
//!    instrumented vs uninstrumented throughput in one process with it
//!    (`GINFLOW_MQ_NO_METRICS=1` presets it off, following the
//!    `GINFLOW_MQ_SINGLE_SHARD` knob convention).
//!
//! Reading happens two ways, both off the same registry: a flat
//! [`Metrics::snapshot`] of `(name, label, value)` rows (what the STATS
//! wire verb ships and `RunReport` embeds), and
//! [`Metrics::render_prometheus`], the text exposition format served by
//! the daemon's `--metrics-addr` endpoint.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Shard count of a [`Family`]'s label map (same spread as the broker's
/// sharded topic maps).
pub const FAMILY_SHARDS: usize = 16;

/// Process-global instrumentation switch. Writes to every counter,
/// gauge and histogram are skipped while this is `false`; the registry
/// structure (names, labels) stays intact so a re-enable resumes from
/// the held values.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn instrumentation writes on or off process-wide. Returns the
/// previous state. The check is one relaxed load on the hot path —
/// cheap enough that the A/B exists to *prove* it, not to recommend
/// running disabled.
pub fn set_enabled(enabled: bool) -> bool {
    ENABLED.swap(enabled, Ordering::Relaxed)
}

/// Is instrumentation currently recording?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing event count. Relaxed atomics throughout:
/// per-counter totals are exact, cross-counter ordering is not promised
/// (a snapshot is a statistical picture, not a consistent cut).
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Count one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that moves both ways (queue depth, window occupancy, open
/// connections). Stored as a `u64`; [`Gauge::sub`] saturates at zero so
/// a racing decrement can never wrap to 2⁶⁴.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge to an absolute value.
    pub fn set(&self, v: u64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Move the gauge up by `n`.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Move the gauge down by `n`, saturating at zero.
    pub fn sub(&self, n: u64) {
        if enabled() {
            let mut cur = self.0.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(n);
                match self
                    .0
                    .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => return,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds of the histogram buckets: powers of two up to 2¹⁶, plus
/// the implicit +Inf bucket. One fixed geometric grid for everything —
/// batch sizes, byte counts, microsecond latencies — keeps
/// [`Histogram::observe`] branch-free (a leading-zeros computation, no
/// per-histogram bound table).
pub const BUCKET_BOUNDS: [u64; 17] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536,
];

/// A fixed-bucket distribution (power-of-two bounds, see
/// [`BUCKET_BOUNDS`]). `observe` is two relaxed adds plus one bucket
/// increment.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        // Bucket i holds values in (BOUNDS[i-1], BOUNDS[i]]; the last
        // slot is +Inf. v=0 and v=1 both land in bucket 0 (bound 1).
        let idx = if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).min(BUCKET_BOUNDS.len())
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Non-cumulative per-bucket counts (last entry is the +Inf
    /// bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// FNV-1a, the workspace's standard cheap string hash.
fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A labelled set of instruments sharing one metric name — e.g.
/// `gf_run_publish_total{run="…"}`. Label → instrument lives in
/// [`FAMILY_SHARDS`] FNV-picked shards; [`Family::with`] is the cold
/// acquisition path (callers cache the returned `Arc`).
pub struct Family<M> {
    label_key: &'static str,
    shards: Vec<Mutex<HashMap<Arc<str>, Arc<M>>>>,
}

impl<M: Default> Family<M> {
    fn new(label_key: &'static str) -> Self {
        Family {
            label_key,
            shards: (0..FAMILY_SHARDS).map(|_| Mutex::default()).collect(),
        }
    }

    /// The label key this family scopes by (`run`, `shard`, …).
    pub fn label_key(&self) -> &'static str {
        self.label_key
    }

    /// The instrument for `label`, created on first touch. Cache the
    /// result — this takes a shard lock.
    pub fn with(&self, label: &str) -> Arc<M> {
        let shard = &self.shards[fnv1a(label) as usize % FAMILY_SHARDS];
        let mut map = shard.lock();
        if let Some(m) = map.get(label) {
            return m.clone();
        }
        let m = Arc::new(M::default());
        map.insert(Arc::from(label), m.clone());
        m
    }

    /// Visit every `(label, instrument)` pair. Lock scope is one shard
    /// at a time; concurrent registration may or may not be seen.
    pub fn for_each(&self, mut f: impl FnMut(&str, &M)) {
        for shard in &self.shards {
            for (label, m) in shard.lock().iter() {
                f(label, m);
            }
        }
    }

    /// Drop every instrument labelled `label` (run GC reclaims its
    /// per-run series so a standing daemon's registry doesn't grow
    /// unbounded).
    pub fn remove(&self, label: &str) {
        self.shards[fnv1a(label) as usize % FAMILY_SHARDS]
            .lock()
            .remove(label);
    }
}

/// What a registry slot holds.
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterFamily(Arc<Family<Counter>>),
    GaugeFamily(Arc<Family<Gauge>>),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) | Instrument::CounterFamily(_) => "counter",
            Instrument::Gauge(_) | Instrument::GaugeFamily(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

struct Slot {
    name: &'static str,
    help: &'static str,
    instrument: Instrument,
}

/// One flat row of a [`Metrics::snapshot`]: `label` is empty for
/// unlabelled metrics; histograms flatten into `…_count`, `…_sum` and
/// cumulative `…_le_<bound>` rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatRow {
    /// Metric (or flattened histogram component) name.
    pub name: String,
    /// Family label value, empty when unlabelled.
    pub label: String,
    /// Current value.
    pub value: u64,
}

/// The metric registry: named slots, each a scalar instrument or a
/// labelled family. Registration is idempotent by name and
/// type-checked — asking for an existing name as a different instrument
/// type panics (a programming error, caught in tests).
#[derive(Default)]
pub struct Metrics {
    slots: Mutex<Vec<Slot>>,
}

/// The process-global registry every subsystem feeds. A daemon process
/// exposes exactly this through STATS and `/metrics`; an embedded
/// engine reads its per-run slice into `RunReport`.
pub fn global() -> &'static Metrics {
    static GLOBAL: OnceLock<Metrics> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        if std::env::var("GINFLOW_MQ_NO_METRICS").is_ok_and(|v| v == "1") {
            set_enabled(false);
        }
        Metrics::default()
    })
}

macro_rules! register {
    ($self:ident, $name:ident, $help:ident, $variant:ident, $make:expr) => {{
        let mut slots = $self.slots.lock();
        for slot in slots.iter() {
            if slot.name == $name {
                match &slot.instrument {
                    Instrument::$variant(m) => return m.clone(),
                    other => panic!(
                        "metric {:?} already registered as a {}",
                        $name,
                        other.type_name()
                    ),
                }
            }
        }
        let m = $make;
        slots.push(Slot {
            name: $name,
            help: $help,
            instrument: Instrument::$variant(m.clone()),
        });
        m
    }};
}

impl Metrics {
    /// A fresh, empty registry (tests; production uses [`global`]).
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Register (or fetch) the counter named `name`.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        register!(self, name, help, Counter, Arc::new(Counter::default()))
    }

    /// Register (or fetch) the gauge named `name`.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        register!(self, name, help, Gauge, Arc::new(Gauge::default()))
    }

    /// Register (or fetch) the histogram named `name`.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        register!(self, name, help, Histogram, Arc::new(Histogram::default()))
    }

    /// Register (or fetch) a counter family labelled by `label_key`.
    pub fn counter_family(
        &self,
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
    ) -> Arc<Family<Counter>> {
        register!(
            self,
            name,
            help,
            CounterFamily,
            Arc::new(Family::new(label_key))
        )
    }

    /// Register (or fetch) a gauge family labelled by `label_key`.
    pub fn gauge_family(
        &self,
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
    ) -> Arc<Family<Gauge>> {
        register!(
            self,
            name,
            help,
            GaugeFamily,
            Arc::new(Family::new(label_key))
        )
    }

    /// Drop every family series labelled `label` across the registry
    /// (called when a run's topics are GC'd).
    pub fn remove_label(&self, label: &str) {
        for slot in self.slots.lock().iter() {
            match &slot.instrument {
                Instrument::CounterFamily(f) => f.remove(label),
                Instrument::GaugeFamily(f) => f.remove(label),
                _ => {}
            }
        }
    }

    /// Flatten the registry into `(name, label, value)` rows, sorted by
    /// `(name, label)` for stable output. This is what the STATS wire
    /// verb ships.
    pub fn snapshot(&self) -> Vec<StatRow> {
        let mut rows = Vec::new();
        for slot in self.slots.lock().iter() {
            match &slot.instrument {
                Instrument::Counter(c) => rows.push(StatRow {
                    name: slot.name.to_owned(),
                    label: String::new(),
                    value: c.get(),
                }),
                Instrument::Gauge(g) => rows.push(StatRow {
                    name: slot.name.to_owned(),
                    label: String::new(),
                    value: g.get(),
                }),
                Instrument::Histogram(h) => {
                    rows.push(StatRow {
                        name: format!("{}_count", slot.name),
                        label: String::new(),
                        value: h.count(),
                    });
                    rows.push(StatRow {
                        name: format!("{}_sum", slot.name),
                        label: String::new(),
                        value: h.sum(),
                    });
                    let mut cumulative = 0;
                    for (i, n) in h.bucket_counts().into_iter().enumerate() {
                        cumulative += n;
                        let bound = BUCKET_BOUNDS
                            .get(i)
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "inf".to_owned());
                        rows.push(StatRow {
                            name: format!("{}_le_{bound}", slot.name),
                            label: String::new(),
                            value: cumulative,
                        });
                    }
                }
                Instrument::CounterFamily(f) => f.for_each(|label, c| {
                    rows.push(StatRow {
                        name: slot.name.to_owned(),
                        label: label.to_owned(),
                        value: c.get(),
                    })
                }),
                Instrument::GaugeFamily(f) => f.for_each(|label, g| {
                    rows.push(StatRow {
                        name: slot.name.to_owned(),
                        label: label.to_owned(),
                        value: g.get(),
                    })
                }),
            }
        }
        rows.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        rows
    }

    /// The per-run slice of the registry: `(name, value)` of every
    /// family series labelled `run`. What `RunReport` carries as the
    /// run's final metrics snapshot.
    pub fn snapshot_run(&self, run: &str) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = Vec::new();
        for slot in self.slots.lock().iter() {
            let value = match &slot.instrument {
                Instrument::CounterFamily(f) if f.label_key() == "run" => f.with(run).get(),
                Instrument::GaugeFamily(f) if f.label_key() == "run" => f.with(run).get(),
                _ => continue,
            };
            rows.push((slot.name.to_owned(), value));
        }
        rows.sort();
        rows
    }

    /// Render the registry in the Prometheus text exposition format
    /// (v0.0.4): `# HELP` / `# TYPE` headers, `name{key="label"} value`
    /// series, histogram `_bucket`/`_sum`/`_count` conventions.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for slot in self.slots.lock().iter() {
            let _ = writeln!(out, "# HELP {} {}", slot.name, slot.help);
            let _ = writeln!(out, "# TYPE {} {}", slot.name, slot.instrument.type_name());
            match &slot.instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(out, "{} {}", slot.name, c.get());
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", slot.name, g.get());
                }
                Instrument::Histogram(h) => {
                    let mut cumulative = 0;
                    for (i, n) in h.bucket_counts().into_iter().enumerate() {
                        cumulative += n;
                        let bound = BUCKET_BOUNDS
                            .get(i)
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "+Inf".to_owned());
                        let _ =
                            writeln!(out, "{}_bucket{{le=\"{bound}\"}} {cumulative}", slot.name);
                    }
                    let _ = writeln!(out, "{}_sum {}", slot.name, h.sum());
                    let _ = writeln!(out, "{}_count {}", slot.name, h.count());
                }
                Instrument::CounterFamily(f) => {
                    let key = f.label_key();
                    let mut series: Vec<(String, u64)> = Vec::new();
                    f.for_each(|label, c| series.push((label.to_owned(), c.get())));
                    series.sort();
                    for (label, value) in series {
                        let _ = writeln!(
                            out,
                            "{}{{{key}=\"{}\"}} {value}",
                            slot.name,
                            escape_label(&label)
                        );
                    }
                }
                Instrument::GaugeFamily(f) => {
                    let key = f.label_key();
                    let mut series: Vec<(String, u64)> = Vec::new();
                    f.for_each(|label, g| series.push((label.to_owned(), g.get())));
                    series.sort();
                    for (label, value) in series {
                        let _ = writeln!(
                            out,
                            "{}{{{key}=\"{}\"}} {value}",
                            slot.name,
                            escape_label(&label)
                        );
                    }
                }
            }
        }
        out
    }
}

/// Escape a label value per the Prometheus text format (backslash,
/// double quote, newline).
fn escape_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_idempotently() {
        let m = Metrics::new();
        let a = m.counter("test_total", "help");
        let b = m.counter("test_total", "help");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same slot behind both handles");
        let g = m.gauge("test_depth", "help");
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauge decrement saturates");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn re_registering_as_a_different_type_panics() {
        let m = Metrics::new();
        m.counter("test_total", "help");
        m.gauge("test_total", "help");
    }

    #[test]
    fn families_shard_and_snapshot_by_label() {
        let m = Metrics::new();
        let fam = m.counter_family("runs_total", "help", "run");
        fam.with("a").add(5);
        fam.with("b").inc();
        fam.with("a").inc(); // same slot on re-acquisition
        let rows = m.snapshot();
        assert_eq!(
            rows,
            vec![
                StatRow {
                    name: "runs_total".into(),
                    label: "a".into(),
                    value: 6
                },
                StatRow {
                    name: "runs_total".into(),
                    label: "b".into(),
                    value: 1
                },
            ]
        );
        assert_eq!(m.snapshot_run("a"), vec![("runs_total".to_owned(), 6)]);
        fam.remove("a");
        assert_eq!(m.snapshot().len(), 1, "removed label leaves the registry");
    }

    #[test]
    fn histogram_buckets_are_power_of_two_cumulative() {
        let m = Metrics::new();
        let h = m.histogram("batch", "help");
        for v in [0, 1, 2, 3, 64, 65, 1_000_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_000_135);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 2, "0 and 1 land in le_1");
        assert_eq!(buckets[1], 1, "2 lands in le_2");
        assert_eq!(buckets[2], 1, "3 lands in le_4");
        assert_eq!(buckets[6], 1, "64 lands in le_64");
        assert_eq!(buckets[7], 1, "65 lands in le_128");
        assert_eq!(*buckets.last().unwrap(), 1, "1e6 lands in +Inf");
        let rows = m.snapshot();
        let le_inf = rows.iter().find(|r| r.name == "batch_le_inf").unwrap();
        assert_eq!(le_inf.value, 7, "cumulative +Inf bucket counts all");
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = Metrics::new();
        let c = m.counter("gated_total", "help");
        let was = set_enabled(false);
        c.add(100);
        set_enabled(was);
        c.inc();
        assert_eq!(c.get(), 1, "writes while disabled are dropped");
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let m = Metrics::new();
        m.counter("c_total", "a counter").inc();
        m.gauge("g_now", "a gauge").set(9);
        m.counter_family("f_total", "a family", "run")
            .with("r\"1\"")
            .inc();
        m.histogram("h_us", "a histogram").observe(3);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE c_total counter"));
        assert!(text.contains("c_total 1"));
        assert!(text.contains("# TYPE g_now gauge"));
        assert!(text.contains("g_now 9"));
        assert!(text.contains("f_total{run=\"r\\\"1\\\"\"} 1"));
        assert!(text.contains("# TYPE h_us histogram"));
        assert!(text.contains("h_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("h_us_count 1"));
    }
}
