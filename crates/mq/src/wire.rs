//! The length-prefixed binary wire protocol spoken between
//! `ginflow-net`'s broker daemon and its [`Broker`](crate::Broker)
//! clients.
//!
//! Every frame is `u32_be body_len` followed by `body_len` body bytes;
//! the body starts with a one-byte opcode. Bodies larger than
//! [`MAX_FRAME`] are rejected on both encode and decode so a corrupt or
//! hostile peer cannot force an unbounded allocation.
//!
//! ```text
//! frame      := len:u32_be body                (len = body byte count)
//! body       := opcode:u8 fields…
//!
//! primitives:
//!   u8 / u32 / u64     big-endian
//!   bytes              len:u32_be raw-bytes
//!   str                bytes (UTF-8)
//!   opt_bytes          present:u8 [bytes]      (0 = absent, 1 = present)
//!   mode               tag:u8 [offset:u64]     (0 = Latest, 1 = Beginning,
//!                                               2 = FromOffset(offset))
//!   message            topic:str partition:u32 offset:u64
//!                      key:opt_bytes payload:bytes
//!
//! client → server (seq correlates the server's reply; UNSUBSCRIBE is
//! fire-and-forget — its seq is ignored and nothing is replied):
//!   0x01 PUBLISH       seq:u64 topic:str key:opt_bytes payload:bytes
//!   0x02 SUBSCRIBE     seq:u64 topic:str mode
//!   0x03 UNSUBSCRIBE   seq:u64 sub:u64
//!   0x04 FETCH         seq:u64 topic:str partition:u32 from:u64 max:u32
//!   0x05 INFO          seq:u64 topic:str
//!   0x06 RUN_LIST      seq:u64
//!   0x07 RUN_CLOSE     seq:u64 run:str
//!   0x08 RUN_GC        seq:u64
//!   0x09 STATS         seq:u64
//!
//! server → client:
//!   0x81 RECEIPT       seq:u64 partition:u32 offset:u64
//!   0x82 SUBSCRIBED    seq:u64 sub:u64 resume:u64
//!   0x83 MESSAGES      seq:u64 count:u32 message…
//!   0x84 INFO_REPLY    seq:u64 persistent:u8 partitions:u32 retained:u64
//!   0x85 ERROR         seq:u64 message:str
//!   0x86 RUN_LIST_REPLY seq:u64 count:u32 run_stat…
//!   0x87 RUN_GC_REPLY  seq:u64 runs:u32 topics:u32
//!   0x88 STATS_REPLY   seq:u64 count:u32 stat_row…
//!                      (the daemon's full metrics snapshot, flattened)
//!   0x90 EVENT         sub:u64 message       (unsolicited push delivery)
//!   0x91 EVENTS        sub:u64 count:u32 message…
//!                      (coalesced push: one frame per pump wakeup)
//!   0x92 RECEIPTS      seq_first:u64 count:u32 partition:u32 offset_first:u64
//!                      (range ack: count consecutive publishes, seqs
//!                       seq_first… and offsets offset_first…, all on
//!                       one partition — the request-direction mirror
//!                       of EVENTS; count ≤ MAX_RECEIPT_RUN)
//!
//! run_stat := run:str topics:u32 retained:u64 completed:u8
//! stat_row := name:str label:str value:u64    (label empty = unlabelled)
//! ```
//!
//! The `RUN_*` verbs are the daemon's run registry (topics are
//! run-scoped, `run/<id>/…` — see [`crate::namespace`]): list the runs
//! the daemon has seen with their per-run topic accounting, mark a run
//! completed, and garbage-collect completed runs' topics so a standing
//! daemon does not grow without bound.

use crate::broker::SubscribeMode;
use crate::message::Message;
pub use crate::metrics::StatRow;
use bytes::Bytes;
use std::fmt;
use std::io::{Read, Write};

/// Largest accepted frame body, bytes. Large enough for any workflow
/// payload this repo ships, small enough that a corrupt length prefix
/// cannot OOM the peer.
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Sentinel `resume` value in SUBSCRIBED: no resume watermark is
/// available (non-persistent broker, or a multi-partition topic whose
/// position cannot be expressed as one offset).
pub const NO_RESUME: u64 = u64::MAX;

/// Largest receipt run one RECEIPTS frame may acknowledge. The frame is
/// constant-size whatever its count, so without this cap a corrupt or
/// hostile 25-byte frame could claim 2³² receipts and stall the client
/// resolving them; a cooperating server flushes its run long before
/// this bound.
pub const MAX_RECEIPT_RUN: u32 = 1 << 20;

/// What the codec can refuse.
#[derive(Debug)]
pub enum WireError {
    /// The frame body ended before its fields did (or the stream died
    /// mid-frame).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The claimed body length.
        len: usize,
    },
    /// The opcode byte is not part of the protocol.
    UnknownOpcode(u8),
    /// A `str` field was not UTF-8.
    BadUtf8,
    /// A `mode` or `opt_bytes` tag byte was invalid.
    BadTag(u8),
    /// Underlying socket error.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated frame"),
            WireError::Oversized { len } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds MAX_FRAME ({MAX_FRAME})"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::BadUtf8 => f.write_str("string field is not UTF-8"),
            WireError::BadTag(tag) => write!(f, "invalid tag byte 0x{tag:02x}"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One run's row in [`Frame::RunListReply`]: the daemon's per-run topic
/// accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStat {
    /// The run id (the `<id>` of its `run/<id>/…` topics).
    pub run: String,
    /// Topics currently accounted to the run.
    pub topics: u32,
    /// Retained messages across those topics.
    pub retained: u64,
    /// Has the run been marked completed ([`Frame::RunClose`])?
    /// Completed runs are reclaimable by [`Frame::RunGc`].
    pub completed: bool,
}

/// One protocol frame. Client→server frames carry a `seq` the server
/// echoes in its reply; [`Frame::Event`] is the unsolicited push path.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Publish `payload` to `topic` (client → server).
    Publish {
        /// Correlation id.
        seq: u64,
        /// Target topic.
        topic: String,
        /// Optional partition-routing key.
        key: Option<Bytes>,
        /// Payload bytes.
        payload: Bytes,
    },
    /// Open a subscription (client → server).
    Subscribe {
        /// Correlation id.
        seq: u64,
        /// Topic to subscribe to.
        topic: String,
        /// Where the subscription starts.
        mode: SubscribeMode,
    },
    /// Close a subscription (client → server).
    Unsubscribe {
        /// Correlation id.
        seq: u64,
        /// Server-assigned subscription id.
        sub: u64,
    },
    /// Read retained messages without subscribing (client → server).
    Fetch {
        /// Correlation id.
        seq: u64,
        /// Topic to read.
        topic: String,
        /// Partition to read.
        partition: u32,
        /// First offset to return.
        from: u64,
        /// Maximum message count.
        max: u32,
    },
    /// Ask for a topic's metadata and the broker's persistence
    /// (client → server).
    Info {
        /// Correlation id.
        seq: u64,
        /// Topic asked about (may be empty: broker-level info only).
        topic: String,
    },
    /// List every run the daemon's registry knows (client → server).
    RunList {
        /// Correlation id.
        seq: u64,
    },
    /// Mark a run completed so retention GC may reclaim its topics
    /// (client → server). Idempotent.
    RunClose {
        /// Correlation id.
        seq: u64,
        /// The run to mark.
        run: String,
    },
    /// Reclaim every completed run's topics now (client → server).
    RunGc {
        /// Correlation id.
        seq: u64,
    },
    /// Ask for the daemon's metrics snapshot (client → server) — the
    /// operator surface `ginflow broker top` polls.
    Stats {
        /// Correlation id.
        seq: u64,
    },
    /// Publish acknowledgement (server → client).
    Receipt {
        /// Echoed correlation id.
        seq: u64,
        /// Partition the message landed in.
        partition: u32,
        /// Offset assigned.
        offset: u64,
    },
    /// Range acknowledgement of `count` consecutive publishes — the
    /// request-direction mirror of [`Frame::Events`] (server → client).
    /// Acknowledges seqs `seq_first..seq_first + count`, whose messages
    /// all landed on `partition` at the consecutive offsets
    /// `offset_first..offset_first + count`; semantically identical to
    /// the same `count` [`Frame::Receipt`]s arriving back to back. The
    /// server only coalesces receipts whose actual values form this
    /// arithmetic run (one client pipelining into one single-partition
    /// topic — the publish-storm shape), so the expansion is exact.
    Receipts {
        /// Correlation id of the first publish in the run.
        seq_first: u64,
        /// Run length (≥ 2 from a well-formed server; decode rejects
        /// counts above [`MAX_RECEIPT_RUN`]).
        count: u32,
        /// Partition every message in the run landed in.
        partition: u32,
        /// Offset of the first message; successors increment by one.
        offset_first: u64,
    },
    /// Subscription opened (server → client).
    Subscribed {
        /// Echoed correlation id.
        seq: u64,
        /// Subscription id future [`Frame::Event`]s carry.
        sub: u64,
        /// The topic's retained-message count sampled *before* the
        /// subscription attached, or [`NO_RESUME`] when no watermark is
        /// available (non-persistent broker, multi-partition topic). A
        /// head-attached (`Latest`) subscriber that later reconnects
        /// resumes from here, so messages published during the outage
        /// replay from the log instead of being lost. Single-partition
        /// contract, like `SubscribeMode::FromOffset` itself.
        resume: u64,
    },
    /// Fetch result (server → client).
    Messages {
        /// Echoed correlation id.
        seq: u64,
        /// The fetched messages.
        messages: Vec<Message>,
    },
    /// Info result (server → client).
    InfoReply {
        /// Echoed correlation id.
        seq: u64,
        /// Does the broker retain messages?
        persistent: bool,
        /// Partition count of the asked topic.
        partitions: u32,
        /// Retained message count of the asked topic.
        retained: u64,
    },
    /// Run listing (server → client).
    RunListReply {
        /// Echoed correlation id.
        seq: u64,
        /// Per-run accounting rows.
        runs: Vec<RunStat>,
    },
    /// Ack of [`Frame::RunClose`] / [`Frame::RunGc`] (server → client):
    /// how many runs and topics the operation affected.
    RunGcReply {
        /// Echoed correlation id.
        seq: u64,
        /// Runs marked (close) or reclaimed (gc).
        runs: u32,
        /// Topics dropped (always 0 for close).
        topics: u32,
    },
    /// The daemon's flattened metrics snapshot (server → client): the
    /// same rows its `/metrics` endpoint renders, in wire form.
    StatsReply {
        /// Echoed correlation id.
        seq: u64,
        /// `(name, label, value)` rows, sorted by `(name, label)`.
        stats: Vec<StatRow>,
    },
    /// The request failed (server → client).
    Error {
        /// Echoed correlation id.
        seq: u64,
        /// Human-readable cause.
        message: String,
    },
    /// Push delivery on an open subscription (server → client,
    /// unsolicited).
    Event {
        /// Subscription id from [`Frame::Subscribed`].
        sub: u64,
        /// The delivered message.
        message: Message,
    },
    /// Coalesced push delivery: everything queued on one subscription at
    /// the moment its pump woke, in one frame — one encode and one
    /// syscall per *wakeup* instead of one per message (server →
    /// client, unsolicited). Semantically identical to the same
    /// messages arriving as consecutive [`Frame::Event`]s.
    Events {
        /// Subscription id from [`Frame::Subscribed`].
        sub: u64,
        /// The delivered messages, in delivery order.
        messages: Vec<Message>,
    },
}

// --- encoding ---------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn put_opt_bytes(buf: &mut Vec<u8>, b: &Option<Bytes>) {
    match b {
        None => buf.push(0),
        Some(b) => {
            buf.push(1);
            put_bytes(buf, b);
        }
    }
}

fn put_mode(buf: &mut Vec<u8>, mode: SubscribeMode) {
    match mode {
        SubscribeMode::Latest => buf.push(0),
        SubscribeMode::Beginning => buf.push(1),
        SubscribeMode::FromOffset(o) => {
            buf.push(2);
            put_u64(buf, o);
        }
    }
}

fn put_message(buf: &mut Vec<u8>, m: &Message) {
    put_str(buf, &m.topic);
    put_u32(buf, m.partition);
    put_u64(buf, m.offset);
    put_opt_bytes(buf, &m.key);
    put_bytes(buf, &m.payload);
}

impl Frame {
    /// Serialise into a complete frame (length prefix included).
    /// Fails with [`WireError::Oversized`] when the body would exceed
    /// [`MAX_FRAME`].
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = Vec::with_capacity(64);
        put_u32(&mut buf, 0); // length placeholder
        match self {
            Frame::Publish {
                seq,
                topic,
                key,
                payload,
            } => {
                buf.push(0x01);
                put_u64(&mut buf, *seq);
                put_str(&mut buf, topic);
                put_opt_bytes(&mut buf, key);
                put_bytes(&mut buf, payload);
            }
            Frame::Subscribe { seq, topic, mode } => {
                buf.push(0x02);
                put_u64(&mut buf, *seq);
                put_str(&mut buf, topic);
                put_mode(&mut buf, *mode);
            }
            Frame::Unsubscribe { seq, sub } => {
                buf.push(0x03);
                put_u64(&mut buf, *seq);
                put_u64(&mut buf, *sub);
            }
            Frame::Fetch {
                seq,
                topic,
                partition,
                from,
                max,
            } => {
                buf.push(0x04);
                put_u64(&mut buf, *seq);
                put_str(&mut buf, topic);
                put_u32(&mut buf, *partition);
                put_u64(&mut buf, *from);
                put_u32(&mut buf, *max);
            }
            Frame::Info { seq, topic } => {
                buf.push(0x05);
                put_u64(&mut buf, *seq);
                put_str(&mut buf, topic);
            }
            Frame::RunList { seq } => {
                buf.push(0x06);
                put_u64(&mut buf, *seq);
            }
            Frame::RunClose { seq, run } => {
                buf.push(0x07);
                put_u64(&mut buf, *seq);
                put_str(&mut buf, run);
            }
            Frame::RunGc { seq } => {
                buf.push(0x08);
                put_u64(&mut buf, *seq);
            }
            Frame::Stats { seq } => {
                buf.push(0x09);
                put_u64(&mut buf, *seq);
            }
            Frame::Receipt {
                seq,
                partition,
                offset,
            } => {
                buf.push(0x81);
                put_u64(&mut buf, *seq);
                put_u32(&mut buf, *partition);
                put_u64(&mut buf, *offset);
            }
            Frame::Subscribed { seq, sub, resume } => {
                buf.push(0x82);
                put_u64(&mut buf, *seq);
                put_u64(&mut buf, *sub);
                put_u64(&mut buf, *resume);
            }
            Frame::Messages { seq, messages } => {
                buf.push(0x83);
                put_u64(&mut buf, *seq);
                put_u32(&mut buf, messages.len() as u32);
                for m in messages {
                    put_message(&mut buf, m);
                }
            }
            Frame::InfoReply {
                seq,
                persistent,
                partitions,
                retained,
            } => {
                buf.push(0x84);
                put_u64(&mut buf, *seq);
                buf.push(u8::from(*persistent));
                put_u32(&mut buf, *partitions);
                put_u64(&mut buf, *retained);
            }
            Frame::Error { seq, message } => {
                buf.push(0x85);
                put_u64(&mut buf, *seq);
                put_str(&mut buf, message);
            }
            Frame::RunListReply { seq, runs } => {
                buf.push(0x86);
                put_u64(&mut buf, *seq);
                put_u32(&mut buf, runs.len() as u32);
                for r in runs {
                    put_str(&mut buf, &r.run);
                    put_u32(&mut buf, r.topics);
                    put_u64(&mut buf, r.retained);
                    buf.push(u8::from(r.completed));
                }
            }
            Frame::RunGcReply { seq, runs, topics } => {
                buf.push(0x87);
                put_u64(&mut buf, *seq);
                put_u32(&mut buf, *runs);
                put_u32(&mut buf, *topics);
            }
            Frame::StatsReply { seq, stats } => {
                buf.push(0x88);
                put_u64(&mut buf, *seq);
                put_u32(&mut buf, stats.len() as u32);
                for row in stats {
                    put_str(&mut buf, &row.name);
                    put_str(&mut buf, &row.label);
                    put_u64(&mut buf, row.value);
                }
            }
            Frame::Receipts {
                seq_first,
                count,
                partition,
                offset_first,
            } => {
                buf.push(0x92);
                put_u64(&mut buf, *seq_first);
                put_u32(&mut buf, *count);
                put_u32(&mut buf, *partition);
                put_u64(&mut buf, *offset_first);
            }
            Frame::Event { sub, message } => {
                buf.push(0x90);
                put_u64(&mut buf, *sub);
                put_message(&mut buf, message);
            }
            Frame::Events { sub, messages } => {
                buf.push(0x91);
                put_u64(&mut buf, *sub);
                put_u32(&mut buf, messages.len() as u32);
                for m in messages {
                    put_message(&mut buf, m);
                }
            }
        }
        let body_len = buf.len() - 4;
        if body_len > MAX_FRAME {
            return Err(WireError::Oversized { len: body_len });
        }
        buf[..4].copy_from_slice(&(body_len as u32).to_be_bytes());
        Ok(buf)
    }

    /// Decode one frame *body* (the bytes after the length prefix).
    pub fn decode(body: &[u8]) -> Result<Frame, WireError> {
        if body.len() > MAX_FRAME {
            return Err(WireError::Oversized { len: body.len() });
        }
        let mut r = Reader::new(body);
        let opcode = r.u8()?;
        let frame = match opcode {
            0x01 => Frame::Publish {
                seq: r.u64()?,
                topic: r.str()?,
                key: r.opt_bytes()?,
                payload: r.bytes()?,
            },
            0x02 => Frame::Subscribe {
                seq: r.u64()?,
                topic: r.str()?,
                mode: r.mode()?,
            },
            0x03 => Frame::Unsubscribe {
                seq: r.u64()?,
                sub: r.u64()?,
            },
            0x04 => Frame::Fetch {
                seq: r.u64()?,
                topic: r.str()?,
                partition: r.u32()?,
                from: r.u64()?,
                max: r.u32()?,
            },
            0x05 => Frame::Info {
                seq: r.u64()?,
                topic: r.str()?,
            },
            0x06 => Frame::RunList { seq: r.u64()? },
            0x07 => Frame::RunClose {
                seq: r.u64()?,
                run: r.str()?,
            },
            0x08 => Frame::RunGc { seq: r.u64()? },
            0x09 => Frame::Stats { seq: r.u64()? },
            0x81 => Frame::Receipt {
                seq: r.u64()?,
                partition: r.u32()?,
                offset: r.u64()?,
            },
            0x82 => Frame::Subscribed {
                seq: r.u64()?,
                sub: r.u64()?,
                resume: r.u64()?,
            },
            0x83 => {
                let seq = r.u64()?;
                let count = r.u32()? as usize;
                // Each message is at least 17 bytes on the wire; a count
                // claiming more than fits in the body is corrupt.
                if count > body.len() / 17 + 1 {
                    return Err(WireError::Truncated);
                }
                let mut messages = Vec::with_capacity(count);
                for _ in 0..count {
                    messages.push(r.message()?);
                }
                Frame::Messages { seq, messages }
            }
            0x84 => Frame::InfoReply {
                seq: r.u64()?,
                persistent: match r.u8()? {
                    0 => false,
                    1 => true,
                    tag => return Err(WireError::BadTag(tag)),
                },
                partitions: r.u32()?,
                retained: r.u64()?,
            },
            0x85 => Frame::Error {
                seq: r.u64()?,
                message: r.str()?,
            },
            0x86 => {
                let seq = r.u64()?;
                let count = r.u32()? as usize;
                // Each run_stat is at least 17 bytes; a count claiming
                // more than fits in the body is corrupt.
                if count > body.len() / 17 + 1 {
                    return Err(WireError::Truncated);
                }
                let mut runs = Vec::with_capacity(count);
                for _ in 0..count {
                    runs.push(RunStat {
                        run: r.str()?,
                        topics: r.u32()?,
                        retained: r.u64()?,
                        completed: match r.u8()? {
                            0 => false,
                            1 => true,
                            tag => return Err(WireError::BadTag(tag)),
                        },
                    });
                }
                Frame::RunListReply { seq, runs }
            }
            0x87 => Frame::RunGcReply {
                seq: r.u64()?,
                runs: r.u32()?,
                topics: r.u32()?,
            },
            0x88 => {
                let seq = r.u64()?;
                let count = r.u32()? as usize;
                // Each stat row is at least 16 bytes; a count claiming
                // more than fits in the body is corrupt.
                if count > body.len() / 16 + 1 {
                    return Err(WireError::Truncated);
                }
                let mut stats = Vec::with_capacity(count);
                for _ in 0..count {
                    stats.push(StatRow {
                        name: r.str()?,
                        label: r.str()?,
                        value: r.u64()?,
                    });
                }
                Frame::StatsReply { seq, stats }
            }
            0x92 => {
                let seq_first = r.u64()?;
                let count = r.u32()?;
                if count > MAX_RECEIPT_RUN {
                    // The frame is constant-size whatever it claims, so
                    // an absurd count is corruption, not a big batch.
                    return Err(WireError::Truncated);
                }
                Frame::Receipts {
                    seq_first,
                    count,
                    partition: r.u32()?,
                    offset_first: r.u64()?,
                }
            }
            0x90 => Frame::Event {
                sub: r.u64()?,
                message: r.message()?,
            },
            0x91 => {
                let sub = r.u64()?;
                let count = r.u32()? as usize;
                // Each message is at least 17 bytes on the wire; a count
                // claiming more than fits in the body is corrupt.
                if count > body.len() / 17 + 1 {
                    return Err(WireError::Truncated);
                }
                let mut messages = Vec::with_capacity(count);
                for _ in 0..count {
                    messages.push(r.message()?);
                }
                Frame::Events { sub, messages }
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        if !r.is_exhausted() {
            // Trailing garbage means the peer and we disagree about the
            // frame layout — treat as corruption, not leniency.
            return Err(WireError::Truncated);
        }
        Ok(frame)
    }
}

/// Write one frame to a stream (a single `write_all`; callers flush).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let buf = frame.encode()?;
    w.write_all(&buf)?;
    Ok(())
}

/// Read one frame from a stream. `Ok(None)` on a clean EOF at a frame
/// boundary; [`WireError::Truncated`] when the stream dies mid-frame.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut len = [0u8; 4];
    if !read_exact_or_eof(r, &mut len)? {
        return Ok(None);
    }
    let body_len = u32::from_be_bytes(len) as usize;
    if body_len > MAX_FRAME {
        return Err(WireError::Oversized { len: body_len });
    }
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    Frame::decode(&body).map(Some)
}

/// `read_exact`, except a clean EOF before the first byte returns
/// `Ok(false)` instead of an error.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// Truncation-checked cursor over a length-prefixed binary body.
///
/// Public because it is the one bounds-checked byte reader of the
/// workspace: sibling binary codecs (the agent message codec) build on
/// these primitives instead of growing parallel implementations whose
/// corruption checks could drift apart.
pub struct Reader<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Cursor over `body`, positioned at the start.
    pub fn new(body: &'a [u8]) -> Self {
        Reader { body, at: 0 }
    }

    /// Consume the next `n` bytes; [`WireError::Truncated`] when fewer
    /// remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.body.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.body[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// One byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Big-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed byte field.
    pub fn bytes(&mut self) -> Result<Bytes, WireError> {
        let len = self.u32()? as usize;
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    /// Length-prefixed UTF-8 string field.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?)
            .map(str::to_owned)
            .map_err(|_| WireError::BadUtf8)
    }

    /// Bytes not yet consumed — the bound for element-count sanity
    /// checks (a count claiming more elements than bytes is corrupt).
    pub fn remaining(&self) -> usize {
        self.body.len() - self.at
    }

    /// Has the whole body been consumed? Trailing garbage means the
    /// peer and we disagree about the layout — corruption, not
    /// leniency.
    pub fn is_exhausted(&self) -> bool {
        self.at == self.body.len()
    }

    fn opt_bytes(&mut self) -> Result<Option<Bytes>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.bytes()?)),
            tag => Err(WireError::BadTag(tag)),
        }
    }

    fn mode(&mut self) -> Result<SubscribeMode, WireError> {
        match self.u8()? {
            0 => Ok(SubscribeMode::Latest),
            1 => Ok(SubscribeMode::Beginning),
            2 => Ok(SubscribeMode::FromOffset(self.u64()?)),
            tag => Err(WireError::BadTag(tag)),
        }
    }

    fn message(&mut self) -> Result<Message, WireError> {
        Ok(Message {
            topic: self.str()?.into(),
            partition: self.u32()?,
            offset: self.u64()?,
            key: self.opt_bytes()?,
            payload: self.bytes()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let encoded = frame.encode().unwrap();
        let body_len = u32::from_be_bytes(encoded[..4].try_into().unwrap()) as usize;
        assert_eq!(body_len, encoded.len() - 4);
        assert_eq!(Frame::decode(&encoded[4..]).unwrap(), frame);
        // And through the stream API.
        let mut cursor = std::io::Cursor::new(&encoded);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    fn message() -> Message {
        Message {
            topic: "sa.T1".into(),
            partition: 3,
            offset: 42,
            key: Some(Bytes::from_static(b"k")),
            payload: Bytes::from_static(b"payload"),
        }
    }

    #[test]
    fn every_frame_type_roundtrips() {
        for frame in [
            Frame::Publish {
                seq: 1,
                topic: "status".into(),
                key: None,
                payload: Bytes::from_static(b"x"),
            },
            Frame::Subscribe {
                seq: 2,
                topic: "sa.T1".into(),
                mode: SubscribeMode::FromOffset(7),
            },
            Frame::Unsubscribe { seq: 3, sub: 9 },
            Frame::Fetch {
                seq: 4,
                topic: "t".into(),
                partition: 1,
                from: 100,
                max: 50,
            },
            Frame::Info {
                seq: 5,
                topic: String::new(),
            },
            Frame::Receipt {
                seq: 1,
                partition: 0,
                offset: 12,
            },
            Frame::Subscribed {
                seq: 2,
                sub: 9,
                resume: 4,
            },
            Frame::Messages {
                seq: 4,
                messages: vec![message(), message()],
            },
            Frame::InfoReply {
                seq: 5,
                persistent: true,
                partitions: 4,
                retained: 1000,
            },
            Frame::Error {
                seq: 6,
                message: "no such partition".into(),
            },
            Frame::RunList { seq: 7 },
            Frame::RunClose {
                seq: 8,
                run: "r1f".into(),
            },
            Frame::RunGc { seq: 9 },
            Frame::RunListReply {
                seq: 7,
                runs: vec![
                    RunStat {
                        run: "r1f".into(),
                        topics: 5,
                        retained: 1000,
                        completed: true,
                    },
                    RunStat {
                        run: "r20".into(),
                        topics: 0,
                        retained: 0,
                        completed: false,
                    },
                ],
            },
            Frame::RunGcReply {
                seq: 9,
                runs: 2,
                topics: 11,
            },
            Frame::Stats { seq: 10 },
            Frame::StatsReply {
                seq: 10,
                stats: vec![
                    StatRow {
                        name: "gf_broker_publish_total".into(),
                        label: String::new(),
                        value: 12345,
                    },
                    StatRow {
                        name: "gf_run_publish_total".into(),
                        label: "r1f".into(),
                        value: 99,
                    },
                ],
            },
            Frame::StatsReply {
                seq: 11,
                stats: Vec::new(),
            },
            Frame::Receipts {
                seq_first: 100,
                count: 64,
                partition: 0,
                offset_first: 4096,
            },
            Frame::Event {
                sub: 9,
                message: message(),
            },
            Frame::Events {
                sub: 9,
                messages: vec![message(), message(), message()],
            },
            Frame::Events {
                sub: 1,
                messages: Vec::new(),
            },
        ] {
            roundtrip(frame);
        }
    }

    #[test]
    fn truncated_bodies_are_rejected() {
        let encoded = Frame::Event {
            sub: 1,
            message: message(),
        }
        .encode()
        .unwrap();
        for cut in 1..encoded.len() - 4 {
            let body = &encoded[4..encoded.len() - cut];
            assert!(
                matches!(Frame::decode(body), Err(WireError::Truncated)),
                "cut {cut} must be truncated"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&(u32::MAX).to_be_bytes());
        bogus.push(0x01);
        let mut cursor = std::io::Cursor::new(&bogus);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn oversized_payload_fails_encode() {
        let frame = Frame::Publish {
            seq: 0,
            topic: "t".into(),
            key: None,
            payload: Bytes::from(vec![0u8; MAX_FRAME + 1]),
        };
        assert!(matches!(frame.encode(), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn receipts_run_over_cap_is_rejected() {
        let encoded = Frame::Receipts {
            seq_first: 1,
            count: MAX_RECEIPT_RUN,
            partition: 0,
            offset_first: 0,
        }
        .encode()
        .unwrap();
        assert!(Frame::decode(&encoded[4..]).is_ok(), "cap itself is legal");
        let mut body = encoded[4..].to_vec();
        body[9..13].copy_from_slice(&(MAX_RECEIPT_RUN + 1).to_be_bytes());
        assert!(
            matches!(Frame::decode(&body), Err(WireError::Truncated)),
            "count beyond MAX_RECEIPT_RUN must be rejected"
        );
    }

    #[test]
    fn stats_reply_with_absurd_count_is_rejected() {
        let encoded = Frame::StatsReply {
            seq: 1,
            stats: vec![StatRow {
                name: "n".into(),
                label: String::new(),
                value: 7,
            }],
        }
        .encode()
        .unwrap();
        let mut body = encoded[4..].to_vec();
        // The count field sits right after opcode + seq; claim far more
        // rows than the body could hold.
        body[9..13].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(Frame::decode(&body), Err(WireError::Truncated)));
    }

    #[test]
    fn unknown_opcode_rejected() {
        assert!(matches!(
            Frame::decode(&[0x7f]),
            Err(WireError::UnknownOpcode(0x7f))
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut encoded = Frame::Subscribed {
            seq: 1,
            sub: 2,
            resume: 0,
        }
        .encode()
        .unwrap();
        encoded.push(0xff);
        assert!(matches!(
            Frame::decode(&encoded[4..]),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn mid_frame_eof_is_truncation() {
        let encoded = Frame::Subscribed {
            seq: 1,
            sub: 2,
            resume: 0,
        }
        .encode()
        .unwrap();
        let mut cursor = std::io::Cursor::new(&encoded[..encoded.len() - 3]);
        assert!(matches!(read_frame(&mut cursor), Err(WireError::Truncated)));
    }
}
