//! Concurrency stress tests for the broker substrate: many publishers,
//! many subscribers, racing replays.

use bytes::Bytes;
use ginflow_mq::{Broker, LogBroker, SubscribeMode, TransientBroker};
use std::sync::Arc;
use std::time::Duration;

fn payload(i: usize) -> Bytes {
    Bytes::from(format!("m{i}").into_bytes())
}

#[test]
fn concurrent_publishers_on_log_broker_keep_dense_offsets() {
    let broker = Arc::new(LogBroker::new());
    let mut handles = Vec::new();
    for t in 0..8 {
        let b = broker.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..250 {
                b.publish("t", None, payload(t * 1000 + i)).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(broker.retained("t"), 2000);
    let all = broker.fetch("t", 0, 0, 5000).unwrap();
    assert_eq!(all.len(), 2000);
    for (i, m) in all.iter().enumerate() {
        assert_eq!(m.offset, i as u64, "offsets must be dense and ordered");
    }
}

#[test]
fn subscribers_see_every_message_once_each() {
    let broker = Arc::new(TransientBroker::new());
    let subs: Vec<_> = (0..4)
        .map(|_| broker.subscribe("t", SubscribeMode::Latest).unwrap())
        .collect();
    let b = broker.clone();
    let publisher = std::thread::spawn(move || {
        for i in 0..500 {
            b.publish("t", None, payload(i)).unwrap();
        }
    });
    publisher.join().unwrap();
    for sub in &subs {
        let mut count = 0;
        while let Ok(m) = sub.recv_timeout(Duration::from_millis(100)) {
            assert_eq!(m.payload_str(), format!("m{count}"));
            count += 1;
            if count == 500 {
                break;
            }
        }
        assert_eq!(count, 500);
    }
}

#[test]
fn replay_races_with_live_publishing() {
    // Subscribers attach from the beginning while a publisher is running:
    // each must see a gapless, duplicate-free prefix-order stream.
    let broker = Arc::new(LogBroker::new());
    for i in 0..100 {
        broker.publish("t", None, payload(i)).unwrap();
    }
    let b = broker.clone();
    let publisher = std::thread::spawn(move || {
        for i in 100..400 {
            b.publish("t", None, payload(i)).unwrap();
            if i % 50 == 0 {
                std::thread::yield_now();
            }
        }
    });
    let mut subscribers = Vec::new();
    for _ in 0..4 {
        subscribers.push(broker.subscribe("t", SubscribeMode::Beginning).unwrap());
        std::thread::yield_now();
    }
    publisher.join().unwrap();
    for sub in &subscribers {
        let mut next = 0usize;
        while next < 400 {
            let m = sub
                .recv_timeout(Duration::from_secs(2))
                .expect("gapless stream");
            assert_eq!(m.payload_str(), format!("m{next}"), "no gaps, no dupes");
            next += 1;
        }
    }
}

#[test]
fn keyed_routing_is_consistent_under_concurrency() {
    let broker = Arc::new(LogBroker::with_default_partitions(4));
    let mut handles = Vec::new();
    for t in 0..4 {
        let b = broker.clone();
        handles.push(std::thread::spawn(move || {
            let key = Bytes::from(format!("agent-{t}").into_bytes());
            let mut partitions = std::collections::HashSet::new();
            for i in 0..200 {
                let r = b.publish("t", Some(key.clone()), payload(i)).unwrap();
                partitions.insert(r.partition);
            }
            partitions
        }));
    }
    for h in handles {
        let partitions = h.join().unwrap();
        assert_eq!(partitions.len(), 1, "a key must always hit one partition");
    }
}
