//! Property tests of the network wire codec: every frame type survives
//! an encode→decode round trip for arbitrary payload bytes, keys,
//! topics and offsets, and corrupted frames (truncated, oversized,
//! trailing garbage) are rejected instead of mis-decoded.

use bytes::Bytes;
use ginflow_mq::wire::{
    read_frame, Frame, RunStat, StatRow, WireError, MAX_FRAME, MAX_RECEIPT_RUN,
};
use ginflow_mq::{Message, SubscribeMode};
use proptest::prelude::*;

fn arb_bytes() -> BoxedStrategy<Bytes> {
    prop::collection::vec(any::<u8>(), 0..512)
        .prop_map(Bytes::from)
        .boxed()
}

fn arb_key() -> BoxedStrategy<Option<Bytes>> {
    (any::<bool>(), arb_bytes())
        .prop_map(|(present, b)| present.then_some(b))
        .boxed()
}

fn arb_topic() -> BoxedStrategy<String> {
    "[a-zA-Z0-9._-]{0,24}".boxed()
}

fn arb_mode() -> BoxedStrategy<SubscribeMode> {
    (0u8..3, any::<u64>())
        .prop_map(|(tag, offset)| match tag {
            0 => SubscribeMode::Latest,
            1 => SubscribeMode::Beginning,
            _ => SubscribeMode::FromOffset(offset),
        })
        .boxed()
}

fn arb_message() -> BoxedStrategy<Message> {
    (
        arb_topic(),
        (any::<u32>(), any::<u64>()),
        arb_key(),
        arb_bytes(),
    )
        .prop_map(|(topic, (partition, offset), key, payload)| Message {
            topic: topic.into(),
            partition,
            offset,
            key,
            payload,
        })
        .boxed()
}

fn arb_frame() -> BoxedStrategy<Frame> {
    fn seq() -> impl Strategy<Value = u64> {
        any::<u64>()
    }
    prop_oneof![
        (seq(), arb_topic(), arb_key(), arb_bytes()).prop_map(|(seq, topic, key, payload)| {
            Frame::Publish {
                seq,
                topic,
                key,
                payload,
            }
        }),
        (seq(), arb_topic(), arb_mode()).prop_map(|(seq, topic, mode)| Frame::Subscribe {
            seq,
            topic,
            mode
        }),
        (seq(), any::<u64>()).prop_map(|(seq, sub)| Frame::Unsubscribe { seq, sub }),
        (
            seq(),
            arb_topic(),
            (any::<u32>(), any::<u64>(), any::<u32>())
        )
            .prop_map(|(seq, topic, (partition, from, max))| Frame::Fetch {
                seq,
                topic,
                partition,
                from,
                max,
            }),
        (seq(), arb_topic()).prop_map(|(seq, topic)| Frame::Info { seq, topic }),
        (seq(), any::<u32>(), any::<u64>()).prop_map(|(seq, partition, offset)| Frame::Receipt {
            seq,
            partition,
            offset,
        }),
        (seq(), 0u32..=MAX_RECEIPT_RUN, any::<u32>(), any::<u64>()).prop_map(
            |(seq_first, count, partition, offset_first)| Frame::Receipts {
                seq_first,
                count,
                partition,
                offset_first,
            }
        ),
        (seq(), any::<u64>(), any::<u64>()).prop_map(|(seq, sub, resume)| Frame::Subscribed {
            seq,
            sub,
            resume
        }),
        (seq(), prop::collection::vec(arb_message(), 0..4))
            .prop_map(|(seq, messages)| Frame::Messages { seq, messages }),
        (seq(), any::<bool>(), any::<u32>(), any::<u64>()).prop_map(
            |(seq, persistent, partitions, retained)| Frame::InfoReply {
                seq,
                persistent,
                partitions,
                retained,
            }
        ),
        (seq(), "[ -~]{0,48}").prop_map(|(seq, message)| Frame::Error { seq, message }),
        seq().prop_map(|seq| Frame::RunList { seq }),
        (seq(), arb_topic()).prop_map(|(seq, run)| Frame::RunClose { seq, run }),
        seq().prop_map(|seq| Frame::RunGc { seq }),
        (seq(), prop::collection::vec(arb_run_stat(), 0..4))
            .prop_map(|(seq, runs)| Frame::RunListReply { seq, runs }),
        (seq(), any::<u32>(), any::<u32>()).prop_map(|(seq, runs, topics)| Frame::RunGcReply {
            seq,
            runs,
            topics
        }),
        seq().prop_map(|seq| Frame::Stats { seq }),
        (seq(), prop::collection::vec(arb_stat_row(), 0..4))
            .prop_map(|(seq, stats)| Frame::StatsReply { seq, stats }),
        (any::<u64>(), arb_message()).prop_map(|(sub, message)| Frame::Event { sub, message }),
        (any::<u64>(), prop::collection::vec(arb_message(), 0..6))
            .prop_map(|(sub, messages)| Frame::Events { sub, messages }),
    ]
    .boxed()
}

fn arb_stat_row() -> BoxedStrategy<StatRow> {
    (arb_topic(), arb_topic(), any::<u64>())
        .prop_map(|(name, label, value)| StatRow { name, label, value })
        .boxed()
}

fn arb_run_stat() -> BoxedStrategy<RunStat> {
    (arb_topic(), any::<u32>(), any::<u64>(), any::<bool>())
        .prop_map(|(run, topics, retained, completed)| RunStat {
            run,
            topics,
            retained,
            completed,
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round trip: decode(encode(f)) == f for arbitrary frames of every
    /// type, both through the body codec and the stream reader.
    #[test]
    fn frame_roundtrip(frame in arb_frame()) {
        let encoded = frame.encode().unwrap();
        let body = &encoded[4..];
        prop_assert_eq!(Frame::decode(body).unwrap(), frame.clone());
        let mut cursor = std::io::Cursor::new(&encoded);
        prop_assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    /// Any strict prefix of a frame body fails to decode (no silent
    /// short reads), and appending garbage is rejected too.
    #[test]
    fn corrupted_frames_rejected(frame in arb_frame(), cut in 1usize..16, junk in any::<u8>()) {
        let encoded = frame.encode().unwrap();
        let body = &encoded[4..];
        let cut = cut.min(body.len());
        if cut < body.len() {
            prop_assert!(Frame::decode(&body[..body.len() - cut]).is_err());
        }
        let mut extended = body.to_vec();
        extended.push(junk);
        prop_assert!(Frame::decode(&extended).is_err());
    }

    /// Back-to-back frames on one stream decode in order.
    #[test]
    fn streams_of_frames_decode_in_order(frames in prop::collection::vec(arb_frame(), 1..5)) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode().unwrap());
        }
        let mut cursor = std::io::Cursor::new(&stream);
        for f in &frames {
            let got = read_frame(&mut cursor).unwrap();
            prop_assert_eq!(got.as_ref(), Some(f));
        }
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }
}

proptest! {
    /// A RECEIPTS frame is constant-size whatever run length it
    /// claims, so the count carries no implicit body-size bound — any
    /// count beyond MAX_RECEIPT_RUN must be rejected as corruption,
    /// and every strict prefix of the body must fail like any frame.
    #[test]
    fn receipts_over_cap_or_truncated_rejected(
        seq_first in any::<u64>(),
        excess in 1u32..1024,
        partition in any::<u32>(),
        offset_first in any::<u64>(),
        cut in 1usize..24,
    ) {
        let frame = Frame::Receipts {
            seq_first,
            count: MAX_RECEIPT_RUN,
            partition,
            offset_first,
        };
        let encoded = frame.encode().unwrap();
        let mut body = encoded[4..].to_vec();
        prop_assert_eq!(Frame::decode(&body).unwrap(), frame);
        prop_assert!(Frame::decode(&body[..body.len() - cut.min(body.len() - 1)]).is_err());
        body[9..13].copy_from_slice(&(MAX_RECEIPT_RUN + excess).to_be_bytes());
        prop_assert!(Frame::decode(&body).is_err());
    }
}

proptest! {
    /// STATS_REPLY carries variable-size rows behind a `count` field;
    /// a count claiming more rows than the body could possibly hold
    /// (16 bytes minimum each) must be rejected as corruption instead
    /// of driving a giant allocation, and any strict prefix of the
    /// body must fail like any frame.
    #[test]
    fn stats_reply_over_count_or_truncated_rejected(
        seq in any::<u64>(),
        rows in prop::collection::vec(arb_stat_row(), 0..4),
        excess in 1u32..1024,
        cut in 1usize..16,
    ) {
        let frame = Frame::StatsReply { seq, stats: rows };
        let encoded = frame.encode().unwrap();
        let mut body = encoded[4..].to_vec();
        prop_assert_eq!(Frame::decode(&body).unwrap(), frame);
        let cut = cut.min(body.len() - 1);
        prop_assert!(Frame::decode(&body[..body.len() - cut]).is_err());
        // Patch the count (opcode + seq precede it) past what the body
        // can hold.
        let over = (body.len() / 16) as u32 + 1 + excess;
        body[9..13].copy_from_slice(&over.to_be_bytes());
        prop_assert!(Frame::decode(&body).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flip one arbitrary bit anywhere in a multi-frame stream — the
    /// same byte sequence both the server's connection reader and the
    /// clients' reader threads parse — and the reader must (a) never
    /// panic, (b) decode every frame wholly before the flipped byte
    /// exactly as sent, and (c) terminate: the corruption surfaces as
    /// a decode error, an EOF, or (the wire has no checksum) a
    /// misparsed-but-valid frame, never a wedge or an abort.
    #[test]
    fn bit_flipped_streams_error_cleanly_and_preserve_the_prefix(
        frames in prop::collection::vec(arb_frame(), 1..5),
        flip_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let mut stream = Vec::new();
        let mut ends = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode().unwrap());
            ends.push(stream.len());
        }
        let flip_at = (((stream.len() - 1) as f64) * flip_frac) as usize;
        stream[flip_at] ^= 1 << bit;
        // Frames whose bytes all precede the flipped byte must still
        // decode verbatim.
        let intact = ends.iter().take_while(|&&end| end <= flip_at).count();

        let mut cursor = std::io::Cursor::new(&stream);
        let mut got = 0usize;
        // Each round consumes at least the 4-byte length prefix, so
        // this loop is bounded by the stream length; the corruption
        // surfaces as a decode error or EOF (`Ok(None)`), never a wedge.
        while let Ok(Some(f)) = read_frame(&mut cursor) {
            if got < intact {
                prop_assert_eq!(&f, &frames[got]);
            }
            got += 1;
        }
        prop_assert!(got >= intact);
    }

    /// Truncate a multi-frame stream at an arbitrary byte: every frame
    /// that survives whole decodes verbatim, and the cut surfaces as a
    /// clean end-of-stream or error — a truncation can never invent a
    /// frame that was not sent.
    #[test]
    fn truncated_streams_yield_only_genuine_frames(
        frames in prop::collection::vec(arb_frame(), 1..5),
        keep_frac in 0.0f64..1.0,
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode().unwrap());
        }
        let keep = ((stream.len() as f64) * keep_frac) as usize;
        stream.truncate(keep);

        let mut cursor = std::io::Cursor::new(&stream);
        let mut got = 0usize;
        while let Ok(Some(f)) = read_frame(&mut cursor) {
            prop_assert!(got < frames.len(), "phantom frame past the cut");
            prop_assert_eq!(&f, &frames[got]);
            got += 1;
        }
    }

    /// Arbitrary byte soup into the stream reader: no panic, no giant
    /// allocation (the length prefix is bounded by MAX_FRAME before
    /// any buffer is sized), and guaranteed termination.
    #[test]
    fn garbage_streams_never_panic(junk in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut cursor = std::io::Cursor::new(&junk);
        let mut rounds = 0usize;
        while let Ok(Some(_)) = read_frame(&mut cursor) {
            rounds += 1;
            prop_assert!(rounds <= junk.len(), "reader failed to make progress");
        }
    }
}

#[test]
fn length_prefix_over_max_frame_is_rejected() {
    let mut bogus = Vec::new();
    bogus.extend_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
    bogus.extend_from_slice(&[0u8; 16]);
    let mut cursor = std::io::Cursor::new(&bogus);
    assert!(matches!(
        read_frame(&mut cursor),
        Err(WireError::Oversized { .. })
    ));
}

#[test]
fn oversized_publish_never_hits_the_wire() {
    let frame = Frame::Publish {
        seq: 1,
        topic: "t".into(),
        key: None,
        payload: Bytes::from(vec![0u8; MAX_FRAME]),
    };
    // MAX_FRAME of payload plus framing overhead exceeds the limit.
    assert!(matches!(frame.encode(), Err(WireError::Oversized { .. })));
}
