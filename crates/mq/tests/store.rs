//! Property tests of the segment store's crash-safety contract:
//! arbitrary records survive an encode→decode round trip, a torn tail
//! of arbitrary garbage is truncated (never served, never fatal), and
//! a data dir stamped with any other schema version is refused.

use ginflow_mq::store::manifest::SCHEMA_VERSION;
use ginflow_mq::store::segment::{decode_record, encode_record, record_frame_len, Decoded};
use ginflow_mq::store::SegmentStore;
use ginflow_mq::{Broker, DurabilityConfig, FsyncPolicy, LogBroker, SubscribeMode};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, self-cleaning temp directory (no tempfile dependency).
struct TestDir(PathBuf);

impl TestDir {
    fn new(tag: &str) -> TestDir {
        static N: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "ginflow-store-it-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TestDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_segments() -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::Never,
        segment_bytes: 512, // rotate often so properties cross segments
        memory_messages: 4,
        ..DurabilityConfig::default()
    }
}

fn arb_key() -> BoxedStrategy<Option<Vec<u8>>> {
    (any::<bool>(), prop::collection::vec(any::<u8>(), 0..32))
        .prop_map(|(present, k)| present.then_some(k))
        .boxed()
}

fn arb_payload() -> BoxedStrategy<Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..128).boxed()
}

proptest! {
    /// decode(encode(key, payload)) returns the same key and payload
    /// (including the no-key vs. empty-key distinction) and reports the
    /// exact frame length, and any single corrupted byte of the frame
    /// never decodes to a *different* valid record.
    #[test]
    fn record_roundtrip(key in arb_key(), payload in arb_payload(), flip in any::<u16>()) {
        let mut buf = Vec::new();
        encode_record(&mut buf, key.as_deref(), &payload);
        prop_assert_eq!(
            buf.len(),
            record_frame_len(key.as_ref().map(Vec::len), payload.len())
        );
        match decode_record(&buf) {
            Decoded::Record { key: k, payload: p, frame } => {
                prop_assert_eq!(k, key.as_deref());
                prop_assert_eq!(p, &payload[..]);
                prop_assert_eq!(frame, buf.len());
            }
            other => prop_assert!(false, "valid record decoded as {:?}", other),
        }

        let mut corrupt = buf.clone();
        let at = flip as usize % corrupt.len();
        corrupt[at] ^= 1 + (flip >> 8) as u8 % 255;
        match decode_record(&corrupt) {
            // Flipping a length byte may leave a decodable-looking
            // prefix only if the CRC still matches — astronomically
            // unlikely; equality below catches any slip.
            Decoded::Record { key: k, payload: p, .. } => {
                prop_assert_eq!(k, key.as_deref());
                prop_assert_eq!(p, &payload[..]);
            }
            Decoded::Torn | Decoded::End => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever partial garbage a crash leaves after the last complete
    /// record, reopening the dir truncates it: every acknowledged
    /// message survives with its offset, nothing fabricated appears,
    /// and the partition accepts appends at the right next offset.
    #[test]
    fn torn_tail_is_always_truncated(
        payloads in prop::collection::vec(arb_payload(), 1..24),
        garbage in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let dir = TestDir::new("torn");
        {
            let (broker, _) = LogBroker::open(dir.path(), small_segments()).unwrap();
            for p in &payloads {
                broker
                    .publish("t", None, bytes::Bytes::copy_from_slice(p))
                    .unwrap();
            }
        }
        // Find the active (largest-base) segment and smear garbage at
        // its valid end — the shape a mid-append crash leaves.
        let pdir = dir.path().join("topics/t/@p0");
        let mut segs: Vec<PathBuf> = std::fs::read_dir(&pdir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        segs.sort();
        let last = segs.pop().unwrap();
        let base: u64 = last
            .file_stem()
            .unwrap()
            .to_str()
            .unwrap()
            .parse()
            .unwrap();
        let valid_end: usize = payloads
            .iter()
            .skip(base as usize)
            .map(|p| record_frame_len(None, p.len()))
            .sum();
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new().write(true).open(&last).unwrap();
            f.seek(SeekFrom::Start(valid_end as u64)).unwrap();
            f.write_all(&garbage).unwrap();
        }

        let (broker, report) = LogBroker::open(dir.path(), small_segments()).unwrap();
        // All-zero garbage is a clean end, anything else a counted tear.
        prop_assert!(garbage.iter().all(|&b| b == 0) || report.truncated_bytes > 0);
        prop_assert_eq!(report.messages, payloads.len() as u64);
        let sub = broker.subscribe("t", SubscribeMode::Beginning).unwrap();
        for (i, expected) in payloads.iter().enumerate() {
            let m = sub.try_recv().unwrap().expect("replayed message");
            prop_assert_eq!(m.offset, i as u64);
            prop_assert_eq!(&m.payload[..], &expected[..]);
        }
        prop_assert!(sub.try_recv().unwrap().is_none(), "nothing fabricated");
        let receipt = broker
            .publish("t", None, bytes::Bytes::from_static(b"after"))
            .unwrap();
        prop_assert_eq!(receipt.offset, payloads.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A manifest stamped with any schema version but ours is refused
    /// with an error naming both versions — never silently migrated or
    /// re-initialised.
    #[test]
    fn version_bumped_manifest_is_refused(bump in 1u32..=u32::MAX - SCHEMA_VERSION) {
        let other = SCHEMA_VERSION + bump;
        let dir = TestDir::new("schema");
        std::fs::write(
            dir.path().join("MANIFEST"),
            format!("ginflow segment store\nschema {other}\n"),
        )
        .unwrap();
        let err = SegmentStore::open(dir.path(), DurabilityConfig::default())
            .err()
            .expect("incompatible schema must be refused");
        let text = err.to_string();
        prop_assert!(text.contains("incompatible"), "{}", text);
        prop_assert!(text.contains(&other.to_string()), "{}", text);
        prop_assert!(
            dir.path().join("MANIFEST").exists(),
            "refusal must not touch the dir"
        );
    }
}

/// Rotation + eviction under the broker API: every offset readable
/// across many sealed segments after reopen (deterministic companion to
/// the properties above).
#[test]
fn reopen_after_heavy_rotation_serves_every_offset() {
    let dir = TestDir::new("rotation");
    let total = 500u64;
    {
        let (broker, _) = LogBroker::open(dir.path(), small_segments()).unwrap();
        for i in 0..total {
            broker
                .publish("t", None, bytes::Bytes::from(format!("payload-{i:05}")))
                .unwrap();
        }
        broker.flush().unwrap();
    }
    let (broker, report) = LogBroker::open(dir.path(), small_segments()).unwrap();
    assert_eq!(report.messages, total);
    for from in [0u64, 1, 63, 64, 65, 250, total - 1] {
        let got = broker.fetch("t", 0, from, 7).unwrap();
        assert_eq!(got[0].offset, from);
        assert_eq!(got[0].payload_str(), format!("payload-{from:05}"));
        assert_eq!(got.len(), 7.min((total - from) as usize));
    }
}
