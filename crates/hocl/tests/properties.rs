//! Property-based tests for the HOCL engine: chemical semantics must hold
//! for arbitrary inputs and arbitrary (seeded) reduction orders.

use ginflow_hocl::prelude::*;
use proptest::prelude::*;

fn max_rule() -> Rule {
    Rule::builder("max")
        .lhs([Pattern::var("x"), Pattern::var("y")])
        .guard(Guard::ge(Expr::var("x"), Expr::var("y")))
        .rhs([Template::var("x")])
        .build()
}

proptest! {
    /// getMax extracts the maximum for any multiset of ints and any
    /// reduction order — the confluence argument of §III-A.
    #[test]
    fn getmax_is_confluent(values in prop::collection::vec(-1000i64..1000, 1..40), seed in 0u64..u64::MAX) {
        let expected = *values.iter().max().expect("non-empty");
        let mut sol = Solution::from_atoms(
            values.iter().copied().map(Atom::int).chain([Atom::rule(max_rule())]),
        );
        let mut engine = Engine::with_config(EngineConfig {
            shuffle_seed: Some(seed),
            ..EngineConfig::default()
        });
        let out = engine.reduce(&mut sol, &mut NoExterns).unwrap();
        prop_assert!(out.inert);
        let ints: Vec<i64> = sol.atoms().iter().filter_map(Atom::as_int).collect();
        prop_assert_eq!(ints, vec![expected]);
        // Exactly n-1 reactions happen, whatever the order.
        prop_assert_eq!(out.applications, (values.len() - 1) as u64);
    }

    /// Multiset equality is insensitive to permutation.
    #[test]
    fn multiset_equality_permutation_invariant(values in prop::collection::vec(0i64..20, 0..30), seed in 0u64..u64::MAX) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let ms1: Multiset = values.iter().copied().map(Atom::int).collect();
        let mut shuffled = values.clone();
        shuffled.shuffle(&mut rand::rngs::SmallRng::seed_from_u64(seed));
        let ms2: Multiset = shuffled.into_iter().map(Atom::int).collect();
        prop_assert_eq!(ms1, ms2);
    }

    /// Dropping one occurrence breaks equality (multiplicity sensitivity).
    #[test]
    fn multiset_multiplicity_matters(values in prop::collection::vec(0i64..20, 1..30)) {
        let ms1: Multiset = values.iter().copied().map(Atom::int).collect();
        let ms2: Multiset = values[1..].iter().copied().map(Atom::int).collect();
        prop_assert_ne!(ms1, ms2);
    }
}

// ---- parser round-trip on random atoms -------------------------------

fn arb_atom(depth: u32) -> impl Strategy<Value = Atom> {
    let leaf = prop_oneof![
        (-1_000_000i64..1_000_000).prop_map(Atom::int),
        any::<bool>().prop_map(Atom::bool),
        // Floats: finite, printed with a decimal point by the printer.
        (-1.0e6..1.0e6f64).prop_map(Atom::float),
        "[a-zA-Z][a-zA-Z0-9_]{0,8}'?".prop_map(Atom::sym),
        "[ -~]{0,12}".prop_map(Atom::str),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Atom::Tuple),
            prop::collection::vec(inner.clone(), 0..4).prop_map(Atom::list),
            prop::collection::vec(inner, 0..4).prop_map(Atom::sub),
        ]
    })
}

proptest! {
    /// pretty ∘ parse is the identity on solutions of arbitrary rule-free
    /// atoms.
    #[test]
    fn printer_parser_roundtrip(atoms in prop::collection::vec(arb_atom(3), 0..8)) {
        let sol = Solution::from_atoms(atoms);
        let printed = ginflow_hocl::printer::pretty_solution(&sol);
        let reparsed = ginflow_hocl::parser::parse_solution(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse {printed:?}: {e}"));
        prop_assert_eq!(sol, reparsed);
    }

    /// Serde JSON round-trip on arbitrary atoms.
    #[test]
    fn serde_roundtrip(atom in arb_atom(3)) {
        let json = serde_json::to_string(&atom).unwrap();
        let back: Atom = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(atom, back);
    }
}

// ---- one-shot semantics ----------------------------------------------

proptest! {
    /// A `replace-one` rule fires at most once no matter how many tokens
    /// could react.
    #[test]
    fn one_shot_fires_at_most_once(n in 1usize..30, seed in 0u64..u64::MAX) {
        let once = Rule::builder("once")
            .one_shot()
            .lhs([Pattern::sym("TOKEN")])
            .rhs([Template::sym("FIRED")])
            .build();
        let mut sol = Solution::from_atoms(
            std::iter::repeat_with(|| Atom::sym("TOKEN"))
                .take(n)
                .chain([Atom::rule(once)]),
        );
        let mut engine = Engine::with_config(EngineConfig {
            shuffle_seed: Some(seed),
            ..EngineConfig::default()
        });
        let out = engine.reduce(&mut sol, &mut NoExterns).unwrap();
        prop_assert!(out.inert);
        prop_assert_eq!(out.applications, 1);
        prop_assert_eq!(sol.atoms().count(&Atom::sym("FIRED")), 1);
        prop_assert_eq!(sol.atoms().count(&Atom::sym("TOKEN")), n - 1);
    }
}
