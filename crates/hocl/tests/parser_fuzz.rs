//! Parser robustness: arbitrary input must never panic — only return
//! errors — and structured mutations of valid programs must keep the
//! lexer/parser total.

use ginflow_hocl::lexer::lex;
use ginflow_hocl::{parse_program, parse_solution};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII never panics the lexer or parsers.
    #[test]
    fn arbitrary_ascii_never_panics(src in "[ -~\\n\\t]{0,200}") {
        let _ = lex(&src);
        let _ = parse_program(&src);
        let _ = parse_solution(&src);
    }

    /// Arbitrary token soup from the HOCL alphabet never panics.
    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop::sample::select(vec![
            "let", "replace", "replace-one", "with", "inject", "by", "if", "in",
            "nothing", "rule", "<", ">", "[", "]", "(", ")", ",", ":", "?", "*",
            "_", "==", "!=", "<=", ">=", "&&", "||", "!", "=", "x", "T1", "SRC",
            "42", "-7", "2.5", "\"s\"", "true", "false",
        ]),
        0..60,
    )) {
        let src = tokens.join(" ");
        let _ = parse_program(&src);
        let _ = parse_solution(&src);
    }

    /// Truncating a valid program at any byte never panics.
    #[test]
    fn truncation_never_panics(cut in 0usize..400) {
        let src = "let max = replace ?x, ?y by ?x if ?x >= ?y in \
                   let clean = replace-one <rule(max), *w> by ?w in \
                   <<2, 3, 5, 8, 9, max>, clean, T1:<SRC:<>, DST:<T2>, IN:<INPUT:\"d\">>>";
        let cut = cut.min(src.len());
        // Stay on a char boundary (ASCII source, so always true).
        let truncated = &src[..cut];
        let _ = parse_program(truncated);
    }
}

#[test]
fn deeply_nested_input_is_handled() {
    // 300 nested subsolutions: recursion depth must not blow the stack.
    let mut src = String::new();
    for _ in 0..300 {
        src.push('<');
    }
    src.push('1');
    for _ in 0..300 {
        src.push('>');
    }
    let parsed = parse_solution(&src);
    assert!(parsed.is_ok());
}

#[test]
fn pathological_but_valid_inputs() {
    // Empty solution, lone atoms, tuples of tuples.
    assert!(parse_solution("<>").is_ok());
    assert!(parse_solution("<((1:2):3):4>").is_ok());
    assert!(parse_solution("<[[[]]]>").is_ok());
    assert!(parse_solution("<a:b:c:d:e:f:g>").is_ok());
    // Things that must NOT parse.
    assert!(parse_solution("<?x>").is_err(), "variables are not atoms");
    assert!(parse_solution("<*w>").is_err(), "omegas are not atoms");
    assert!(
        parse_program("let r = replace ?x by ?x in").is_err(),
        "missing solution"
    );
}
