//! Edge cases of the reduction engine: deep nesting, multiple concurrent
//! suspensions, rule-producing rules, interleaved resume orders, and
//! pathological multisets.

use ginflow_hocl::prelude::*;
use ginflow_hocl::HoclError;

struct DeferAll;
impl ExternHost for DeferAll {
    fn call(
        &mut self,
        name: &str,
        _args: &[Atom],
    ) -> Result<ginflow_hocl::ExternResult, HoclError> {
        match name {
            "invoke" => Ok(ginflow_hocl::ExternResult::Deferred),
            other => Err(HoclError::UnknownExtern(other.to_owned())),
        }
    }
}

fn invoke_rule(tag: &str) -> Rule {
    Rule::builder(format!("call_{tag}"))
        .one_shot()
        .lhs([Pattern::keyed("JOB", [Pattern::lit(Atom::sym(tag))])])
        .rhs([Template::keyed(
            "RES",
            [Template::sub([Template::call(
                "invoke",
                [Template::sym(tag)],
            )])],
        )])
        .build()
}

#[test]
fn multiple_concurrent_suspensions_resume_in_any_order() {
    // Three independent jobs suspend; resuming out of order must fill the
    // right RES slots.
    let mut sol = Solution::from_atoms([
        Atom::keyed("JOB", [Atom::sym("a")]),
        Atom::keyed("JOB", [Atom::sym("b")]),
        Atom::keyed("JOB", [Atom::sym("c")]),
        Atom::rule(invoke_rule("a")),
        Atom::rule(invoke_rule("b")),
        Atom::rule(invoke_rule("c")),
    ]);
    let mut engine = Engine::new();
    let out = engine.reduce(&mut sol, &mut DeferAll).unwrap();
    assert_eq!(out.suspended.len(), 3);
    assert!(!out.inert);
    assert_eq!(sol.pending_ids().len(), 3);

    // Resume c, a, b.
    let by_arg =
        |out: &ginflow_hocl::engine::EffectInfo| out.args[0].as_sym().unwrap().as_str().to_owned();
    let mut effects = out.suspended.clone();
    effects.sort_by_key(|e| std::cmp::Reverse(by_arg(e)));
    for eff in &effects {
        let value = Atom::str(format!("result-{}", by_arg(eff)));
        engine
            .resume(&mut sol, eff.id, vec![value], &mut DeferAll)
            .unwrap();
    }
    let out = engine.reduce(&mut sol, &mut DeferAll).unwrap();
    assert!(out.inert);
    // Three RES atoms, each with its own payload.
    let res_count = sol
        .atoms()
        .iter()
        .filter(|a| a.tuple_key().map(|s| s.as_str()) == Some("RES"))
        .count();
    assert_eq!(res_count, 3);
    for tag in ["a", "b", "c"] {
        let expected = Atom::keyed("RES", [Atom::sub([Atom::str(format!("result-{tag}"))])]);
        assert!(sol.atoms().contains(&expected), "missing {expected}");
    }
}

#[test]
fn rule_producing_rules_chains() {
    // stage1 injects stage2, which injects the final token — a two-hop
    // higher-order chain (beyond the single-hop TRIGGER activation).
    let stage2 = Rule::builder("stage2")
        .one_shot()
        .lhs([Pattern::sym("GO2")])
        .rhs([Template::sym("DONE")])
        .build();
    let stage1 = Rule::builder("stage1")
        .one_shot()
        .lhs([Pattern::sym("GO1")])
        .rhs([Template::sym("GO2"), Template::rule(stage2)])
        .build();
    let mut sol = Solution::from_atoms([Atom::sym("GO1"), Atom::rule(stage1)]);
    let out = Engine::new().reduce(&mut sol, &mut NoExterns).unwrap();
    assert!(out.inert);
    assert!(sol.atoms().contains(&Atom::sym("DONE")));
    assert!(sol.atoms().rule_indices().is_empty(), "both one-shots gone");
}

#[test]
fn deep_nesting_reduces_bottom_up() {
    // ⟨⟨⟨2, 9, max⟩, lift⟩, lift⟩ — inner max reduces first, then each
    // lift extracts the survivor one level up.
    let max = Rule::builder("max")
        .lhs([Pattern::var("x"), Pattern::var("y")])
        .guard(Guard::ge(Expr::var("x"), Expr::var("y")))
        .rhs([Template::var("x")])
        .build();
    let lift = |n: &str| {
        Rule::builder(n)
            .one_shot()
            .lhs([Pattern::sub_with_rest(
                [Pattern::Typed(
                    "v".into(),
                    ginflow_hocl::pattern::TypeTag::Int,
                )],
                "w",
            )])
            .rhs([Template::var("v")])
            .build()
    };
    let level0 = Atom::sub([Atom::int(2), Atom::int(9), Atom::rule(max)]);
    let level1 = Atom::sub([level0, Atom::rule(lift("lift1"))]);
    let mut sol = Solution::from_atoms([level1, Atom::rule(lift("lift2"))]);
    let out = Engine::new().reduce(&mut sol, &mut NoExterns).unwrap();
    assert!(out.inert);
    assert!(sol.atoms().contains(&Atom::int(9)), "final: {sol}");
}

#[test]
fn guard_sees_cross_molecule_bindings() {
    // Pair (k : v) with THRESHOLD : t, keep v only if v >= t.
    let filter = Rule::builder("filter")
        .lhs([
            Pattern::tuple([Pattern::sym("KV"), Pattern::var("v")]),
            Pattern::keyed("THRESHOLD", [Pattern::var("t")]),
        ])
        .guard(Guard::ge(Expr::var("v"), Expr::var("t")))
        .rhs([
            Template::keyed("KEPT", [Template::var("v")]),
            Template::keyed("THRESHOLD", [Template::var("t")]),
        ])
        .build();
    let mut sol = Solution::from_atoms([
        Atom::keyed("KV", [Atom::int(3)]),
        Atom::keyed("KV", [Atom::int(10)]),
        Atom::keyed("THRESHOLD", [Atom::int(5)]),
        Atom::rule(filter),
    ]);
    Engine::new().reduce(&mut sol, &mut NoExterns).unwrap();
    assert!(sol.atoms().contains(&Atom::keyed("KEPT", [Atom::int(10)])));
    assert!(sol.atoms().contains(&Atom::keyed("KV", [Atom::int(3)])));
    assert!(!sol.atoms().contains(&Atom::keyed("KEPT", [Atom::int(3)])));
}

#[test]
fn large_flat_multiset_terminates() {
    // 2 000 integers, one recurring max rule — stress the scan paths.
    let max = Rule::builder("max")
        .lhs([Pattern::var("x"), Pattern::var("y")])
        .guard(Guard::ge(Expr::var("x"), Expr::var("y")))
        .rhs([Template::var("x")])
        .build();
    let mut sol = Solution::from_atoms((0..2000i64).map(Atom::int).chain([Atom::rule(max)]));
    let mut engine = Engine::with_config(EngineConfig {
        max_steps: 10_000,
        shuffle_seed: None,
    });
    let out = engine.reduce(&mut sol, &mut NoExterns).unwrap();
    assert!(out.inert);
    assert_eq!(out.applications, 1999);
    assert!(sol.atoms().contains(&Atom::int(1999)));
}

#[test]
fn resume_then_new_reactions_cascade() {
    // After a resume, freshly enabled rules must run in the next reduce:
    // the RES produced by the resume triggers a follow-up rule.
    let followup = Rule::builder("followup")
        .one_shot()
        .lhs([Pattern::keyed(
            "RES",
            [Pattern::sub_with_rest([Pattern::var("r")], "w")],
        )])
        .rhs([Template::keyed("FINAL", [Template::var("r")])])
        .build();
    let mut sol = Solution::from_atoms([
        Atom::keyed("JOB", [Atom::sym("a")]),
        Atom::rule(invoke_rule("a")),
        Atom::rule(followup),
    ]);
    let mut engine = Engine::new();
    let out = engine.reduce(&mut sol, &mut DeferAll).unwrap();
    let eff = &out.suspended[0];
    engine
        .resume(&mut sol, eff.id, vec![Atom::int(42)], &mut DeferAll)
        .unwrap();
    let out = engine.reduce(&mut sol, &mut DeferAll).unwrap();
    assert!(out.inert);
    assert!(sol.atoms().contains(&Atom::keyed("FINAL", [Atom::int(42)])));
}

#[test]
fn double_resume_rejected() {
    let mut sol = Solution::from_atoms([
        Atom::keyed("JOB", [Atom::sym("a")]),
        Atom::rule(invoke_rule("a")),
    ]);
    let mut engine = Engine::new();
    let out = engine.reduce(&mut sol, &mut DeferAll).unwrap();
    let id = out.suspended[0].id;
    engine
        .resume(&mut sol, id, vec![Atom::int(1)], &mut DeferAll)
        .unwrap();
    let err = engine
        .resume(&mut sol, id, vec![Atom::int(2)], &mut DeferAll)
        .unwrap_err();
    assert!(matches!(err, HoclError::UnknownEffect(_)));
}

#[test]
fn omega_can_capture_rules() {
    // ω must treat rules like any other molecule: wrap a rule and data
    // into a fresh subsolution.
    let wrap = Rule::builder("wrap")
        .one_shot()
        .lhs([Pattern::sub_rest("w")])
        .rhs([Template::keyed(
            "BOXED",
            [Template::sub([Template::var("w")])],
        )])
        .build();
    let max = Rule::builder("max")
        .lhs([Pattern::var("x"), Pattern::var("y")])
        .guard(Guard::ge(Expr::var("x"), Expr::var("y")))
        .rhs([Template::var("x")])
        .build();
    let inner = Atom::sub([Atom::int(1), Atom::rule(max.clone())]);
    let mut sol = Solution::from_atoms([inner, Atom::rule(wrap)]);
    Engine::new().reduce(&mut sol, &mut NoExterns).unwrap();
    let boxed = sol
        .atoms()
        .find(|a| a.tuple_key().map(|s| s.as_str()) == Some("BOXED"))
        .expect("wrapped");
    let body = boxed.as_tuple().unwrap()[1].as_sub().unwrap();
    assert_eq!(body.rule_indices().len(), 1);
    assert!(body.contains(&Atom::int(1)));
}
