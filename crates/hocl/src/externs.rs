//! External functions — HOCL's escape hatch to the host system.
//!
//! The original HOCL interpreter could call Java methods from rules; GinFlow
//! uses that to invoke services (`invoke(s, params)`) and, in decentralised
//! mode, to send messages between agents. We model three behaviours behind a
//! single trait:
//!
//! * **pure** calls return atoms immediately and have no side effects
//!   (usable in guards);
//! * **command** calls have a side effect on the host (e.g. enqueue an
//!   outgoing message) and return atoms immediately (usually none);
//! * **deferred** calls cannot complete synchronously: the host returns
//!   [`ExternResult::Deferred`], the engine suspends the rule application
//!   and hands back an [`crate::engine::StepOutcome::Suspended`] effect that
//!   the runtime later resolves via `Engine::resume`.

use crate::atom::Atom;
use crate::error::HoclError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a suspended (deferred) rule application.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EffectId(pub u64);

/// Result of one extern call.
pub enum ExternResult {
    /// The call completed; these atoms are spliced at the call site.
    Atoms(Vec<Atom>),
    /// The call cannot complete now; suspend the rule application.
    Deferred,
}

/// The host interface the engine calls external functions through.
///
/// A host is passed to every `reduce`/`resume` call, which keeps the engine
/// itself free of callbacks and threads: the *caller* decides what `invoke`
/// or `send` mean in its world (synchronous call, thread pool, simulated
/// event, …).
pub trait ExternHost {
    /// Execute the named extern on the given argument atoms.
    fn call(&mut self, name: &str, args: &[Atom]) -> Result<ExternResult, HoclError>;
}

/// A host providing no externs at all. Rules that avoid extern calls (such
/// as the paper's `getMax`) reduce fine with it.
pub struct NoExterns;

impl ExternHost for NoExterns {
    fn call(&mut self, name: &str, _args: &[Atom]) -> Result<ExternResult, HoclError> {
        Err(HoclError::UnknownExtern(name.to_owned()))
    }
}

/// Signature of a pure extern function.
pub type PureFn = fn(&[Atom]) -> Result<Vec<Atom>, HoclError>;

/// A registry of *pure* externs with the built-ins every GinFlow deployment
/// needs, usable standalone or embedded in a bigger host (delegate to
/// [`PureExterns::call`] as a fallback).
///
/// Built-ins:
///
/// | name       | behaviour                                                      |
/// |------------|----------------------------------------------------------------|
/// | `list`     | wrap all argument atoms into one list atom (paper's `list(ω)`); provenance-tagged `from : value` pairs are sorted by tag and unwrapped |
/// | `concat`   | string concatenation                                           |
/// | `len`      | length of a list / string / subsolution                        |
/// | `add`/`sub`/`mul` | integer (or float) arithmetic                           |
/// | `first`    | head of a list                                                 |
/// | `is_error` | `true` iff the single argument is the `ERROR` symbol           |
pub struct PureExterns {
    fns: HashMap<String, PureFn>,
}

impl Default for PureExterns {
    fn default() -> Self {
        Self::new()
    }
}

impl PureExterns {
    /// Registry preloaded with the built-ins listed in the type docs.
    pub fn new() -> Self {
        let mut fns: HashMap<String, PureFn> = HashMap::new();
        fns.insert("list".into(), builtin_list);
        fns.insert("concat".into(), builtin_concat);
        fns.insert("len".into(), builtin_len);
        fns.insert("add".into(), builtin_add);
        fns.insert("sub".into(), builtin_sub);
        fns.insert("mul".into(), builtin_mul);
        fns.insert("first".into(), builtin_first);
        fns.insert("is_error".into(), builtin_is_error);
        PureExterns { fns }
    }

    /// Register (or replace) a pure extern.
    pub fn register(&mut self, name: impl Into<String>, f: PureFn) {
        self.fns.insert(name.into(), f);
    }

    /// Does the registry provide `name`?
    pub fn provides(&self, name: &str) -> bool {
        self.fns.contains_key(name)
    }
}

impl ExternHost for PureExterns {
    fn call(&mut self, name: &str, args: &[Atom]) -> Result<ExternResult, HoclError> {
        match self.fns.get(name) {
            Some(f) => f(args).map(ExternResult::Atoms),
            None => Err(HoclError::UnknownExtern(name.to_owned())),
        }
    }
}

/// `list(ω)` — build the service parameter list.
///
/// GinFlow tags every datum entering `IN` with its provenance (`T1 : value`
/// tuples; workflow-initial inputs use the `INPUT` tag). `list` sorts the
/// tagged pairs by tag for a *deterministic* parameter order — the paper
/// leaves multiset order unspecified — strips the tags, and wraps the values
/// into a single list atom. Untagged atoms are passed through as-is.
fn builtin_list(args: &[Atom]) -> Result<Vec<Atom>, HoclError> {
    let mut tagged: Vec<(String, Atom)> = Vec::with_capacity(args.len());
    for a in args {
        match a {
            Atom::Tuple(v) if v.len() == 2 && v[0].as_sym().is_some() => {
                tagged.push((
                    v[0].as_sym().expect("checked").as_str().to_owned(),
                    v[1].clone(),
                ));
            }
            other => tagged.push((String::new(), other.clone())),
        }
    }
    tagged.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(vec![Atom::List(
        tagged.into_iter().map(|(_, v)| v).collect(),
    )])
}

fn builtin_concat(args: &[Atom]) -> Result<Vec<Atom>, HoclError> {
    let mut out = String::new();
    for a in args {
        match a {
            Atom::Str(s) => out.push_str(s),
            other => out.push_str(&other.to_string()),
        }
    }
    Ok(vec![Atom::Str(out)])
}

fn builtin_len(args: &[Atom]) -> Result<Vec<Atom>, HoclError> {
    match args {
        [Atom::List(v)] => Ok(vec![Atom::Int(v.len() as i64)]),
        [Atom::Str(s)] => Ok(vec![Atom::Int(s.len() as i64)]),
        [Atom::Sub(ms)] => Ok(vec![Atom::Int(ms.len() as i64)]),
        _ => Err(HoclError::ExternFailed {
            name: "len".into(),
            reason: "expected one list, string or subsolution".into(),
        }),
    }
}

fn numeric_fold(
    name: &str,
    args: &[Atom],
    int_op: fn(i64, i64) -> i64,
    float_op: fn(f64, f64) -> f64,
) -> Result<Vec<Atom>, HoclError> {
    let mut iter = args.iter();
    let mut acc = iter
        .next()
        .cloned()
        .ok_or_else(|| HoclError::ExternFailed {
            name: name.to_owned(),
            reason: "needs at least one argument".into(),
        })?;
    for a in iter {
        acc = match (acc, a) {
            (Atom::Int(x), Atom::Int(y)) => Atom::Int(int_op(x, *y)),
            (Atom::Float(x), Atom::Float(y)) => Atom::Float(float_op(x, *y)),
            (Atom::Int(x), Atom::Float(y)) => Atom::Float(float_op(x as f64, *y)),
            (Atom::Float(x), Atom::Int(y)) => Atom::Float(float_op(x, *y as f64)),
            _ => {
                return Err(HoclError::ExternFailed {
                    name: name.to_owned(),
                    reason: "non-numeric argument".into(),
                })
            }
        };
    }
    Ok(vec![acc])
}

fn builtin_add(args: &[Atom]) -> Result<Vec<Atom>, HoclError> {
    numeric_fold("add", args, i64::wrapping_add, |a, b| a + b)
}

fn builtin_sub(args: &[Atom]) -> Result<Vec<Atom>, HoclError> {
    numeric_fold("sub", args, i64::wrapping_sub, |a, b| a - b)
}

fn builtin_mul(args: &[Atom]) -> Result<Vec<Atom>, HoclError> {
    numeric_fold("mul", args, i64::wrapping_mul, |a, b| a * b)
}

fn builtin_first(args: &[Atom]) -> Result<Vec<Atom>, HoclError> {
    match args {
        [Atom::List(v)] if !v.is_empty() => Ok(vec![v[0].clone()]),
        _ => Err(HoclError::ExternFailed {
            name: "first".into(),
            reason: "expected one non-empty list".into(),
        }),
    }
}

fn builtin_is_error(args: &[Atom]) -> Result<Vec<Atom>, HoclError> {
    match args {
        [a] => Ok(vec![Atom::Bool(
            a.as_sym()
                .map(|s| s.as_str() == crate::symbol::keywords::ERROR)
                == Some(true),
        )]),
        _ => Err(HoclError::ExternFailed {
            name: "is_error".into(),
            reason: "expected exactly one argument".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(host: &mut PureExterns, name: &str, args: &[Atom]) -> Vec<Atom> {
        match host.call(name, args).unwrap() {
            ExternResult::Atoms(v) => v,
            ExternResult::Deferred => panic!("pure extern deferred"),
        }
    }

    #[test]
    fn list_sorts_by_provenance_and_strips_tags() {
        let mut h = PureExterns::new();
        let out = call(
            &mut h,
            "list",
            &[
                Atom::tuple([Atom::sym("T3"), Atom::str("c")]),
                Atom::tuple([Atom::sym("T1"), Atom::str("a")]),
                Atom::tuple([Atom::sym("T2"), Atom::str("b")]),
            ],
        );
        assert_eq!(
            out,
            vec![Atom::list([Atom::str("a"), Atom::str("b"), Atom::str("c")])]
        );
    }

    #[test]
    fn list_passes_untagged_atoms_through() {
        let mut h = PureExterns::new();
        let out = call(&mut h, "list", &[Atom::int(7)]);
        assert_eq!(out, vec![Atom::list([Atom::int(7)])]);
    }

    #[test]
    fn arithmetic_and_strings() {
        let mut h = PureExterns::new();
        assert_eq!(
            call(&mut h, "add", &[Atom::int(2), Atom::int(3)]),
            vec![Atom::int(5)]
        );
        assert_eq!(
            call(&mut h, "mul", &[Atom::int(2), Atom::float(1.5)]),
            vec![Atom::float(3.0)]
        );
        assert_eq!(
            call(&mut h, "concat", &[Atom::str("a"), Atom::str("b")]),
            vec![Atom::str("ab")]
        );
        assert_eq!(
            call(&mut h, "len", &[Atom::list([Atom::int(1), Atom::int(2)])]),
            vec![Atom::int(2)]
        );
    }

    #[test]
    fn is_error_detects_the_error_symbol() {
        let mut h = PureExterns::new();
        assert_eq!(
            call(&mut h, "is_error", &[Atom::sym("ERROR")]),
            vec![Atom::bool(true)]
        );
        assert_eq!(
            call(&mut h, "is_error", &[Atom::str("ok")]),
            vec![Atom::bool(false)]
        );
    }

    #[test]
    fn unknown_extern_errors() {
        let mut h = PureExterns::new();
        assert!(matches!(
            h.call("nope", &[]),
            Err(HoclError::UnknownExtern(_))
        ));
        assert!(matches!(
            NoExterns.call("list", &[]),
            Err(HoclError::UnknownExtern(_))
        ));
    }

    #[test]
    fn custom_registration() {
        let mut h = PureExterns::new();
        h.register("answer", |_| Ok(vec![Atom::int(42)]));
        assert!(h.provides("answer"));
        assert_eq!(call(&mut h, "answer", &[]), vec![Atom::int(42)]);
    }
}
