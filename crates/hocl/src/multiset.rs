//! The multiset (chemical solution) data structure.
//!
//! A multiset stores atoms with multiplicity and no ordering semantics.
//! Internally atoms live in a `Vec` (stable insertion order gives the engine
//! a deterministic default traversal), but *equality is order-insensitive*,
//! as chemistry demands.

use crate::atom::Atom;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A multiset of [`Atom`]s.
#[derive(Clone, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Multiset {
    atoms: Vec<Atom>,
}

impl Multiset {
    /// The empty solution `⟨⟩`.
    pub fn new() -> Self {
        Multiset { atoms: Vec::new() }
    }

    /// With pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Multiset {
            atoms: Vec::with_capacity(cap),
        }
    }

    /// Number of atoms (with multiplicity).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Is the solution empty?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Add one atom.
    pub fn insert(&mut self, atom: Atom) {
        self.atoms.push(atom);
    }

    /// Add many atoms.
    pub fn extend(&mut self, atoms: impl IntoIterator<Item = Atom>) {
        self.atoms.extend(atoms);
    }

    /// Remove the atom at `index` (swap-remove is *not* used: rule semantics
    /// benefit from stable order for deterministic engines).
    pub fn remove_at(&mut self, index: usize) -> Atom {
        self.atoms.remove(index)
    }

    /// Remove a set of indices (deduplicated, any order). Returns the removed
    /// atoms in descending index order.
    pub fn remove_indices(&mut self, indices: &mut Vec<usize>) -> Vec<Atom> {
        indices.sort_unstable();
        indices.dedup();
        let mut removed = Vec::with_capacity(indices.len());
        for &i in indices.iter().rev() {
            removed.push(self.atoms.remove(i));
        }
        removed
    }

    /// Remove the first atom equal to `atom`. Returns whether one was found.
    pub fn remove_value(&mut self, atom: &Atom) -> bool {
        if let Some(pos) = self.atoms.iter().position(|a| a == atom) {
            self.atoms.remove(pos);
            true
        } else {
            false
        }
    }

    /// Multiplicity of `atom`.
    pub fn count(&self, atom: &Atom) -> usize {
        self.atoms.iter().filter(|a| *a == atom).count()
    }

    /// Does the solution contain at least one `atom`?
    pub fn contains(&self, atom: &Atom) -> bool {
        self.atoms.iter().any(|a| a == atom)
    }

    /// Borrowing iterator in internal (insertion) order.
    pub fn iter(&self) -> std::slice::Iter<'_, Atom> {
        self.atoms.iter()
    }

    /// Mutable iterator in internal order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Atom> {
        self.atoms.iter_mut()
    }

    /// Read access by index (internal order).
    pub fn get(&self, index: usize) -> Option<&Atom> {
        self.atoms.get(index)
    }

    /// Mutable access by index (internal order).
    pub fn get_mut(&mut self, index: usize) -> Option<&mut Atom> {
        self.atoms.get_mut(index)
    }

    /// Underlying slice, insertion order.
    pub fn as_slice(&self) -> &[Atom] {
        &self.atoms
    }

    /// Drain all atoms out of the solution.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Atom> {
        self.atoms.drain(..)
    }

    /// Keep only atoms satisfying the predicate.
    pub fn retain(&mut self, f: impl FnMut(&Atom) -> bool) {
        self.atoms.retain(f);
    }

    /// Index of the first atom satisfying the predicate.
    pub fn position(&self, f: impl FnMut(&Atom) -> bool) -> Option<usize> {
        self.atoms.iter().position(f)
    }

    /// First atom satisfying the predicate.
    pub fn find(&self, mut f: impl FnMut(&Atom) -> bool) -> Option<&Atom> {
        self.atoms.iter().find(|a| f(a))
    }

    /// Multiset union (concatenation).
    pub fn union(mut self, other: Multiset) -> Multiset {
        self.atoms.extend(other.atoms);
        self
    }

    /// Total structural weight (number of atoms counting nesting). The
    /// simulator charges matching cost proportional to this.
    pub fn weight(&self) -> usize {
        self.atoms.iter().map(Atom::weight).sum()
    }

    /// Indices of all rule atoms, in internal order.
    pub fn rule_indices(&self) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_rule())
            .map(|(i, _)| i)
            .collect()
    }

    /// Convenience: the contents of the tuple `KEY : ⟨…⟩` if present.
    ///
    /// Many HOCLflow operations peek at a keyed subsolution (e.g. the `SRC`
    /// set) without running the matcher; this helper is their fast path.
    pub fn keyed_sub(&self, key: &str) -> Option<&Multiset> {
        self.atoms.iter().find_map(|a| match a {
            Atom::Tuple(v) if v.len() == 2 => match (&v[0], &v[1]) {
                (Atom::Sym(s), Atom::Sub(ms)) if s.as_str() == key => Some(ms),
                _ => None,
            },
            _ => None,
        })
    }

    /// Mutable variant of [`Multiset::keyed_sub`].
    pub fn keyed_sub_mut(&mut self, key: &str) -> Option<&mut Multiset> {
        self.atoms.iter_mut().find_map(|a| match a {
            Atom::Tuple(v) if v.len() == 2 => {
                let is_key = matches!(&v[0], Atom::Sym(s) if s.as_str() == key);
                if is_key {
                    match &mut v[1] {
                        Atom::Sub(ms) => Some(ms),
                        _ => None,
                    }
                } else {
                    None
                }
            }
            _ => None,
        })
    }
}

impl PartialEq for Multiset {
    /// Order-insensitive, multiplicity-sensitive equality.
    fn eq(&self, other: &Self) -> bool {
        if self.atoms.len() != other.atoms.len() {
            return false;
        }
        // O(n²) matching; solutions compared in practice are small. A used
        // flag per right-hand atom guarantees multiplicities line up.
        let mut used = vec![false; other.atoms.len()];
        'outer: for a in &self.atoms {
            for (j, b) in other.atoms.iter().enumerate() {
                if !used[j] && a == b {
                    used[j] = true;
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }
}

impl FromIterator<Atom> for Multiset {
    fn from_iter<T: IntoIterator<Item = Atom>>(iter: T) -> Self {
        Multiset {
            atoms: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Multiset {
    type Item = Atom;
    type IntoIter = std::vec::IntoIter<Atom>;
    fn into_iter(self) -> Self::IntoIter {
        self.atoms.into_iter()
    }
}

impl<'a> IntoIterator for &'a Multiset {
    type Item = &'a Atom;
    type IntoIter = std::slice::Iter<'a, Atom>;
    fn into_iter(self) -> Self::IntoIter {
        self.atoms.iter()
    }
}

impl fmt::Display for Multiset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("<")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(">")
    }
}

impl fmt::Debug for Multiset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: impl IntoIterator<Item = i64>) -> Multiset {
        v.into_iter().map(Atom::int).collect()
    }

    #[test]
    fn insert_remove_count() {
        let mut m = Multiset::new();
        m.insert(Atom::int(1));
        m.insert(Atom::int(1));
        m.insert(Atom::int(2));
        assert_eq!(m.len(), 3);
        assert_eq!(m.count(&Atom::int(1)), 2);
        assert!(m.remove_value(&Atom::int(1)));
        assert_eq!(m.count(&Atom::int(1)), 1);
        assert!(!m.remove_value(&Atom::int(9)));
    }

    #[test]
    fn equality_ignores_order_but_not_multiplicity() {
        assert_eq!(ms([1, 2, 3]), ms([3, 1, 2]));
        assert_ne!(ms([1, 1, 2]), ms([1, 2, 2]));
        assert_ne!(ms([1]), ms([1, 1]));
    }

    #[test]
    fn remove_indices_descending() {
        let mut m = ms([10, 20, 30, 40]);
        let mut idx = vec![0, 2];
        let removed = m.remove_indices(&mut idx);
        assert_eq!(removed, vec![Atom::int(30), Atom::int(10)]);
        assert_eq!(m, ms([20, 40]));
    }

    #[test]
    fn keyed_sub_lookup() {
        let mut m = Multiset::new();
        m.insert(Atom::keyed("SRC", [Atom::sub([Atom::sym("T1")])]));
        m.insert(Atom::keyed("DST", [Atom::empty_sub()]));
        assert_eq!(m.keyed_sub("SRC").unwrap().len(), 1);
        assert!(m.keyed_sub("DST").unwrap().is_empty());
        assert!(m.keyed_sub("RES").is_none());
        m.keyed_sub_mut("DST").unwrap().insert(Atom::sym("T9"));
        assert_eq!(m.keyed_sub("DST").unwrap().len(), 1);
    }

    #[test]
    fn union_and_weight() {
        let m = ms([1, 2]).union(ms([3]));
        assert_eq!(m.len(), 3);
        let mut nested = Multiset::new();
        nested.insert(Atom::sub([Atom::int(1), Atom::int(2)]));
        assert_eq!(nested.weight(), 3);
    }

    #[test]
    fn display_notation() {
        let m = ms([1, 2]);
        assert_eq!(format!("{m}"), "<1, 2>");
    }
}
