//! Templates: the right-hand side of reaction rules.
//!
//! Applying a rule instantiates its templates under the match bindings and
//! inserts the produced atoms into the solution. ω bindings splice (expand
//! to several atoms) wherever a variable number of atoms is legal: the rule
//! RHS itself, subsolution bodies, list bodies and extern argument lists —
//! but not tuple elements.

use crate::atom::Atom;
use crate::bindings::{Binding, Bindings};
use crate::error::HoclError;
use crate::externs::{ExternHost, ExternResult};
use crate::rule::Rule;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A template producing one or more atoms.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub enum Template {
    /// Produce this literal atom.
    Lit(Atom),
    /// Produce the binding of a variable. A [`Binding::Many`] (ω) binding
    /// splices all its atoms; this is only legal in splicing positions.
    Var(String),
    /// Produce a tuple from element templates (each must yield one atom).
    Tuple(Vec<Template>),
    /// Produce a subsolution; ω splices are legal inside.
    Sub(Vec<Template>),
    /// Produce a list; ω splices are legal inside.
    List(Vec<Template>),
    /// Call an external function; its result atoms are spliced in place.
    /// If the host defers the call, the whole rule application suspends.
    Call(String, Vec<Template>),
    /// Produce a rule atom (higher-order injection — how `TRIGGER`
    /// activation plants `gw_setup`/`gw_call` into a standby task).
    RuleLit(Arc<Rule>),
}

impl Template {
    /// Literal template.
    pub fn lit(atom: impl Into<Atom>) -> Self {
        Template::Lit(atom.into())
    }

    /// Literal symbol template.
    pub fn sym(name: impl AsRef<str>) -> Self {
        Template::Lit(Atom::sym(name))
    }

    /// Variable template.
    pub fn var(name: impl Into<String>) -> Self {
        Template::Var(name.into())
    }

    /// Tuple template.
    pub fn tuple(elems: impl IntoIterator<Item = Template>) -> Self {
        let v: Vec<Template> = elems.into_iter().collect();
        assert!(v.len() >= 2, "a tuple template needs at least two elements");
        Template::Tuple(v)
    }

    /// Keyed tuple template `KEY : t…`.
    pub fn keyed(key: impl AsRef<str>, rest: impl IntoIterator<Item = Template>) -> Self {
        let mut v = vec![Template::sym(key)];
        v.extend(rest);
        Template::tuple(v)
    }

    /// Subsolution template.
    pub fn sub(elems: impl IntoIterator<Item = Template>) -> Self {
        Template::Sub(elems.into_iter().collect())
    }

    /// Empty subsolution template `⟨⟩`.
    pub fn empty_sub() -> Self {
        Template::Sub(Vec::new())
    }

    /// Extern call template.
    pub fn call(name: impl Into<String>, args: impl IntoIterator<Item = Template>) -> Self {
        Template::Call(name.into(), args.into_iter().collect())
    }

    /// Rule atom template.
    pub fn rule(rule: Rule) -> Self {
        Template::RuleLit(Arc::new(rule))
    }

    /// Rule atom template from a shared rule.
    pub fn rule_arc(rule: Arc<Rule>) -> Self {
        Template::RuleLit(rule)
    }

    /// Number of `Call` nodes in this template (used by the engine to locate
    /// the deferred call when resuming a suspended application).
    pub fn count_calls(&self) -> usize {
        match self {
            Template::Call(_, args) => 1 + args.iter().map(Template::count_calls).sum::<usize>(),
            Template::Tuple(v) | Template::Sub(v) | Template::List(v) => {
                v.iter().map(Template::count_calls).sum()
            }
            _ => 0,
        }
    }
}

/// Instantiation context threading the extern host, the deferred-call
/// bookkeeping and the running call counter through the template tree.
pub struct Instantiator<'h> {
    /// The extern host used for `Call` templates.
    pub host: &'h mut dyn ExternHost,
    /// Traversal index of the next `Call` node encountered.
    call_index: usize,
    /// If set, the call at this index is *not* executed: `resume_atoms` are
    /// spliced instead (resume path of a suspended application).
    substitute_call: Option<usize>,
    /// Atoms to splice at `substitute_call`.
    resume_atoms: Vec<Atom>,
    /// Set when the host deferred a call: its traversal index.
    deferred_at: Option<usize>,
    /// Name and evaluated arguments of the deferred call.
    pending_call: Option<(String, Vec<Atom>)>,
    /// Count of extern calls already executed (side effects!) before a
    /// deferral was hit — must be zero for a safe suspension.
    effects_before_deferral: usize,
}

/// Result of instantiating a full RHS.
#[derive(Debug)]
pub enum Produced {
    /// All templates instantiated; insert these atoms.
    Atoms(Vec<Atom>),
    /// A deferred extern was encountered at this call traversal index.
    /// Nothing may be inserted; the engine must suspend.
    Deferred {
        /// Traversal index of the deferred `Call` node.
        call_index: usize,
        /// The evaluated arguments of the deferred call.
        args: Vec<Atom>,
        /// Name of the deferred extern.
        name: String,
    },
}

impl<'h> Instantiator<'h> {
    /// Fresh instantiator for a first (probe) pass.
    pub fn new(host: &'h mut dyn ExternHost) -> Self {
        Instantiator {
            host,
            call_index: 0,
            substitute_call: None,
            resume_atoms: Vec::new(),
            deferred_at: None,
            pending_call: None,
            effects_before_deferral: 0,
        }
    }

    /// Instantiator for the resume pass: the call at `call_index` is
    /// replaced by `atoms` instead of being executed.
    pub fn resuming(host: &'h mut dyn ExternHost, call_index: usize, atoms: Vec<Atom>) -> Self {
        Instantiator {
            host,
            call_index: 0,
            substitute_call: Some(call_index),
            resume_atoms: atoms,
            deferred_at: None,
            pending_call: None,
            effects_before_deferral: 0,
        }
    }

    /// Instantiate a full RHS (a sequence of templates) under `bindings`.
    pub fn produce(
        &mut self,
        templates: &[Template],
        bindings: &Bindings,
    ) -> Result<Produced, HoclError> {
        let mut out = Vec::with_capacity(templates.len());
        for t in templates {
            self.eval_splice(t, bindings, &mut out)?;
            if let Some(idx) = self.deferred_at {
                let (name, args) = self
                    .pending_call
                    .take()
                    .expect("deferred_at implies pending_call");
                if self.effects_before_deferral > 0 {
                    return Err(HoclError::MultipleDeferred(name));
                }
                return Ok(Produced::Deferred {
                    call_index: idx,
                    args,
                    name,
                });
            }
        }
        Ok(Produced::Atoms(out))
    }

    /// Evaluate one template into `out`, splicing ω bindings and extern
    /// results (several atoms allowed).
    fn eval_splice(
        &mut self,
        t: &Template,
        bindings: &Bindings,
        out: &mut Vec<Atom>,
    ) -> Result<(), HoclError> {
        match t {
            Template::Lit(a) => out.push(a.clone()),
            Template::RuleLit(r) => out.push(Atom::Rule(r.clone())),
            Template::Var(name) => match bindings.get(name) {
                Some(Binding::One(a)) => out.push(a.clone()),
                Some(Binding::Many(v)) => out.extend(v.iter().cloned()),
                None => return Err(HoclError::UnboundVar(name.clone())),
            },
            Template::Tuple(elems) => {
                let mut tup = Vec::with_capacity(elems.len());
                for e in elems {
                    let a = self.eval_one(e, bindings)?;
                    if self.deferred_at.is_some() {
                        return Ok(());
                    }
                    tup.push(a);
                }
                out.push(Atom::Tuple(tup));
            }
            Template::Sub(elems) => {
                let mut inner = Vec::new();
                for e in elems {
                    self.eval_splice(e, bindings, &mut inner)?;
                    if self.deferred_at.is_some() {
                        return Ok(());
                    }
                }
                out.push(Atom::sub(inner));
            }
            Template::List(elems) => {
                let mut inner = Vec::new();
                for e in elems {
                    self.eval_splice(e, bindings, &mut inner)?;
                    if self.deferred_at.is_some() {
                        return Ok(());
                    }
                }
                out.push(Atom::List(inner));
            }
            Template::Call(name, args) => {
                let my_index = self.call_index;
                self.call_index += 1;
                // Evaluate arguments first (depth-first, so nested calls get
                // lower indices than their parent... no: parent reserves its
                // index before recursing, matching `count_calls` traversal).
                let mut arg_atoms = Vec::with_capacity(args.len());
                for a in args {
                    self.eval_splice(a, bindings, &mut arg_atoms)?;
                    if self.deferred_at.is_some() {
                        return Ok(());
                    }
                }
                if self.substitute_call == Some(my_index) {
                    out.extend(std::mem::take(&mut self.resume_atoms));
                    return Ok(());
                }
                match self.host.call(name, &arg_atoms)? {
                    ExternResult::Atoms(atoms) => {
                        self.effects_before_deferral += 1;
                        out.extend(atoms);
                    }
                    ExternResult::Deferred => {
                        self.deferred_at = Some(my_index);
                        self.pending_call = Some((name.clone(), arg_atoms));
                    }
                }
            }
        }
        Ok(())
    }

    /// Evaluate a template that must yield exactly one atom (tuple element).
    fn eval_one(&mut self, t: &Template, bindings: &Bindings) -> Result<Atom, HoclError> {
        let mut buf = Vec::with_capacity(1);
        self.eval_splice(t, bindings, &mut buf)?;
        if self.deferred_at.is_some() {
            // Deferral bubbles up; caller checks the flag. Return dummy.
            return Ok(Atom::Bool(false));
        }
        match buf.len() {
            1 => Ok(buf.pop().expect("len checked")),
            _ => {
                let what = match t {
                    Template::Var(v) => v.clone(),
                    _ => format!("{t}"),
                };
                Err(HoclError::OmegaInScalarPosition(what))
            }
        }
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Template::Lit(a) => write!(f, "{a}"),
            Template::Var(v) => write!(f, "?{v}"),
            Template::Tuple(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(":")?;
                    }
                    match t {
                        Template::Tuple(_) => write!(f, "({t})")?,
                        _ => write!(f, "{t}")?,
                    }
                }
                Ok(())
            }
            Template::Sub(ts) => {
                f.write_str("<")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str(">")
            }
            Template::List(ts) => {
                f.write_str("[")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{t}")?;
                }
                f.write_str("]")
            }
            Template::Call(n, args) => {
                write!(f, "{n}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Template::RuleLit(r) => write!(f, "{}", r.name()),
        }
    }
}

impl fmt::Debug for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::externs::{NoExterns, PureExterns};

    fn bindings(pairs: &[(&str, Binding)]) -> Bindings {
        let mut b = Bindings::new();
        for (k, v) in pairs {
            match v {
                Binding::One(a) => assert!(b.bind_one(k, a.clone())),
                Binding::Many(v) => assert!(b.bind_many(k, v.clone())),
            }
        }
        b
    }

    fn produce(ts: &[Template], b: &Bindings) -> Vec<Atom> {
        let mut host = PureExterns::new();
        let mut inst = Instantiator::new(&mut host);
        match inst.produce(ts, b).unwrap() {
            Produced::Atoms(v) => v,
            Produced::Deferred { .. } => panic!("unexpected deferral"),
        }
    }

    #[test]
    fn literals_and_vars() {
        let b = bindings(&[("x", Binding::One(Atom::int(7)))]);
        let out = produce(&[Template::lit(1i64), Template::var("x")], &b);
        assert_eq!(out, vec![Atom::int(1), Atom::int(7)]);
    }

    #[test]
    fn omega_splices_in_sub() {
        let b = bindings(&[("w", Binding::Many(vec![Atom::int(1), Atom::int(2)]))]);
        let out = produce(
            &[Template::keyed("IN", [Template::sub([Template::var("w")])])],
            &b,
        );
        assert_eq!(
            out,
            vec![Atom::keyed("IN", [Atom::sub([Atom::int(1), Atom::int(2)])])]
        );
    }

    #[test]
    fn omega_splices_at_top_level() {
        // The `clean` rule's RHS is just `ω` — contents spill into the outer
        // solution.
        let b = bindings(&[("w", Binding::Many(vec![Atom::int(9), Atom::sym("K")]))]);
        let out = produce(&[Template::var("w")], &b);
        assert_eq!(out, vec![Atom::int(9), Atom::sym("K")]);
    }

    #[test]
    fn omega_in_tuple_position_errors() {
        let b = bindings(&[("w", Binding::Many(vec![Atom::int(1), Atom::int(2)]))]);
        let mut host = NoExterns;
        let mut inst = Instantiator::new(&mut host);
        let err = inst
            .produce(&[Template::keyed("K", [Template::var("w")])], &b)
            .unwrap_err();
        assert!(matches!(err, HoclError::OmegaInScalarPosition(_)));
    }

    #[test]
    fn pure_call_splices_result() {
        let b = bindings(&[(
            "w",
            Binding::Many(vec![Atom::tuple([Atom::sym("T1"), Atom::int(5)])]),
        )]);
        let out = produce(
            &[Template::keyed(
                "PAR",
                [Template::call("list", [Template::var("w")])],
            )],
            &b,
        );
        assert_eq!(out, vec![Atom::keyed("PAR", [Atom::list([Atom::int(5)])])]);
    }

    #[test]
    fn deferred_call_reports_index_and_args() {
        struct Deferring;
        impl ExternHost for Deferring {
            fn call(&mut self, name: &str, _args: &[Atom]) -> Result<ExternResult, HoclError> {
                if name == "invoke" {
                    Ok(ExternResult::Deferred)
                } else {
                    Ok(ExternResult::Atoms(vec![]))
                }
            }
        }
        let b = bindings(&[("s", Binding::One(Atom::sym("s2")))]);
        let mut host = Deferring;
        let mut inst = Instantiator::new(&mut host);
        let rhs = [Template::keyed(
            "RES",
            [Template::sub([Template::call(
                "invoke",
                [Template::var("s")],
            )])],
        )];
        match inst.produce(&rhs, &b).unwrap() {
            Produced::Deferred {
                call_index,
                args,
                name,
            } => {
                assert_eq!(call_index, 0);
                assert_eq!(args, vec![Atom::sym("s2")]);
                assert_eq!(name, "invoke");
            }
            Produced::Atoms(_) => panic!("expected deferral"),
        }
    }

    #[test]
    fn resume_substitutes_deferred_call() {
        let b = Bindings::new();
        let mut host = NoExterns;
        let mut inst = Instantiator::resuming(&mut host, 0, vec![Atom::str("result")]);
        let rhs = [Template::keyed(
            "RES",
            [Template::sub([Template::call("invoke", [])])],
        )];
        match inst.produce(&rhs, &b).unwrap() {
            Produced::Atoms(v) => assert_eq!(
                v,
                vec![Atom::keyed("RES", [Atom::sub([Atom::str("result")])])]
            ),
            Produced::Deferred { .. } => panic!("must not defer on resume"),
        }
    }

    #[test]
    fn count_calls_matches_traversal() {
        let t = Template::sub([
            Template::call("a", [Template::call("b", [])]),
            Template::call("c", []),
        ]);
        assert_eq!(t.count_calls(), 3);
    }
}
