//! Atoms — the molecules floating in a chemical solution.
//!
//! An atom is either *simple* (number, string, boolean, symbol, rule) or
//! *structured*: a tuple `A : B : C` (ordered), a subsolution `⟨A, B, C⟩`
//! (an inner multiset), or — HOCLflow extension — a list `[A, B, C]`.

use crate::multiset::Multiset;
use crate::rule::Rule;
use crate::symbol::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A single element of a chemical solution.
///
/// `Atom` is cheap to clone for the common cases: symbols and rules are
/// reference-counted, and the structured variants clone their children.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub enum Atom {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. `NaN` is not a meaningful chemical value; comparisons
    /// involving `NaN` simply never match.
    Float(f64),
    /// UTF-8 string datum.
    Str(String),
    /// Boolean datum.
    Bool(bool),
    /// Identifier: task names (`T1`), reserved keywords (`SRC`), service
    /// names (`s2`), tokens (`ADAPT`).
    Sym(Symbol),
    /// Ordered tuple `A : B : C` (at least two elements).
    Tuple(Vec<Atom>),
    /// Subsolution `⟨…⟩`: a multiset nested inside the solution.
    Sub(Multiset),
    /// HOCLflow list `[…]` (ordered, variable length).
    List(Vec<Atom>),
    /// A reaction rule — rules are first-class citizens (higher order).
    Rule(Arc<Rule>),
}

impl Atom {
    /// Integer atom.
    pub fn int(v: i64) -> Self {
        Atom::Int(v)
    }

    /// Float atom.
    pub fn float(v: f64) -> Self {
        Atom::Float(v)
    }

    /// String atom.
    pub fn str(v: impl Into<String>) -> Self {
        Atom::Str(v.into())
    }

    /// Boolean atom.
    pub fn bool(v: bool) -> Self {
        Atom::Bool(v)
    }

    /// Symbol atom.
    pub fn sym(v: impl AsRef<str>) -> Self {
        Atom::Sym(Symbol::new(v))
    }

    /// Tuple atom `a : b : …`. Panics if fewer than two elements — a
    /// one-element tuple is just that element in HOCL.
    pub fn tuple(elems: impl IntoIterator<Item = Atom>) -> Self {
        let v: Vec<Atom> = elems.into_iter().collect();
        assert!(v.len() >= 2, "a tuple needs at least two elements");
        Atom::Tuple(v)
    }

    /// Keyed tuple `KEY : a : …` — convenience for the `SRC : ⟨…⟩` shape.
    pub fn keyed(key: impl AsRef<str>, rest: impl IntoIterator<Item = Atom>) -> Self {
        let mut v = vec![Atom::sym(key)];
        v.extend(rest);
        Atom::tuple(v)
    }

    /// Subsolution atom from an iterator of atoms.
    pub fn sub(elems: impl IntoIterator<Item = Atom>) -> Self {
        Atom::Sub(Multiset::from_iter(elems))
    }

    /// Empty subsolution `⟨⟩`.
    pub fn empty_sub() -> Self {
        Atom::Sub(Multiset::new())
    }

    /// List atom.
    pub fn list(elems: impl IntoIterator<Item = Atom>) -> Self {
        Atom::List(elems.into_iter().collect())
    }

    /// Rule atom.
    pub fn rule(rule: Rule) -> Self {
        Atom::Rule(Arc::new(rule))
    }

    /// Rule atom from an already-shared rule.
    pub fn rule_arc(rule: Arc<Rule>) -> Self {
        Atom::Rule(rule)
    }

    /// Is this an integer?
    pub fn is_int(&self) -> bool {
        matches!(self, Atom::Int(_))
    }

    /// Is this a rule?
    pub fn is_rule(&self) -> bool {
        matches!(self, Atom::Rule(_))
    }

    /// Is this a subsolution?
    pub fn is_sub(&self) -> bool {
        matches!(self, Atom::Sub(_))
    }

    /// View as symbol, if it is one.
    pub fn as_sym(&self) -> Option<&Symbol> {
        match self {
            Atom::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// View as integer, if it is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Atom::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// View as string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Atom::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as tuple elements, if it is a tuple.
    pub fn as_tuple(&self) -> Option<&[Atom]> {
        match self {
            Atom::Tuple(v) => Some(v),
            _ => None,
        }
    }

    /// View as subsolution, if it is one.
    pub fn as_sub(&self) -> Option<&Multiset> {
        match self {
            Atom::Sub(ms) => Some(ms),
            _ => None,
        }
    }

    /// Mutable view as subsolution, if it is one.
    pub fn as_sub_mut(&mut self) -> Option<&mut Multiset> {
        match self {
            Atom::Sub(ms) => Some(ms),
            _ => None,
        }
    }

    /// View as rule, if it is one.
    pub fn as_rule(&self) -> Option<&Arc<Rule>> {
        match self {
            Atom::Rule(r) => Some(r),
            _ => None,
        }
    }

    /// For tuples whose first element is a symbol, that symbol (the "key" of
    /// shapes like `SRC : ⟨…⟩`). Used by the matcher's shape pre-filter.
    pub fn tuple_key(&self) -> Option<&Symbol> {
        match self {
            Atom::Tuple(v) => v.first().and_then(|a| a.as_sym()),
            _ => None,
        }
    }

    /// A coarse shape discriminant used to pre-filter match candidates.
    pub fn shape(&self) -> Shape {
        match self {
            Atom::Int(_) => Shape::Int,
            Atom::Float(_) => Shape::Float,
            Atom::Str(_) => Shape::Str,
            Atom::Bool(_) => Shape::Bool,
            Atom::Sym(_) => Shape::Sym,
            Atom::Tuple(v) => Shape::Tuple(v.len()),
            Atom::Sub(_) => Shape::Sub,
            Atom::List(_) => Shape::List,
            Atom::Rule(_) => Shape::Rule,
        }
    }

    /// Total number of atoms in this molecule, counting nested structure.
    /// Used by the simulator's matching-cost model.
    pub fn weight(&self) -> usize {
        match self {
            Atom::Tuple(v) | Atom::List(v) => 1 + v.iter().map(Atom::weight).sum::<usize>(),
            Atom::Sub(ms) => 1 + ms.iter().map(Atom::weight).sum::<usize>(),
            _ => 1,
        }
    }
}

/// Coarse structural discriminant of an atom (see [`Atom::shape`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shape {
    /// Integer.
    Int,
    /// Float.
    Float,
    /// String.
    Str,
    /// Boolean.
    Bool,
    /// Symbol.
    Sym,
    /// Tuple of the given arity.
    Tuple(usize),
    /// Subsolution.
    Sub,
    /// List.
    List,
    /// Rule.
    Rule,
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Debug mirrors the chemical notation; it is what test assertions show.
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Int(v) => write!(f, "{v}"),
            Atom::Float(v) => write!(f, "{v}"),
            Atom::Str(s) => write!(f, "{s:?}"),
            Atom::Bool(b) => write!(f, "{b}"),
            Atom::Sym(s) => write!(f, "{s}"),
            Atom::Tuple(v) => {
                for (i, a) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(":")?;
                    }
                    // Parenthesise nested tuples to keep the notation unambiguous.
                    match a {
                        Atom::Tuple(_) => write!(f, "({a})")?,
                        _ => write!(f, "{a}")?,
                    }
                }
                Ok(())
            }
            Atom::Sub(ms) => {
                f.write_str("<")?;
                for (i, a) in ms.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(">")
            }
            Atom::List(v) => {
                f.write_str("[")?;
                for (i, a) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str("]")
            }
            Atom::Rule(r) => write!(f, "{}", r.name()),
        }
    }
}

impl From<i64> for Atom {
    fn from(v: i64) -> Self {
        Atom::Int(v)
    }
}

impl From<f64> for Atom {
    fn from(v: f64) -> Self {
        Atom::Float(v)
    }
}

impl From<&str> for Atom {
    fn from(v: &str) -> Self {
        Atom::Str(v.to_owned())
    }
}

impl From<String> for Atom {
    fn from(v: String) -> Self {
        Atom::Str(v)
    }
}

impl From<bool> for Atom {
    fn from(v: bool) -> Self {
        Atom::Bool(v)
    }
}

impl From<Symbol> for Atom {
    fn from(v: Symbol) -> Self {
        Atom::Sym(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_views() {
        assert_eq!(Atom::int(3).as_int(), Some(3));
        assert_eq!(Atom::sym("SRC").as_sym().unwrap().as_str(), "SRC");
        assert_eq!(Atom::str("hello").as_str(), Some("hello"));
        let t = Atom::keyed("SRC", [Atom::empty_sub()]);
        assert_eq!(t.tuple_key().unwrap().as_str(), "SRC");
        assert!(Atom::empty_sub().as_sub().unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tuple_arity_enforced() {
        let _ = Atom::tuple([Atom::int(1)]);
    }

    #[test]
    fn display_notation() {
        let a = Atom::keyed("SRC", [Atom::sub([Atom::sym("T1"), Atom::sym("T2")])]);
        assert_eq!(format!("{a}"), "SRC:<T1, T2>");
        let l = Atom::list([Atom::int(1), Atom::int(2)]);
        assert_eq!(format!("{l}"), "[1, 2]");
        let nested = Atom::tuple([Atom::sym("A"), Atom::tuple([Atom::int(1), Atom::int(2)])]);
        assert_eq!(format!("{nested}"), "A:(1:2)");
    }

    #[test]
    fn shape_prefilter() {
        assert_eq!(Atom::int(1).shape(), Shape::Int);
        assert_eq!(Atom::keyed("K", [Atom::int(1)]).shape(), Shape::Tuple(2));
        assert_ne!(Atom::int(1).shape(), Atom::float(1.0).shape());
    }

    #[test]
    fn weight_counts_nested_atoms() {
        assert_eq!(Atom::int(1).weight(), 1);
        let a = Atom::keyed("SRC", [Atom::sub([Atom::sym("T1")])]);
        // tuple + SRC + sub + T1
        assert_eq!(a.weight(), 4);
    }

    #[test]
    fn equality_is_structural() {
        let a = Atom::sub([Atom::int(1), Atom::sym("X")]);
        let b = Atom::sub([Atom::int(1), Atom::sym("X")]);
        assert_eq!(a, b);
        // Multisets are order-insensitive.
        let c = Atom::sub([Atom::sym("X"), Atom::int(1)]);
        assert_eq!(a, c);
        // …but lists are ordered.
        assert_ne!(
            Atom::list([Atom::int(1), Atom::int(2)]),
            Atom::list([Atom::int(2), Atom::int(1)])
        );
    }

    #[test]
    fn serde_roundtrip() {
        let a = Atom::keyed("RES", [Atom::sub([Atom::str("out"), Atom::float(2.5)])]);
        let json = serde_json::to_string(&a).unwrap();
        let back: Atom = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
