//! The pattern matcher: finds molecules a rule can consume.
//!
//! Matching a rule against a solution is a backtracking search that assigns
//! each LHS pattern to a *distinct* atom of the solution while accumulating
//! variable bindings. Bindings are shared across patterns (cross-molecule
//! unification), which is what lets `gw_pass` correlate the `Ti` appearing
//! in one task's `DST` with the head of another task's molecule.
//!
//! Inside subsolution patterns, element patterns likewise consume distinct
//! inner atoms and an optional ω variable captures the remainder.

use crate::atom::Atom;
use crate::bindings::Bindings;
use crate::error::HoclError;
use crate::externs::ExternHost;
use crate::multiset::Multiset;
use crate::pattern::{Pattern, SubPattern};
use crate::rule::Rule;

/// A successful match of a rule against a solution.
#[derive(Clone, Debug)]
pub struct Match {
    /// Indices (into the solution's internal order) of the consumed atoms,
    /// parallel to the rule's LHS patterns.
    pub consumed: Vec<usize>,
    /// The variable bindings established by the match.
    pub bindings: Bindings,
}

/// Statistics of a matching attempt, fed to the simulator's cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Number of (pattern, atom) candidate pairings examined.
    pub attempts: u64,
}

/// The matcher. Stateless apart from bookkeeping counters; create one per
/// engine.
#[derive(Default)]
pub struct Matcher {
    stats: MatchStats,
}

impl Matcher {
    /// New matcher with zeroed statistics.
    pub fn new() -> Self {
        Matcher::default()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// Reset statistics (e.g. per simulation event).
    pub fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
    }

    /// Find the first match of `rule` in `solution`, excluding the atom at
    /// `self_index` (a rule must not consume its own atom).
    ///
    /// `order` optionally remaps candidate traversal order (the engine's
    /// nondeterministic mode passes a shuffled index vector); `None` means
    /// insertion order.
    pub fn find_match(
        &mut self,
        rule: &Rule,
        solution: &Multiset,
        self_index: Option<usize>,
        order: Option<&[usize]>,
        host: &mut dyn ExternHost,
    ) -> Result<Option<Match>, HoclError> {
        let candidates: Vec<usize> = match order {
            Some(o) => o.to_vec(),
            None => (0..solution.len()).collect(),
        };
        let mut consumed = Vec::with_capacity(rule.lhs().len());
        let mut bindings = Bindings::new();
        let found = self.match_patterns(
            rule.lhs(),
            0,
            solution,
            &candidates,
            self_index,
            &mut consumed,
            &mut bindings,
            &mut |b, host_inner| rule.guard().eval(b, host_inner),
            host,
        )?;
        Ok(if found {
            Some(Match { consumed, bindings })
        } else {
            None
        })
    }

    /// Recursive backtracking over the rule's LHS patterns.
    #[allow(clippy::too_many_arguments)]
    fn match_patterns(
        &mut self,
        patterns: &[Pattern],
        at: usize,
        solution: &Multiset,
        candidates: &[usize],
        self_index: Option<usize>,
        consumed: &mut Vec<usize>,
        bindings: &mut Bindings,
        guard: &mut dyn FnMut(&Bindings, &mut dyn ExternHost) -> Result<bool, HoclError>,
        host: &mut dyn ExternHost,
    ) -> Result<bool, HoclError> {
        if at == patterns.len() {
            return guard(bindings, host);
        }
        let pattern = &patterns[at];
        let hint = pattern.shape_hint();
        let key_hint = pattern.key_hint();
        for &idx in candidates {
            if Some(idx) == self_index || consumed.contains(&idx) {
                continue;
            }
            let atom = match solution.get(idx) {
                Some(a) => a,
                None => continue,
            };
            // Cheap pre-filters before the structural walk.
            if let Some(h) = hint {
                if atom.shape() != h {
                    continue;
                }
            }
            if let Some(k) = key_hint {
                match atom.tuple_key() {
                    Some(s) if s.as_str() == k => {}
                    _ => continue,
                }
            }
            self.stats.attempts += 1;
            let snapshot = bindings.clone();
            if self.match_atom(pattern, atom, bindings) {
                consumed.push(idx);
                if self.match_patterns(
                    patterns,
                    at + 1,
                    solution,
                    candidates,
                    self_index,
                    consumed,
                    bindings,
                    guard,
                    host,
                )? {
                    return Ok(true);
                }
                consumed.pop();
            }
            *bindings = snapshot;
        }
        Ok(false)
    }

    /// Structural match of one pattern against one atom, extending
    /// `bindings`. Returns `false` (without poisoning the caller, which
    /// restores its snapshot) when the atom does not fit.
    pub fn match_atom(&mut self, pattern: &Pattern, atom: &Atom, bindings: &mut Bindings) -> bool {
        self.stats.attempts += 1;
        match pattern {
            Pattern::Any => true,
            Pattern::Var(name) => bindings.bind_one(name, atom.clone()),
            Pattern::Lit(expected) => expected == atom,
            Pattern::Typed(name, tag) => tag.admits(atom) && bindings.bind_one(name, atom.clone()),
            Pattern::Tuple(elems) => match atom {
                Atom::Tuple(values) if values.len() == elems.len() => elems
                    .iter()
                    .zip(values.iter())
                    .all(|(p, a)| self.match_atom(p, a, bindings)),
                _ => false,
            },
            Pattern::List(elems) => match atom {
                Atom::List(values) if values.len() == elems.len() => elems
                    .iter()
                    .zip(values.iter())
                    .all(|(p, a)| self.match_atom(p, a, bindings)),
                _ => false,
            },
            Pattern::RuleNamed(name) => {
                matches!(atom, Atom::Rule(r) if r.name() == name.as_str())
            }
            Pattern::Sub(sp) => match atom {
                Atom::Sub(ms) => self.match_sub(sp, ms, bindings),
                _ => false,
            },
        }
    }

    /// Match a subsolution pattern: assign each element pattern to a
    /// distinct inner atom (backtracking), bind the ω rest if present.
    fn match_sub(&mut self, sp: &SubPattern, ms: &Multiset, bindings: &mut Bindings) -> bool {
        if sp.rest.is_none() && ms.len() != sp.elems.len() {
            return false;
        }
        if ms.len() < sp.elems.len() {
            return false;
        }
        let mut used = Vec::with_capacity(sp.elems.len());
        if !self.assign_elems(&sp.elems, 0, ms, &mut used, bindings) {
            return false;
        }
        if let Some(rest) = &sp.rest {
            let remaining: Vec<Atom> = ms
                .iter()
                .enumerate()
                .filter(|(i, _)| !used.contains(i))
                .map(|(_, a)| a.clone())
                .collect();
            if !bindings.bind_many(rest, remaining) {
                return false;
            }
        }
        true
    }

    /// Backtracking assignment of subsolution element patterns.
    fn assign_elems(
        &mut self,
        elems: &[Pattern],
        at: usize,
        ms: &Multiset,
        used: &mut Vec<usize>,
        bindings: &mut Bindings,
    ) -> bool {
        if at == elems.len() {
            return true;
        }
        for i in 0..ms.len() {
            if used.contains(&i) {
                continue;
            }
            let atom = ms.get(i).expect("index in range");
            let snapshot = bindings.clone();
            if self.match_atom(&elems[at], atom, bindings) {
                used.push(i);
                if self.assign_elems(elems, at + 1, ms, used, bindings) {
                    return true;
                }
                used.pop();
            }
            *bindings = snapshot;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::externs::NoExterns;
    use crate::guard::{Expr, Guard};
    use crate::template::Template;

    fn find(rule: &Rule, sol: &Multiset) -> Option<Match> {
        Matcher::new()
            .find_match(rule, sol, None, None, &mut NoExterns)
            .unwrap()
    }

    #[test]
    fn simple_two_var_match_with_guard() {
        let max = Rule::builder("max")
            .lhs([Pattern::var("x"), Pattern::var("y")])
            .guard(Guard::ge(Expr::var("x"), Expr::var("y")))
            .rhs([Template::var("x")])
            .build();
        let sol: Multiset = [Atom::int(2), Atom::int(9)].into_iter().collect();
        let m = find(&max, &sol).expect("should match");
        // First assignment satisfying the guard: x=9, y=2 requires trying
        // x=2,y=9 (guard fails) then backtracking.
        let x = m.bindings.get("x").unwrap().as_one().unwrap().clone();
        let y = m.bindings.get("y").unwrap().as_one().unwrap().clone();
        assert_eq!((x, y), (Atom::int(9), Atom::int(2)));
    }

    #[test]
    fn no_match_on_singleton() {
        let max = Rule::builder("max")
            .lhs([Pattern::var("x"), Pattern::var("y")])
            .rhs([Template::var("x")])
            .build();
        let sol: Multiset = [Atom::int(2)].into_iter().collect();
        assert!(find(&max, &sol).is_none());
    }

    #[test]
    fn distinct_atoms_consumed() {
        // x and y must be two *different* atoms even if equal in value.
        let r = Rule::builder("pair")
            .lhs([Pattern::var("x"), Pattern::var("y")])
            .guard(Guard::eq(Expr::var("x"), Expr::var("y")))
            .rhs([Template::var("x")])
            .build();
        let one: Multiset = [Atom::int(5)].into_iter().collect();
        assert!(find(&r, &one).is_none());
        let two: Multiset = [Atom::int(5), Atom::int(5)].into_iter().collect();
        let m = find(&r, &two).expect("two equal atoms do match");
        assert_eq!(m.consumed.len(), 2);
        assert_ne!(m.consumed[0], m.consumed[1]);
    }

    #[test]
    fn keyed_tuple_and_empty_sub() {
        // gw_setup's LHS: SRC : <> and IN : <ω>.
        let r = Rule::builder("gw_setup")
            .one_shot()
            .lhs([
                Pattern::keyed("SRC", [Pattern::empty_sub()]),
                Pattern::keyed("IN", [Pattern::sub_rest("w")]),
            ])
            .rhs([Template::keyed("SRC", [Template::empty_sub()])])
            .build();

        let ready: Multiset = [
            Atom::keyed("SRC", [Atom::empty_sub()]),
            Atom::keyed("IN", [Atom::sub([Atom::int(1), Atom::int(2)])]),
        ]
        .into_iter()
        .collect();
        let m = find(&r, &ready).expect("deps satisfied, must match");
        assert_eq!(m.bindings.get("w").unwrap().atoms().len(), 2);

        let waiting: Multiset = [
            Atom::keyed("SRC", [Atom::sub([Atom::sym("T1")])]),
            Atom::keyed("IN", [Atom::empty_sub()]),
        ]
        .into_iter()
        .collect();
        assert!(find(&r, &waiting).is_none(), "non-empty SRC must not match");
    }

    #[test]
    fn cross_molecule_unification() {
        // gw_pass core: ?ti bound in the first molecule's head must appear
        // in the second molecule's SRC subsolution.
        let r = Rule::builder("pass")
            .lhs([
                Pattern::tuple([
                    Pattern::var("ti"),
                    Pattern::sub_with_rest(
                        [Pattern::keyed(
                            "DST",
                            [Pattern::sub_with_rest([Pattern::var("tj")], "wd")],
                        )],
                        "wi",
                    ),
                ]),
                Pattern::tuple([
                    Pattern::var("tj"),
                    Pattern::sub_with_rest(
                        [Pattern::keyed(
                            "SRC",
                            [Pattern::sub_with_rest([Pattern::var("ti")], "ws")],
                        )],
                        "wj",
                    ),
                ]),
            ])
            .rhs([])
            .build();

        let t1 = Atom::tuple([
            Atom::sym("T1"),
            Atom::sub([Atom::keyed("DST", [Atom::sub([Atom::sym("T2")])])]),
        ]);
        let t2 = Atom::tuple([
            Atom::sym("T2"),
            Atom::sub([Atom::keyed("SRC", [Atom::sub([Atom::sym("T1")])])]),
        ]);
        let t3 = Atom::tuple([
            Atom::sym("T3"),
            Atom::sub([Atom::keyed("SRC", [Atom::sub([Atom::sym("T9")])])]),
        ]);
        let sol: Multiset = [t3, t1, t2].into_iter().collect();
        let m = find(&r, &sol).expect("T1→T2 must unify");
        assert_eq!(
            m.bindings.get("ti").unwrap().as_one(),
            Some(&Atom::sym("T1"))
        );
        assert_eq!(
            m.bindings.get("tj").unwrap().as_one(),
            Some(&Atom::sym("T2"))
        );
    }

    #[test]
    fn rule_pattern_matches_by_name() {
        let max = Rule::builder("max")
            .lhs([Pattern::var("x")])
            .rhs([])
            .build();
        let clean = Rule::builder("clean")
            .one_shot()
            .lhs([Pattern::sub_with_rest(
                [Pattern::RuleNamed("max".into())],
                "w",
            )])
            .rhs([Template::var("w")])
            .build();
        let inner = Atom::sub([Atom::int(9), Atom::rule(max)]);
        let sol: Multiset = [inner].into_iter().collect();
        let m = find(&clean, &sol).expect("must grab the sub containing max");
        assert_eq!(m.bindings.get("w").unwrap().atoms(), &[Atom::int(9)]);
    }

    #[test]
    fn exact_sub_pattern_requires_exact_size() {
        let r = Rule::builder("r")
            .lhs([Pattern::sub_exact([Pattern::var("x")])])
            .rhs([])
            .build();
        let one: Multiset = [Atom::sub([Atom::int(1)])].into_iter().collect();
        assert!(find(&r, &one).is_some());
        let two: Multiset = [Atom::sub([Atom::int(1), Atom::int(2)])]
            .into_iter()
            .collect();
        assert!(find(&r, &two).is_none());
    }

    #[test]
    fn self_index_excluded() {
        let r = Rule::builder("selfish")
            .lhs([Pattern::RuleNamed("selfish".into())])
            .rhs([])
            .build();
        let sol: Multiset = [Atom::rule(r.clone())].into_iter().collect();
        // The only candidate is the rule's own atom at index 0 — excluded.
        let m = Matcher::new()
            .find_match(&r, &sol, Some(0), None, &mut NoExterns)
            .unwrap();
        assert!(m.is_none());
    }

    #[test]
    fn custom_order_changes_selection() {
        let r = Rule::builder("grab")
            .lhs([Pattern::var("x")])
            .rhs([])
            .build();
        let sol: Multiset = [Atom::int(1), Atom::int(2)].into_iter().collect();
        let order = [1usize, 0];
        let m = Matcher::new()
            .find_match(&r, &sol, None, Some(&order), &mut NoExterns)
            .unwrap()
            .unwrap();
        assert_eq!(m.bindings.get("x").unwrap().as_one(), Some(&Atom::int(2)));
    }

    #[test]
    fn stats_count_attempts() {
        let r = Rule::builder("grab")
            .lhs([Pattern::lit(Atom::int(99))])
            .rhs([])
            .build();
        let sol: Multiset = (0..10).map(Atom::int).collect();
        let mut m = Matcher::new();
        assert!(m
            .find_match(&r, &sol, None, None, &mut NoExterns)
            .unwrap()
            .is_none());
        // Shape prefilter admits all ints; each is attempted.
        assert!(m.stats().attempts >= 10);
        m.reset_stats();
        assert_eq!(m.stats().attempts, 0);
    }
}
