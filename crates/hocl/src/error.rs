//! Error type for the HOCL engine.

use std::fmt;

/// Everything that can go wrong while matching, evaluating or reducing.
#[derive(Clone, PartialEq)]
pub enum HoclError {
    /// An expression referenced a variable the match did not bind.
    UnboundVar(String),
    /// An ω (multi-atom) binding was used where a single atom is required.
    OmegaInExpr(String),
    /// An ω binding was spliced into a position that cannot hold several
    /// atoms (e.g. a tuple element).
    OmegaInScalarPosition(String),
    /// An external function was called that the host does not provide.
    UnknownExtern(String),
    /// An extern was expected to produce exactly one atom but produced `got`.
    ExternArity {
        /// Extern name.
        name: String,
        /// Number of atoms actually produced.
        got: usize,
    },
    /// A deferred extern appeared in a guard — guards must be pure.
    DeferredInGuard(String),
    /// A deferred extern appeared while reducing a nested subsolution.
    /// Suspension is only supported at the root of the solution being
    /// reduced (see `engine` module docs).
    DeferredInNested(String),
    /// A second deferred extern appeared within a single rule application.
    MultipleDeferred(String),
    /// A guard predicate evaluated to something that is not a boolean.
    PredicateNotBool(String),
    /// The host failed executing an extern.
    ExternFailed {
        /// Extern name.
        name: String,
        /// Host-provided reason.
        reason: String,
    },
    /// `resume` was called with an effect id that is not pending.
    UnknownEffect(u64),
    /// Reduction exceeded the configured step budget (runaway program).
    StepBudgetExhausted {
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for HoclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HoclError::UnboundVar(v) => write!(f, "unbound variable ?{v}"),
            HoclError::OmegaInExpr(v) => {
                write!(f, "omega variable *{v} used where one atom is required")
            }
            HoclError::OmegaInScalarPosition(v) => {
                write!(f, "omega variable *{v} spliced into a scalar position")
            }
            HoclError::UnknownExtern(n) => write!(f, "unknown external function {n}"),
            HoclError::ExternArity { name, got } => {
                write!(f, "extern {name} produced {got} atoms, expected exactly 1")
            }
            HoclError::DeferredInGuard(n) => {
                write!(f, "deferred extern {n} called inside a guard")
            }
            HoclError::DeferredInNested(n) => write!(
                f,
                "deferred extern {n} fired inside a nested subsolution; suspension is only \
                 supported at the root solution"
            ),
            HoclError::MultipleDeferred(n) => write!(
                f,
                "rule application attempted a second deferred extern ({n}); only one deferred \
                 call per application is supported"
            ),
            HoclError::PredicateNotBool(n) => {
                write!(f, "guard predicate {n} did not evaluate to a boolean")
            }
            HoclError::ExternFailed { name, reason } => {
                write!(f, "external function {name} failed: {reason}")
            }
            HoclError::UnknownEffect(id) => write!(f, "no pending effect with id {id}"),
            HoclError::StepBudgetExhausted { budget } => {
                write!(f, "reduction exceeded the step budget of {budget}")
            }
        }
    }
}

impl fmt::Debug for HoclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for HoclError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = HoclError::ExternArity {
            name: "list".into(),
            got: 3,
        };
        assert!(e.to_string().contains("list"));
        assert!(e.to_string().contains('3'));
        let e = HoclError::StepBudgetExhausted { budget: 10 };
        assert!(e.to_string().contains("10"));
    }
}
