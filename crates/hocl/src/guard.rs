//! Rule guards (`… if x ≥ y`) and the small expression language they use.

use crate::atom::Atom;
use crate::bindings::Bindings;
use crate::error::HoclError;
use crate::externs::{ExternHost, ExternResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An expression evaluated against the bindings of a match attempt.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal atom.
    Lit(Atom),
    /// A bound variable (must be a one-atom binding).
    Var(String),
    /// A *pure* external function call producing exactly one atom.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Literal expression.
    pub fn lit(atom: impl Into<Atom>) -> Self {
        Expr::Lit(atom.into())
    }

    /// Variable reference.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    /// Pure extern call.
    pub fn call(name: impl Into<String>, args: impl IntoIterator<Item = Expr>) -> Self {
        Expr::Call(name.into(), args.into_iter().collect())
    }

    /// Evaluate to a single atom.
    pub fn eval(&self, bindings: &Bindings, host: &mut dyn ExternHost) -> Result<Atom, HoclError> {
        match self {
            Expr::Lit(a) => Ok(a.clone()),
            Expr::Var(name) => match bindings.get(name) {
                Some(b) => b
                    .as_one()
                    .cloned()
                    .ok_or_else(|| HoclError::OmegaInExpr(name.clone())),
                None => Err(HoclError::UnboundVar(name.clone())),
            },
            Expr::Call(name, args) => {
                let mut atoms = Vec::with_capacity(args.len());
                for a in args {
                    atoms.push(a.eval(bindings, host)?);
                }
                match host.call(name, &atoms)? {
                    ExternResult::Atoms(mut out) => {
                        if out.len() == 1 {
                            Ok(out.pop().expect("len checked"))
                        } else {
                            Err(HoclError::ExternArity {
                                name: name.clone(),
                                got: out.len(),
                            })
                        }
                    }
                    ExternResult::Deferred => Err(HoclError::DeferredInGuard(name.clone())),
                }
            }
        }
    }
}

/// Comparison operators available in guards.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equality (structural).
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less (numeric or string).
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
}

/// A guard condition on a rule.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub enum Guard {
    /// Always true (rules without an `if`).
    True,
    /// Binary comparison between two expressions.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction.
    And(Box<Guard>, Box<Guard>),
    /// Disjunction.
    Or(Box<Guard>, Box<Guard>),
    /// Negation.
    Not(Box<Guard>),
    /// Pure extern predicate: must evaluate to a boolean atom.
    Pred(String, Vec<Expr>),
}

impl Guard {
    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Self {
        Guard::Cmp(CmpOp::Eq, a, b)
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Self {
        Guard::Cmp(CmpOp::Ne, a, b)
    }

    /// `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> Self {
        Guard::Cmp(CmpOp::Ge, a, b)
    }

    /// `a > b`.
    pub fn gt(a: Expr, b: Expr) -> Self {
        Guard::Cmp(CmpOp::Gt, a, b)
    }

    /// `a <= b`.
    pub fn le(a: Expr, b: Expr) -> Self {
        Guard::Cmp(CmpOp::Le, a, b)
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Self {
        Guard::Cmp(CmpOp::Lt, a, b)
    }

    /// Conjunction of two guards.
    pub fn and(a: Guard, b: Guard) -> Self {
        Guard::And(Box::new(a), Box::new(b))
    }

    /// Evaluate the guard under the given bindings.
    pub fn eval(&self, bindings: &Bindings, host: &mut dyn ExternHost) -> Result<bool, HoclError> {
        match self {
            Guard::True => Ok(true),
            Guard::Cmp(op, a, b) => {
                let (va, vb) = (a.eval(bindings, host)?, b.eval(bindings, host)?);
                Ok(compare(*op, &va, &vb))
            }
            Guard::And(a, b) => Ok(a.eval(bindings, host)? && b.eval(bindings, host)?),
            Guard::Or(a, b) => Ok(a.eval(bindings, host)? || b.eval(bindings, host)?),
            Guard::Not(g) => Ok(!g.eval(bindings, host)?),
            Guard::Pred(name, args) => {
                let mut atoms = Vec::with_capacity(args.len());
                for a in args {
                    atoms.push(a.eval(bindings, host)?);
                }
                match host.call(name, &atoms)? {
                    ExternResult::Atoms(out) => match out.as_slice() {
                        [Atom::Bool(b)] => Ok(*b),
                        _ => Err(HoclError::PredicateNotBool(name.clone())),
                    },
                    ExternResult::Deferred => Err(HoclError::DeferredInGuard(name.clone())),
                }
            }
        }
    }
}

/// Structural/numeric comparison semantics:
/// * `Eq`/`Ne` compare any two atoms structurally;
/// * ordering operators work on numbers (Int/Float mixed, promoted to f64)
///   and on strings/symbols lexicographically; any other combination simply
///   does not hold (no panic: a chemical match just fails).
fn compare(op: CmpOp, a: &Atom, b: &Atom) -> bool {
    use std::cmp::Ordering;
    let ord: Option<Ordering> = match (a, b) {
        (Atom::Int(x), Atom::Int(y)) => Some(x.cmp(y)),
        (Atom::Float(x), Atom::Float(y)) => x.partial_cmp(y),
        (Atom::Int(x), Atom::Float(y)) => (*x as f64).partial_cmp(y),
        (Atom::Float(x), Atom::Int(y)) => x.partial_cmp(&(*y as f64)),
        (Atom::Str(x), Atom::Str(y)) => Some(x.cmp(y)),
        (Atom::Sym(x), Atom::Sym(y)) => Some(x.cmp(y)),
        _ => None,
    };
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => ord == Some(std::cmp::Ordering::Less),
        CmpOp::Le => matches!(
            ord,
            Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
        ),
        CmpOp::Gt => ord == Some(std::cmp::Ordering::Greater),
        CmpOp::Ge => matches!(
            ord,
            Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
        ),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(a) => write!(f, "{a}"),
            Expr::Var(v) => write!(f, "?{v}"),
            Expr::Call(n, args) => {
                write!(f, "{n}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Guard::True => f.write_str("true"),
            Guard::Cmp(op, a, b) => {
                let s = match op {
                    CmpOp::Eq => "==",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                write!(f, "{a} {s} {b}")
            }
            Guard::And(a, b) => write!(f, "({a} && {b})"),
            Guard::Or(a, b) => write!(f, "({a} || {b})"),
            Guard::Not(g) => write!(f, "!({g})"),
            Guard::Pred(n, args) => {
                write!(f, "{n}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::externs::NoExterns;

    fn bound(pairs: &[(&str, Atom)]) -> Bindings {
        let mut b = Bindings::new();
        for (k, v) in pairs {
            assert!(b.bind_one(k, v.clone()));
        }
        b
    }

    #[test]
    fn numeric_comparisons() {
        let b = bound(&[("x", Atom::int(9)), ("y", Atom::int(8))]);
        let g = Guard::ge(Expr::var("x"), Expr::var("y"));
        assert!(g.eval(&b, &mut NoExterns).unwrap());
        let g = Guard::lt(Expr::var("x"), Expr::var("y"));
        assert!(!g.eval(&b, &mut NoExterns).unwrap());
    }

    #[test]
    fn mixed_int_float() {
        let b = bound(&[("x", Atom::int(2)), ("y", Atom::float(2.5))]);
        assert!(Guard::lt(Expr::var("x"), Expr::var("y"))
            .eval(&b, &mut NoExterns)
            .unwrap());
    }

    #[test]
    fn incomparable_types_never_order() {
        let b = bound(&[("x", Atom::int(1)), ("y", Atom::str("a"))]);
        assert!(!Guard::lt(Expr::var("x"), Expr::var("y"))
            .eval(&b, &mut NoExterns)
            .unwrap());
        assert!(!Guard::ge(Expr::var("x"), Expr::var("y"))
            .eval(&b, &mut NoExterns)
            .unwrap());
        // But (in)equality is total.
        assert!(Guard::ne(Expr::var("x"), Expr::var("y"))
            .eval(&b, &mut NoExterns)
            .unwrap());
    }

    #[test]
    fn boolean_connectives() {
        let b = bound(&[("x", Atom::int(1))]);
        let t = Guard::eq(Expr::var("x"), Expr::lit(1i64));
        let f = Guard::eq(Expr::var("x"), Expr::lit(2i64));
        assert!(Guard::and(t.clone(), Guard::Not(Box::new(f.clone())))
            .eval(&b, &mut NoExterns)
            .unwrap());
        assert!(Guard::Or(Box::new(f.clone()), Box::new(t.clone()))
            .eval(&b, &mut NoExterns)
            .unwrap());
        assert!(!Guard::and(t, f).eval(&b, &mut NoExterns).unwrap());
    }

    #[test]
    fn unbound_and_omega_errors() {
        let b = Bindings::new();
        let g = Guard::eq(Expr::var("missing"), Expr::lit(1i64));
        assert!(matches!(
            g.eval(&b, &mut NoExterns),
            Err(HoclError::UnboundVar(_))
        ));
        let mut b2 = Bindings::new();
        b2.bind_many("w", vec![]);
        let g2 = Guard::eq(Expr::var("w"), Expr::lit(1i64));
        assert!(matches!(
            g2.eval(&b2, &mut NoExterns),
            Err(HoclError::OmegaInExpr(_))
        ));
    }

    #[test]
    fn symbol_equality_in_guard() {
        let b = bound(&[("e", Atom::sym("ERROR"))]);
        assert!(Guard::eq(Expr::var("e"), Expr::lit(Atom::sym("ERROR")))
            .eval(&b, &mut NoExterns)
            .unwrap());
    }
}
