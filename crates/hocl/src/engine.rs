//! The reduction engine: applies rules until the solution is inert.
//!
//! ## Execution model
//!
//! Following HOCL, reduction is hierarchical: before any rule at a level can
//! consume a subsolution, that subsolution must itself be inert, so each
//! pass first reduces nested subsolutions bottom-up and then attempts one
//! top-level application. The engine is deterministic by default (rules and
//! candidate atoms are tried in insertion order); with
//! [`EngineConfig::shuffle_seed`] set it samples random candidate orders,
//! emulating the "applied in some order not known at design time" semantics
//! of the paper — the test-suite uses this to check confluence.
//!
//! ## Deferred effects
//!
//! When the host answers an extern call with [`crate::ExternResult::Deferred`]
//! (GinFlow's `invoke`), the engine consumes the matched atoms, parks the
//! application as a [`Pending`] record on the [`Solution`] and reports a
//! [`StepOutcome::Suspended`]. The runtime performs the actual work (invoke
//! the service, simulate it, …) and later calls [`Engine::resume`] with the
//! result atoms. Suspension is only permitted at the root solution: nested
//! subsolutions must reduce synchronously (the decentralised runtime gives
//! every agent its *own* root solution, so this is not a limitation there).

use crate::atom::Atom;
use crate::error::HoclError;
use crate::externs::{EffectId, ExternHost};
use crate::matcher::Matcher;
use crate::multiset::Multiset;
use crate::rule::Rule;
use crate::solution::{Pending, Solution};
use crate::template::{Instantiator, Produced};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::Arc;

/// Engine tuning knobs.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Upper bound on rule applications per `reduce` call — a safety net
    /// against non-terminating programs.
    pub max_steps: u64,
    /// When set, candidate traversal order is shuffled with this seed
    /// (nondeterministic chemical semantics, reproducibly).
    pub shuffle_seed: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_steps: 1_000_000,
            shuffle_seed: None,
        }
    }
}

/// Outcome of a single reduction step.
#[derive(Debug)]
pub enum StepOutcome {
    /// A rule was applied.
    Applied {
        /// Name of the applied rule.
        rule: String,
    },
    /// A rule application suspended on a deferred extern.
    Suspended(EffectInfo),
    /// No rule is applicable.
    Inert,
}

/// Description of a deferred effect handed to the runtime.
#[derive(Clone, Debug, PartialEq)]
pub struct EffectInfo {
    /// Identifier to pass back to [`Engine::resume`].
    pub id: EffectId,
    /// Extern name (e.g. `invoke`).
    pub name: String,
    /// Evaluated argument atoms.
    pub args: Vec<Atom>,
    /// Name of the suspending rule.
    pub rule: String,
}

/// Outcome of running reduction to quiescence.
#[derive(Debug, Default)]
pub struct ReduceOutcome {
    /// Rule applications performed during this call.
    pub applications: u64,
    /// Effects newly suspended during this call, in order of suspension.
    pub suspended: Vec<EffectInfo>,
    /// True when no rule is applicable *and* no effect is pending: the
    /// solution reached its final state.
    pub inert: bool,
}

/// Work counters fed to the simulator's cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Rule applications.
    pub applications: u64,
    /// Candidate (pattern, atom) pairings examined while matching.
    pub match_attempts: u64,
    /// Structural weight of the solutions scanned (Σ solution weight per
    /// full matching pass) — the dominant cost driver per the paper ("the
    /// complexity of the pattern matching process depends on the size of
    /// the solution").
    pub weight_scanned: u64,
}

/// The reduction engine. One per agent / per centralized interpreter.
pub struct Engine {
    config: EngineConfig,
    matcher: Matcher,
    rng: Option<SmallRng>,
    next_effect: u64,
    stats: ReduceStats,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Engine with default (deterministic) configuration.
    pub fn new() -> Self {
        Engine::with_config(EngineConfig::default())
    }

    /// Engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        let rng = config.shuffle_seed.map(SmallRng::seed_from_u64);
        Engine {
            config,
            matcher: Matcher::new(),
            rng,
            next_effect: 0,
            stats: ReduceStats::default(),
        }
    }

    /// Accumulated work counters.
    pub fn stats(&self) -> ReduceStats {
        self.stats
    }

    /// Return and reset the work counters (per-event accounting in the
    /// simulator).
    pub fn take_stats(&mut self) -> ReduceStats {
        let s = self.stats;
        self.stats = ReduceStats::default();
        self.matcher.reset_stats();
        s
    }

    /// Reduce `solution` until no rule is applicable, collecting any
    /// suspensions along the way. Non-suspending reduction continues past a
    /// suspension: other molecules keep reacting (that is how the
    /// centralized interpreter would overlap invocations if its host chose
    /// to defer).
    pub fn reduce(
        &mut self,
        solution: &mut Solution,
        host: &mut dyn ExternHost,
    ) -> Result<ReduceOutcome, HoclError> {
        let mut out = ReduceOutcome::default();
        let applications_before = self.stats.applications;
        let mut steps: u64 = 0;
        loop {
            if steps >= self.config.max_steps {
                return Err(HoclError::StepBudgetExhausted {
                    budget: self.config.max_steps,
                });
            }
            let nested_changed = self.reduce_nested(solution.atoms_mut(), host)?;
            match self.step_root(solution, host)? {
                StepOutcome::Applied { .. } => {
                    steps += 1;
                    out.applications += 1;
                }
                StepOutcome::Suspended(info) => {
                    steps += 1;
                    out.applications += 1;
                    out.suspended.push(info);
                }
                StepOutcome::Inert => {
                    if !nested_changed {
                        break;
                    }
                }
            }
        }
        out.inert = !solution.has_pending();
        // Applications include rules fired inside nested subsolutions.
        out.applications = self.stats.applications - applications_before;
        self.stats.match_attempts = self.matcher.stats().attempts;
        Ok(out)
    }

    /// Resume the suspended application `id` with the result atoms of its
    /// deferred extern, then (the caller typically) `reduce` again.
    pub fn resume(
        &mut self,
        solution: &mut Solution,
        id: EffectId,
        result: Vec<Atom>,
        host: &mut dyn ExternHost,
    ) -> Result<(), HoclError> {
        let pending = solution
            .take_pending(id)
            .ok_or(HoclError::UnknownEffect(id.0))?;
        let mut inst = Instantiator::resuming(host, pending.call_index, result);
        match inst.produce(&pending.rhs, &pending.bindings)? {
            Produced::Atoms(atoms) => {
                solution.atoms_mut().extend(atoms);
                Ok(())
            }
            Produced::Deferred { name, .. } => Err(HoclError::MultipleDeferred(name)),
        }
    }

    /// One top-level step: try each rule atom against the root solution.
    fn step_root(
        &mut self,
        solution: &mut Solution,
        host: &mut dyn ExternHost,
    ) -> Result<StepOutcome, HoclError> {
        self.stats.weight_scanned += solution.atoms().weight() as u64;
        let rule_indices = solution.atoms().rule_indices();
        for rule_idx in rule_indices {
            let rule: Arc<Rule> = match solution.atoms().get(rule_idx) {
                Some(Atom::Rule(r)) => r.clone(),
                _ => continue,
            };
            let order = self.candidate_order(solution.atoms());
            let found = self.matcher.find_match(
                &rule,
                solution.atoms(),
                Some(rule_idx),
                order.as_deref(),
                host,
            )?;
            let m = match found {
                Some(m) => m,
                None => continue,
            };
            // Instantiate the RHS first; mutate only on success.
            let mut inst = Instantiator::new(host);
            let produced = inst.produce(rule.rhs(), &m.bindings)?;
            let mut to_remove = m.consumed.clone();
            if rule.is_one_shot() {
                to_remove.push(rule_idx);
            }
            match produced {
                Produced::Atoms(atoms) => {
                    solution.atoms_mut().remove_indices(&mut to_remove);
                    solution.atoms_mut().extend(atoms);
                    self.stats.applications += 1;
                    return Ok(StepOutcome::Applied {
                        rule: rule.name().to_owned(),
                    });
                }
                Produced::Deferred {
                    call_index,
                    args,
                    name,
                } => {
                    solution.atoms_mut().remove_indices(&mut to_remove);
                    let id = EffectId(self.next_effect);
                    self.next_effect += 1;
                    solution.push_pending(Pending {
                        id,
                        rule_name: rule.name().to_owned(),
                        rhs: rule.rhs().to_vec(),
                        bindings: m.bindings,
                        call_index,
                        extern_name: name.clone(),
                    });
                    self.stats.applications += 1;
                    return Ok(StepOutcome::Suspended(EffectInfo {
                        id,
                        name,
                        args,
                        rule: rule.name().to_owned(),
                    }));
                }
            }
        }
        Ok(StepOutcome::Inert)
    }

    /// Bottom-up reduction of every nested subsolution — including
    /// subsolutions sitting inside tuples or lists, which is where task
    /// bodies live (`T1 : ⟨…⟩` molecules). Returns whether any rule fired
    /// anywhere below the root.
    fn reduce_nested(
        &mut self,
        ms: &mut Multiset,
        host: &mut dyn ExternHost,
    ) -> Result<bool, HoclError> {
        let mut changed_any = false;
        for i in 0..ms.len() {
            let Some(atom) = ms.get_mut(i) else { continue };
            // Taking the atom's contents out sidesteps simultaneous borrows
            // of the multiset and `self`.
            let mut owned = std::mem::replace(atom, Atom::Bool(false));
            let result = self.reduce_atom_children(&mut owned, host);
            if let Some(slot) = ms.get_mut(i) {
                *slot = owned;
            }
            changed_any |= result?;
        }
        Ok(changed_any)
    }

    /// Recurse through an atom's structure reducing every subsolution.
    fn reduce_atom_children(
        &mut self,
        atom: &mut Atom,
        host: &mut dyn ExternHost,
    ) -> Result<bool, HoclError> {
        match atom {
            Atom::Sub(ms) => self.reduce_sub_to_inert(ms, host),
            Atom::Tuple(v) | Atom::List(v) => {
                let mut changed = false;
                for a in v {
                    changed |= self.reduce_atom_children(a, host)?;
                }
                Ok(changed)
            }
            _ => Ok(false),
        }
    }

    /// Reduce one subsolution (and its own nested subs) until inert.
    /// Deferred externs are illegal here.
    fn reduce_sub_to_inert(
        &mut self,
        ms: &mut Multiset,
        host: &mut dyn ExternHost,
    ) -> Result<bool, HoclError> {
        let mut changed_any = false;
        let mut steps: u64 = 0;
        loop {
            if steps >= self.config.max_steps {
                return Err(HoclError::StepBudgetExhausted {
                    budget: self.config.max_steps,
                });
            }
            let nested = self.reduce_nested(ms, host)?;
            changed_any |= nested;
            match self.step_in(ms, host)? {
                true => {
                    steps += 1;
                    changed_any = true;
                }
                false => {
                    if !nested {
                        break;
                    }
                }
            }
        }
        Ok(changed_any)
    }

    /// One application attempt inside a nested multiset (no suspension).
    fn step_in(&mut self, ms: &mut Multiset, host: &mut dyn ExternHost) -> Result<bool, HoclError> {
        self.stats.weight_scanned += ms.weight() as u64;
        let rule_indices = ms.rule_indices();
        for rule_idx in rule_indices {
            let rule: Arc<Rule> = match ms.get(rule_idx) {
                Some(Atom::Rule(r)) => r.clone(),
                _ => continue,
            };
            let order = self.candidate_order(ms);
            let found =
                self.matcher
                    .find_match(&rule, ms, Some(rule_idx), order.as_deref(), host)?;
            let m = match found {
                Some(m) => m,
                None => continue,
            };
            let mut inst = Instantiator::new(host);
            match inst.produce(rule.rhs(), &m.bindings)? {
                Produced::Atoms(atoms) => {
                    let mut to_remove = m.consumed.clone();
                    if rule.is_one_shot() {
                        to_remove.push(rule_idx);
                    }
                    ms.remove_indices(&mut to_remove);
                    ms.extend(atoms);
                    self.stats.applications += 1;
                    return Ok(true);
                }
                Produced::Deferred { name, .. } => {
                    return Err(HoclError::DeferredInNested(name));
                }
            }
        }
        Ok(false)
    }

    /// Shuffled candidate order in nondeterministic mode, `None` otherwise.
    fn candidate_order(&mut self, ms: &Multiset) -> Option<Vec<usize>> {
        let rng = self.rng.as_mut()?;
        let mut order: Vec<usize> = (0..ms.len()).collect();
        order.shuffle(rng);
        Some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::externs::{ExternResult, NoExterns, PureExterns};
    use crate::guard::{Expr, Guard};
    use crate::pattern::Pattern;
    use crate::template::Template;

    fn max_rule() -> Rule {
        Rule::builder("max")
            .lhs([Pattern::var("x"), Pattern::var("y")])
            .guard(Guard::ge(Expr::var("x"), Expr::var("y")))
            .rhs([Template::var("x")])
            .build()
    }

    #[test]
    fn getmax_reduces_to_single_max() {
        // The paper's §III-A example.
        let mut sol = Solution::from_atoms([
            Atom::int(2),
            Atom::int(3),
            Atom::int(5),
            Atom::int(8),
            Atom::int(9),
            Atom::rule(max_rule()),
        ]);
        let mut engine = Engine::new();
        let out = engine.reduce(&mut sol, &mut NoExterns).unwrap();
        assert!(out.inert);
        assert_eq!(out.applications, 4);
        let ints: Vec<i64> = sol.atoms().iter().filter_map(Atom::as_int).collect();
        assert_eq!(ints, vec![9]);
        // The recurring rule survives.
        assert_eq!(sol.atoms().rule_indices().len(), 1);
    }

    #[test]
    fn getmax_confluent_under_random_orders() {
        for seed in 0..20 {
            let mut sol = Solution::from_atoms(
                [4i64, 1, 7, 3, 9, 2, 8]
                    .into_iter()
                    .map(Atom::int)
                    .chain([Atom::rule(max_rule())]),
            );
            let mut engine = Engine::with_config(EngineConfig {
                shuffle_seed: Some(seed),
                ..EngineConfig::default()
            });
            engine.reduce(&mut sol, &mut NoExterns).unwrap();
            let ints: Vec<i64> = sol.atoms().iter().filter_map(Atom::as_int).collect();
            assert_eq!(ints, vec![9], "seed {seed} broke confluence");
        }
    }

    #[test]
    fn higher_order_clean_extracts_result() {
        // let clean = replace-one <max, ω> by ω in <<2,3,5,8,9,max>, clean>
        let clean = Rule::builder("clean")
            .one_shot()
            .lhs([Pattern::sub_with_rest(
                [Pattern::RuleNamed("max".into())],
                "w",
            )])
            .rhs([Template::var("w")])
            .build();
        let inner = Atom::sub([
            Atom::int(2),
            Atom::int(3),
            Atom::int(5),
            Atom::int(8),
            Atom::int(9),
            Atom::rule(max_rule()),
        ]);
        let mut sol = Solution::from_atoms([inner, Atom::rule(clean)]);
        let mut engine = Engine::new();
        let out = engine.reduce(&mut sol, &mut NoExterns).unwrap();
        assert!(out.inert);
        // Inner reduced to <9, max>, then clean extracted 9 and dropped
        // both max and itself.
        assert_eq!(sol.atoms().len(), 1);
        assert_eq!(sol.atoms().get(0), Some(&Atom::int(9)));
    }

    #[test]
    fn one_shot_rule_fires_once() {
        let once = Rule::builder("once")
            .one_shot()
            .lhs([Pattern::var("x")])
            .guard(Guard::eq(Expr::var("x"), Expr::lit(1i64)))
            .rhs([Template::lit(100i64)])
            .build();
        let mut sol = Solution::from_atoms([Atom::int(1), Atom::int(1), Atom::rule(once)]);
        let mut engine = Engine::new();
        let out = engine.reduce(&mut sol, &mut NoExterns).unwrap();
        assert!(out.inert);
        assert_eq!(out.applications, 1);
        // One `1` became `100`; the other survives; the rule is gone.
        assert_eq!(sol.atoms().count(&Atom::int(100)), 1);
        assert_eq!(sol.atoms().count(&Atom::int(1)), 1);
        assert!(sol.atoms().rule_indices().is_empty());
    }

    #[test]
    fn suspension_and_resume() {
        struct DeferInvoke;
        impl ExternHost for DeferInvoke {
            fn call(&mut self, name: &str, _args: &[Atom]) -> Result<ExternResult, HoclError> {
                match name {
                    "invoke" => Ok(ExternResult::Deferred),
                    other => Err(HoclError::UnknownExtern(other.to_owned())),
                }
            }
        }
        // call = replace-one SRV:?s, PAR:?p by RES:<invoke(?s, ?p)>
        let call = Rule::builder("call")
            .one_shot()
            .lhs([
                Pattern::keyed("SRV", [Pattern::var("s")]),
                Pattern::keyed("PAR", [Pattern::var("p")]),
            ])
            .rhs([Template::keyed(
                "RES",
                [Template::sub([Template::call(
                    "invoke",
                    [Template::var("s"), Template::var("p")],
                )])],
            )])
            .build();
        let mut sol = Solution::from_atoms([
            Atom::keyed("SRV", [Atom::sym("s2")]),
            Atom::keyed("PAR", [Atom::list([Atom::int(1)])]),
            Atom::rule(call),
        ]);
        let mut engine = Engine::new();
        let out = engine.reduce(&mut sol, &mut DeferInvoke).unwrap();
        assert!(!out.inert);
        assert_eq!(out.suspended.len(), 1);
        let eff = &out.suspended[0];
        assert_eq!(eff.name, "invoke");
        assert_eq!(eff.args, vec![Atom::sym("s2"), Atom::list([Atom::int(1)])]);
        // LHS consumed, rule gone (one-shot), nothing produced yet.
        assert_eq!(sol.atoms().len(), 0);
        assert!(sol.has_pending());

        engine
            .resume(&mut sol, eff.id, vec![Atom::str("out")], &mut DeferInvoke)
            .unwrap();
        let out2 = engine.reduce(&mut sol, &mut DeferInvoke).unwrap();
        assert!(out2.inert);
        assert_eq!(
            sol.atoms().get(0),
            Some(&Atom::keyed("RES", [Atom::sub([Atom::str("out")])]))
        );
    }

    #[test]
    fn resume_unknown_effect_errors() {
        let mut sol = Solution::new();
        let mut engine = Engine::new();
        let err = engine
            .resume(&mut sol, EffectId(42), vec![], &mut NoExterns)
            .unwrap_err();
        assert!(matches!(err, HoclError::UnknownEffect(42)));
    }

    #[test]
    fn nested_deferred_is_rejected() {
        struct DeferInvoke;
        impl ExternHost for DeferInvoke {
            fn call(&mut self, _n: &str, _a: &[Atom]) -> Result<ExternResult, HoclError> {
                Ok(ExternResult::Deferred)
            }
        }
        let inner_rule = Rule::builder("r")
            .one_shot()
            .lhs([Pattern::lit(Atom::int(1))])
            .rhs([Template::call("invoke", [])])
            .build();
        let mut sol = Solution::from_atoms([Atom::sub([Atom::int(1), Atom::rule(inner_rule)])]);
        let mut engine = Engine::new();
        let err = engine.reduce(&mut sol, &mut DeferInvoke).unwrap_err();
        assert!(matches!(err, HoclError::DeferredInNested(_)));
    }

    #[test]
    fn step_budget_stops_runaway_programs() {
        // spin = replace ?x by ?x — fires forever.
        let spin = Rule::builder("spin")
            .lhs([Pattern::var("x")])
            .rhs([Template::var("x")])
            .build();
        let mut sol = Solution::from_atoms([Atom::int(1), Atom::rule(spin)]);
        let mut engine = Engine::with_config(EngineConfig {
            max_steps: 50,
            shuffle_seed: None,
        });
        let err = engine.reduce(&mut sol, &mut NoExterns).unwrap_err();
        assert!(matches!(err, HoclError::StepBudgetExhausted { budget: 50 }));
    }

    #[test]
    fn pure_externs_in_rhs() {
        let sum = Rule::builder("sum")
            .one_shot()
            .lhs([Pattern::var("x"), Pattern::var("y")])
            .rhs([Template::call(
                "add",
                [Template::var("x"), Template::var("y")],
            )])
            .build();
        let mut sol = Solution::from_atoms([Atom::int(20), Atom::int(22), Atom::rule(sum)]);
        let mut engine = Engine::new();
        let mut host = PureExterns::new();
        let out = engine.reduce(&mut sol, &mut host).unwrap();
        assert!(out.inert);
        assert_eq!(sol.atoms().count(&Atom::int(42)), 1);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut sol = Solution::from_atoms([Atom::int(1), Atom::int(2), Atom::rule(max_rule())]);
        let mut engine = Engine::new();
        engine.reduce(&mut sol, &mut NoExterns).unwrap();
        let s = engine.take_stats();
        assert!(s.applications >= 1);
        assert!(s.weight_scanned > 0);
        assert_eq!(engine.stats(), ReduceStats::default());
    }
}
