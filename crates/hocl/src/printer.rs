//! Pretty-printer emitting the text syntax the parser accepts.
//!
//! `parse_program(pretty(&program))` reproduces the program (round-trip
//! property tested in `tests/parser_roundtrip.rs`), with one caveat: rule
//! atoms floating in solutions print as their *name*, so they only reparse
//! when a `let` definition with that name is in scope — which `pretty`
//! guarantees by emitting every distinct rule it encounters.

use crate::atom::Atom;
use crate::multiset::Multiset;
use crate::parser::Program;
use crate::rule::Rule;
use crate::solution::Solution;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::Arc;

/// Pretty-print a full program: `let` definitions then the solution.
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    let mut emitted: HashSet<String> = HashSet::new();
    // Rules referenced by solution atoms but missing from `rules` are
    // collected so the output always reparses.
    let mut all_rules: Vec<Arc<Rule>> = program.rules.clone();
    collect_rules_ms(program.solution.atoms(), &mut all_rules);
    for rule in &all_rules {
        if emitted.insert(rule.name().to_owned()) {
            let _ = writeln!(out, "let {} in", rule);
        }
    }
    out.push_str(&pretty_solution(&program.solution));
    out
}

/// Pretty-print a solution literal `⟨…⟩`.
pub fn pretty_solution(solution: &Solution) -> String {
    let mut out = String::new();
    write_multiset(&mut out, solution.atoms());
    out
}

fn collect_rules_ms(ms: &Multiset, out: &mut Vec<Arc<Rule>>) {
    for atom in ms.iter() {
        collect_rules_atom(atom, out);
    }
}

fn collect_rules_atom(atom: &Atom, out: &mut Vec<Arc<Rule>>) {
    match atom {
        Atom::Rule(r) if !out.iter().any(|x| x.name() == r.name()) => {
            out.push(r.clone());
        }
        Atom::Sub(ms) => collect_rules_ms(ms, out),
        Atom::Tuple(v) | Atom::List(v) => {
            for a in v {
                collect_rules_atom(a, out);
            }
        }
        _ => {}
    }
}

fn write_multiset(out: &mut String, ms: &Multiset) {
    out.push('<');
    for (i, a) in ms.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_atom(out, a);
    }
    out.push('>');
}

fn write_atom(out: &mut String, atom: &Atom) {
    match atom {
        Atom::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Atom::Float(v) => {
            // Keep a decimal point so the value reparses as a float.
            if v.fract() == 0.0 && v.is_finite() {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Atom::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Atom::Str(s) => write_string(out, s),
        Atom::Sym(s) => out.push_str(s.as_str()),
        Atom::Tuple(v) => {
            for (i, a) in v.iter().enumerate() {
                if i > 0 {
                    out.push(':');
                }
                match a {
                    Atom::Tuple(_) => {
                        out.push('(');
                        write_atom(out, a);
                        out.push(')');
                    }
                    _ => write_atom(out, a),
                }
            }
        }
        Atom::Sub(ms) => write_multiset(out, ms),
        Atom::List(v) => {
            out.push('[');
            for (i, a) in v.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_atom(out, a);
            }
            out.push(']');
        }
        Atom::Rule(r) => out.push_str(r.name()),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn program_roundtrip() {
        let src = "
            let max = replace ?x, ?y by ?x if ?x >= ?y in
            let clean = replace-one <rule(max), *w> by ?w in
            <<2, 3, 5, 8, 9, max>, clean>
        ";
        let p1 = parse_program(src).unwrap();
        let printed = pretty(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1.solution, p2.solution);
        assert_eq!(p1.rules.len(), p2.rules.len());
        for (a, b) in p1.rules.iter().zip(p2.rules.iter()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.lhs(), b.lhs());
            assert_eq!(a.rhs(), b.rhs());
            assert_eq!(a.is_one_shot(), b.is_one_shot());
        }
    }

    #[test]
    fn floats_keep_their_point() {
        let sol = Solution::from_atoms([Atom::float(2.0)]);
        let printed = pretty_solution(&sol);
        assert_eq!(printed, "<2.0>");
        let back = crate::parser::parse_solution(&printed).unwrap();
        assert_eq!(back.atoms().get(0), Some(&Atom::float(2.0)));
    }

    #[test]
    fn strings_escape() {
        let sol = Solution::from_atoms([Atom::str("a\"b\\c\nd")]);
        let printed = pretty_solution(&sol);
        let back = crate::parser::parse_solution(&printed).unwrap();
        assert_eq!(back.atoms().get(0), Some(&Atom::str("a\"b\\c\nd")));
    }

    #[test]
    fn unreferenced_rules_in_sub_are_emitted() {
        // A rule atom buried in a nested subsolution must still get a
        // `let` definition.
        let r = Rule::builder("buried")
            .lhs([crate::pattern::Pattern::var("x")])
            .rhs([crate::template::Template::var("x")])
            .build();
        let sol = Solution::from_atoms([Atom::sub([Atom::rule(r)])]);
        let program = Program {
            rules: vec![],
            solution: sol,
        };
        let printed = pretty(&program);
        assert!(printed.contains("let buried ="));
        assert!(parse_program(&printed).is_ok());
    }
}
