//! Reaction rules: `replace LHS by RHS if guard` and the one-shot
//! `replace-one` variant.

use crate::guard::Guard;
use crate::pattern::Pattern;
use crate::template::Template;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A reaction rule.
///
/// Rules are immutable once built and shared via `Arc` when they float in
/// solutions as atoms. The paper's `with X inject M` sugar is available as
/// [`Rule::with_inject`]: it expands to `replace-one X by X, M`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    name: String,
    one_shot: bool,
    lhs: Vec<Pattern>,
    guard: Guard,
    rhs: Vec<Template>,
}

impl Rule {
    /// Start building a rule with the given name.
    pub fn builder(name: impl Into<String>) -> RuleBuilder {
        RuleBuilder {
            name: name.into(),
            one_shot: false,
            lhs: Vec::new(),
            guard: Guard::True,
            rhs: Vec::new(),
        }
    }

    /// The paper's HOCLflow sugar `with X inject M` ≡ `replace-one X by X, M`.
    ///
    /// `catalysts` are matched *and reproduced*; `injected` are added.
    pub fn with_inject(
        name: impl Into<String>,
        catalysts: impl IntoIterator<Item = (Pattern, Template)>,
        injected: impl IntoIterator<Item = Template>,
    ) -> Rule {
        let mut lhs = Vec::new();
        let mut rhs = Vec::new();
        for (p, t) in catalysts {
            lhs.push(p);
            rhs.push(t);
        }
        rhs.extend(injected);
        Rule {
            name: name.into(),
            one_shot: true,
            lhs,
            guard: Guard::True,
            rhs,
        }
    }

    /// Rule name (unique within a program by convention).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Is this a `replace-one` rule (consumed on first application)?
    pub fn is_one_shot(&self) -> bool {
        self.one_shot
    }

    /// The patterns consumed by the rule.
    pub fn lhs(&self) -> &[Pattern] {
        &self.lhs
    }

    /// The guard condition.
    pub fn guard(&self) -> &Guard {
        &self.guard
    }

    /// The templates produced by the rule.
    pub fn rhs(&self) -> &[Template] {
        &self.rhs
    }

    /// Total `Call` nodes in the RHS (deferred-call bookkeeping).
    pub fn rhs_call_count(&self) -> usize {
        self.rhs.iter().map(Template::count_calls).sum()
    }
}

/// Builder for [`Rule`].
pub struct RuleBuilder {
    name: String,
    one_shot: bool,
    lhs: Vec<Pattern>,
    guard: Guard,
    rhs: Vec<Template>,
}

impl RuleBuilder {
    /// Mark the rule one-shot (`replace-one`).
    pub fn one_shot(mut self) -> Self {
        self.one_shot = true;
        self
    }

    /// Set the LHS patterns.
    pub fn lhs(mut self, patterns: impl IntoIterator<Item = Pattern>) -> Self {
        self.lhs = patterns.into_iter().collect();
        self
    }

    /// Add one LHS pattern.
    pub fn consumes(mut self, pattern: Pattern) -> Self {
        self.lhs.push(pattern);
        self
    }

    /// Set the guard.
    pub fn guard(mut self, guard: Guard) -> Self {
        self.guard = guard;
        self
    }

    /// Set the RHS templates.
    pub fn rhs(mut self, templates: impl IntoIterator<Item = Template>) -> Self {
        self.rhs = templates.into_iter().collect();
        self
    }

    /// Add one RHS template.
    pub fn produces(mut self, template: Template) -> Self {
        self.rhs.push(template);
        self
    }

    /// Finish building.
    pub fn build(self) -> Rule {
        assert!(
            !self.lhs.is_empty(),
            "a rule must consume at least one atom"
        );
        Rule {
            name: self.name,
            one_shot: self.one_shot,
            lhs: self.lhs,
            guard: self.guard,
            rhs: self.rhs,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} = {}",
            self.name,
            if self.one_shot {
                "replace-one"
            } else {
                "replace"
            }
        )?;
        for (i, p) in self.lhs.iter().enumerate() {
            write!(f, "{}{p}", if i == 0 { " " } else { ", " })?;
        }
        f.write_str(" by")?;
        if self.rhs.is_empty() {
            f.write_str(" nothing")?;
        }
        for (i, t) in self.rhs.iter().enumerate() {
            write!(f, "{}{t}", if i == 0 { " " } else { ", " })?;
        }
        if self.guard != Guard::True {
            write!(f, " if {}", self.guard)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{Expr, Guard};

    #[test]
    fn builder_roundtrip() {
        let r = Rule::builder("max")
            .lhs([Pattern::var("x"), Pattern::var("y")])
            .guard(Guard::ge(Expr::var("x"), Expr::var("y")))
            .rhs([Template::var("x")])
            .build();
        assert_eq!(r.name(), "max");
        assert!(!r.is_one_shot());
        assert_eq!(r.lhs().len(), 2);
        assert_eq!(r.rhs().len(), 1);
        assert_eq!(format!("{r}"), "max = replace ?x, ?y by ?x if ?x >= ?y");
    }

    #[test]
    fn with_inject_expands_to_one_shot() {
        let r = Rule::with_inject(
            "adapt",
            [(Pattern::sym("GO"), Template::sym("GO"))],
            [Template::sym("ADAPT")],
        );
        assert!(r.is_one_shot());
        assert_eq!(r.lhs().len(), 1);
        assert_eq!(r.rhs().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one atom")]
    fn empty_lhs_rejected() {
        let _ = Rule::builder("bad").build();
    }

    #[test]
    fn rhs_call_count() {
        let r = Rule::builder("call")
            .lhs([Pattern::var("s")])
            .rhs([Template::call("invoke", [Template::var("s")])])
            .build();
        assert_eq!(r.rhs_call_count(), 1);
    }
}
