//! # ginflow-hocl — the Higher-Order Chemical Language
//!
//! A from-scratch Rust implementation of HOCL, the rule-based chemical
//! programming language GinFlow is built on (Banâtre, Fradet, Radenac,
//! *Generalised multisets for chemical programming*, MSCS 2006), extended
//! with the features the GinFlow paper (IPDPS 2016) relies on:
//!
//! * **Multisets** of unstructured *atoms*: numbers, strings, symbols,
//!   tuples (`A : B : C`), subsolutions (`⟨...⟩`), lists, and — because the
//!   language is *higher order* — reaction **rules themselves**.
//! * **Reaction rules** (`replace ... by ... if ...`), including one-shot
//!   rules (`replace-one`), pattern variables, ω (rest) variables that match
//!   the remainder of a subsolution, and cross-molecule unification (a
//!   variable bound in one matched molecule constrains the others — this is
//!   what makes the paper's `gw_pass` rule work).
//! * **Reduction** to inertness: rules are applied until none is applicable,
//!   recursively reducing subsolutions first (the HOCL execution model only
//!   lets an outer rule consume a subsolution once it is inert).
//! * **External functions** with three flavours: *pure* (compute atoms),
//!   *command* (side effect on the runtime, e.g. "send this result to the
//!   agent of task T4"), and *deferred* (asynchronous service invocation:
//!   the rule application suspends and is resumed when the result arrives).
//!   Deferred externs are the mechanism that lets the same `gw_call` rule
//!   drive both the centralized interpreter and the decentralised service
//!   agents.
//! * A **text syntax** (parser + pretty-printer) close to the paper's
//!   notation, used by the examples, the test-suite and the CLI.
//!
//! The crate is deliberately free of any I/O or threading: engines are pure
//! state machines, which is what allows `ginflow-agent`'s `SaCore` to be
//! driven identically by real threads and by the discrete-event simulator.
//!
//! ## Quick taste: the paper's `getMax` program
//!
//! ```
//! use ginflow_hocl::prelude::*;
//!
//! // let max = replace x, y by x if x >= y in <2, 3, 5, 8, 9, max>
//! let max = Rule::builder("max")
//!     .lhs([Pattern::var("x"), Pattern::var("y")])
//!     .guard(Guard::ge(Expr::var("x"), Expr::var("y")))
//!     .rhs([Template::var("x")])
//!     .build();
//! let mut sol = Solution::from_atoms([
//!     Atom::int(2), Atom::int(3), Atom::int(5),
//!     Atom::int(8), Atom::int(9), Atom::rule(max),
//! ]);
//! let mut engine = Engine::new();
//! engine.reduce(&mut sol, &mut NoExterns).unwrap();
//! assert!(sol.atoms().contains(&Atom::int(9)));
//! assert_eq!(sol.atoms().iter().filter(|a| a.is_int()).count(), 1);
//! ```

pub mod atom;
pub mod bindings;
pub mod engine;
pub mod error;
pub mod externs;
pub mod guard;
pub mod lexer;
pub mod matcher;
pub mod multiset;
pub mod parser;
pub mod pattern;
pub mod printer;
pub mod rule;
pub mod solution;
pub mod symbol;
pub mod template;

pub use atom::Atom;
pub use bindings::{Binding, Bindings};
pub use engine::{Engine, EngineConfig, ReduceOutcome, ReduceStats, StepOutcome};
pub use error::HoclError;
pub use externs::{EffectId, ExternHost, ExternResult, NoExterns, PureExterns};
pub use guard::{CmpOp, Expr, Guard};
pub use matcher::{Match, Matcher};
pub use multiset::Multiset;
pub use parser::{parse_program, parse_solution};
pub use pattern::{Pattern, SubPattern};
pub use printer::pretty;
pub use rule::{Rule, RuleBuilder};
pub use solution::{Pending, Solution};
pub use symbol::Symbol;
pub use template::Template;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::atom::Atom;
    pub use crate::bindings::{Binding, Bindings};
    pub use crate::engine::{Engine, EngineConfig, ReduceOutcome, StepOutcome};
    pub use crate::error::HoclError;
    pub use crate::externs::{EffectId, ExternHost, ExternResult, NoExterns, PureExterns};
    pub use crate::guard::{CmpOp, Expr, Guard};
    pub use crate::multiset::Multiset;
    pub use crate::pattern::{Pattern, SubPattern};
    pub use crate::rule::{Rule, RuleBuilder};
    pub use crate::solution::Solution;
    pub use crate::symbol::Symbol;
    pub use crate::template::Template;
}
