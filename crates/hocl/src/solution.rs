//! A [`Solution`] is the root multiset an engine reduces, together with the
//! bookkeeping for suspended (deferred) rule applications.

use crate::atom::Atom;
use crate::bindings::Bindings;
use crate::externs::EffectId;
use crate::multiset::Multiset;
use crate::template::Template;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A suspended rule application awaiting the result of a deferred extern.
///
/// The matched LHS atoms (and the rule atom itself, for one-shot rules) were
/// already consumed when the application suspended; `Engine::resume`
/// instantiates `rhs` under `bindings` with the deferred call at
/// `call_index` replaced by the effect's result atoms.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Pending {
    /// Effect identifier handed to the runtime.
    pub id: EffectId,
    /// Name of the rule that suspended (diagnostics).
    pub rule_name: String,
    /// The rule's RHS templates.
    pub rhs: Vec<Template>,
    /// Bindings of the suspended match.
    pub bindings: Bindings,
    /// Traversal index of the deferred `Call` node within `rhs`.
    pub call_index: usize,
    /// Extern name of the deferred call (diagnostics).
    pub extern_name: String,
}

impl fmt::Debug for Pending {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Pending(#{} rule={} extern={})",
            self.id.0, self.rule_name, self.extern_name
        )
    }
}

/// The root chemical solution an engine operates on.
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    atoms: Multiset,
    pending: Vec<Pending>,
}

impl Solution {
    /// Empty solution.
    pub fn new() -> Self {
        Solution::default()
    }

    /// Solution holding the given atoms.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Self {
        Solution {
            atoms: atoms.into_iter().collect(),
            pending: Vec::new(),
        }
    }

    /// Solution wrapping an existing multiset.
    pub fn from_multiset(atoms: Multiset) -> Self {
        Solution {
            atoms,
            pending: Vec::new(),
        }
    }

    /// The atoms of the solution.
    pub fn atoms(&self) -> &Multiset {
        &self.atoms
    }

    /// Mutable access to the atoms. The engine (and runtimes injecting
    /// delivered molecules) uses this; chemistry invariants are the
    /// caller's responsibility.
    pub fn atoms_mut(&mut self) -> &mut Multiset {
        &mut self.atoms
    }

    /// Insert one atom.
    pub fn insert(&mut self, atom: Atom) {
        self.atoms.insert(atom);
    }

    /// Are any rule applications suspended?
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Ids of all suspended applications.
    pub fn pending_ids(&self) -> Vec<EffectId> {
        self.pending.iter().map(|p| p.id).collect()
    }

    /// Read-only view of the suspended applications.
    pub fn pending(&self) -> &[Pending] {
        &self.pending
    }

    /// Record a suspension (engine-internal).
    pub(crate) fn push_pending(&mut self, pending: Pending) {
        self.pending.push(pending);
    }

    /// Remove and return the suspension with the given id.
    pub(crate) fn take_pending(&mut self, id: EffectId) -> Option<Pending> {
        let idx = self.pending.iter().position(|p| p.id == id)?;
        Some(self.pending.remove(idx))
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.atoms)?;
        if !self.pending.is_empty() {
            write!(f, " +{} pending", self.pending.len())?;
        }
        Ok(())
    }
}

impl fmt::Debug for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_bookkeeping() {
        let mut s = Solution::from_atoms([Atom::int(1)]);
        assert!(!s.has_pending());
        s.push_pending(Pending {
            id: EffectId(7),
            rule_name: "gw_call".into(),
            rhs: vec![],
            bindings: Bindings::new(),
            call_index: 0,
            extern_name: "invoke".into(),
        });
        assert!(s.has_pending());
        assert_eq!(s.pending_ids(), vec![EffectId(7)]);
        assert!(s.take_pending(EffectId(9)).is_none());
        let p = s.take_pending(EffectId(7)).unwrap();
        assert_eq!(p.rule_name, "gw_call");
        assert!(!s.has_pending());
    }

    #[test]
    fn display_mentions_pending() {
        let mut s = Solution::from_atoms([Atom::int(1)]);
        assert_eq!(format!("{s}"), "<1>");
        s.push_pending(Pending {
            id: EffectId(1),
            rule_name: "r".into(),
            rhs: vec![],
            bindings: Bindings::new(),
            call_index: 0,
            extern_name: "invoke".into(),
        });
        assert!(format!("{s}").contains("pending"));
    }
}
