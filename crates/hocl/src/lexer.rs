//! Lexer for the HOCL text syntax.
//!
//! The notation follows the paper as closely as ASCII allows:
//!
//! ```text
//! let max = replace ?x, ?y by ?x if ?x >= ?y in
//! let clean = replace-one <rule(max), *w> by ?w in
//! <<2, 3, 5, 8, 9, max>, clean>
//! ```
//!
//! `?x` is a one-atom variable, `*w` an ω (rest) variable, `<...>` a
//! subsolution, `[...]` a list, `a:b:c` a tuple, and bare identifiers are
//! symbols (or references to `let`-bound rules, resolved by the parser).
//! Identifiers may contain `'` so the paper's `T2'` reads naturally.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (supports `\"`, `\\`, `\n`, `\t`).
    Str(String),
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `=`
    Eq,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `?`
    Question,
    /// `*`
    Star,
    /// `_`
    Underscore,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Comma => f.write_str(","),
            Token::Colon => f.write_str(":"),
            Token::Lt => f.write_str("<"),
            Token::Gt => f.write_str(">"),
            Token::Le => f.write_str("<="),
            Token::Ge => f.write_str(">="),
            Token::EqEq => f.write_str("=="),
            Token::Ne => f.write_str("!="),
            Token::Eq => f.write_str("="),
            Token::LParen => f.write_str("("),
            Token::RParen => f.write_str(")"),
            Token::LBracket => f.write_str("["),
            Token::RBracket => f.write_str("]"),
            Token::Question => f.write_str("?"),
            Token::Star => f.write_str("*"),
            Token::Underscore => f.write_str("_"),
            Token::AndAnd => f.write_str("&&"),
            Token::OrOr => f.write_str("||"),
            Token::Bang => f.write_str("!"),
        }
    }
}

/// A token plus its source offset (for error messages).
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Lexing error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset where the problem starts.
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenise the whole input. `//` starts a comment to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    offset: i,
                });
                i += 1;
            }
            ':' => {
                tokens.push(Spanned {
                    token: Token::Colon,
                    offset: i,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    offset: i,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Spanned {
                    token: Token::LBracket,
                    offset: i,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Spanned {
                    token: Token::RBracket,
                    offset: i,
                });
                i += 1;
            }
            '?' => {
                tokens.push(Spanned {
                    token: Token::Question,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Spanned {
                    token: Token::Star,
                    offset: i,
                });
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Le,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Lt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Ge,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Gt,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::EqEq,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Eq,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Ne,
                        offset: i,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Bang,
                        offset: i,
                    });
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Spanned {
                        token: Token::AndAnd,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected && (single & is not a token)".into(),
                        offset: i,
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Spanned {
                        token: Token::OrOr,
                        offset: i,
                    });
                    i += 2;
                } else {
                    return Err(LexError {
                        message: "expected || (single | is not a token)".into(),
                        offset: i,
                    });
                }
            }
            '"' => {
                let (s, next) = lex_string(src, i)?;
                tokens.push(Spanned {
                    token: Token::Str(s),
                    offset: i,
                });
                i = next;
            }
            '-' => {
                if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
                    let (tok, next) = lex_number(src, i)?;
                    tokens.push(Spanned {
                        token: tok,
                        offset: i,
                    });
                    i = next;
                } else {
                    return Err(LexError {
                        message: "unexpected '-' (only numeric literals may be negative)".into(),
                        offset: i,
                    });
                }
            }
            '_' => {
                // `_` alone is the wildcard; `_foo` is an identifier.
                if bytes
                    .get(i + 1)
                    .is_some_and(|b| is_ident_continue(*b as char))
                {
                    let (tok, next) = lex_ident(src, i);
                    tokens.push(Spanned {
                        token: tok,
                        offset: i,
                    });
                    i = next;
                } else {
                    tokens.push(Spanned {
                        token: Token::Underscore,
                        offset: i,
                    });
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(src, i)?;
                tokens.push(Spanned {
                    token: tok,
                    offset: i,
                });
                i = next;
            }
            c if is_ident_start(c) => {
                let (tok, next) = lex_ident(src, i);
                tokens.push(Spanned {
                    token: tok,
                    offset: i,
                });
                i = next;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    offset: i,
                });
            }
        }
    }
    Ok(tokens)
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '\''
}

/// Identifiers additionally allow interior `-` when followed by a letter,
/// so the keyword `replace-one` lexes as one identifier while `x-1` is
/// rejected (no infix minus exists in HOCL).
fn lex_ident(src: &str, start: usize) -> (Token, usize) {
    let bytes = src.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if is_ident_continue(c) {
            i += 1;
        } else if c == '-'
            && bytes
                .get(i + 1)
                .is_some_and(|b| (*b as char).is_ascii_alphabetic())
        {
            i += 2;
        } else {
            break;
        }
    }
    (Token::Ident(src[start..i].to_owned()), i)
}

fn lex_number(src: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = src.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    let text = &src[start..i];
    if is_float {
        text.parse::<f64>()
            .map(|v| (Token::Float(v), i))
            .map_err(|e| LexError {
                message: format!("bad float literal {text:?}: {e}"),
                offset: start,
            })
    } else {
        text.parse::<i64>()
            .map(|v| (Token::Int(v), i))
            .map_err(|e| LexError {
                message: format!("bad integer literal {text:?}: {e}"),
                offset: start,
            })
    }
}

fn lex_string(src: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = src.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = bytes.get(i + 1).ok_or(LexError {
                    message: "unterminated escape".into(),
                    offset: i,
                })?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'n' => '\n',
                    b't' => '\t',
                    other => {
                        return Err(LexError {
                            message: format!("unknown escape \\{}", *other as char),
                            offset: i,
                        })
                    }
                });
                i += 2;
            }
            _ => {
                // Multi-byte UTF-8 passes through untouched.
                let ch_len = src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
                out.push_str(&src[i..i + ch_len]);
                i += ch_len;
            }
        }
    }
    Err(LexError {
        message: "unterminated string literal".into(),
        offset: start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("<1, -2.5, \"hi\">"),
            vec![
                Token::Lt,
                Token::Int(1),
                Token::Comma,
                Token::Float(-2.5),
                Token::Comma,
                Token::Str("hi".into()),
                Token::Gt,
            ]
        );
    }

    #[test]
    fn replace_one_is_one_identifier() {
        assert_eq!(
            toks("replace-one"),
            vec![Token::Ident("replace-one".into())]
        );
    }

    #[test]
    fn primes_in_identifiers() {
        assert_eq!(toks("T2'"), vec![Token::Ident("T2'".into())]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("?x >= ?y && ?a <= 1 || !(?b == ?c) != _"),
            vec![
                Token::Question,
                Token::Ident("x".into()),
                Token::Ge,
                Token::Question,
                Token::Ident("y".into()),
                Token::AndAnd,
                Token::Question,
                Token::Ident("a".into()),
                Token::Le,
                Token::Int(1),
                Token::OrOr,
                Token::Bang,
                Token::LParen,
                Token::Question,
                Token::Ident("b".into()),
                Token::EqEq,
                Token::Question,
                Token::Ident("c".into()),
                Token::RParen,
                Token::Ne,
                Token::Underscore,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(toks("1 // ignore\n2"), vec![Token::Int(1), Token::Int(2)]);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks(r#""a\"b\n""#), vec![Token::Str("a\"b\n".into())]);
    }

    #[test]
    fn wildcard_vs_identifier() {
        assert_eq!(
            toks("_ _x"),
            vec![Token::Underscore, Token::Ident("_x".into())]
        );
    }

    #[test]
    fn errors_carry_offset() {
        let err = lex("  @").unwrap_err();
        assert_eq!(err.offset, 2);
        assert!(lex("\"open").is_err());
        assert!(lex("a & b").is_err());
    }
}
