//! Interned-ish symbols: cheap-to-clone identifiers used for task names,
//! reserved keywords (`SRC`, `DST`, …) and service names.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A symbol is an immutable identifier backed by a reference-counted string.
///
/// Cloning is an atomic increment; equality first compares pointers (symbols
/// cloned from the same origin are equal without looking at the bytes) and
/// falls back to byte comparison so independently-created symbols with the
/// same spelling are still equal, as chemical semantics require.
#[derive(Clone, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Create a symbol from any string-like value.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// The symbol's spelling.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Symbol {}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol(Arc::from(s.as_str()))
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// Reserved HOCLflow keywords (Section III of the paper). Centralised here so
/// every crate spells them identically.
pub mod keywords {
    /// Incoming dependencies of a task.
    pub const SRC: &str = "SRC";
    /// Outgoing dependencies of a task.
    pub const DST: &str = "DST";
    /// Service implementing the task.
    pub const SRV: &str = "SRV";
    /// Input data (provenance-tagged `from : value` tuples).
    pub const IN: &str = "IN";
    /// Parameter list built by `gw_setup`.
    pub const PAR: &str = "PAR";
    /// Result of the service invocation.
    pub const RES: &str = "RES";
    /// Adaptation token: activates a standby alternative task.
    pub const TRIGGER: &str = "TRIGGER";
    /// Adaptation directive: add a destination to a source task.
    pub const ADDDST: &str = "ADDDST";
    /// Adaptation directive: move a source on a destination task.
    pub const MVSRC: &str = "MVSRC";
    /// Token whose presence enables the adaptation rules of a task.
    pub const ADAPT: &str = "ADAPT";
    /// Distinguished result of a failed service invocation.
    pub const ERROR: &str = "ERROR";
    /// Tag for workflow-initial inputs inside `IN`.
    pub const INPUT: &str = "INPUT";
    /// Tag wrapping a result delivered by a peer agent, awaiting `gw_recv`.
    pub const DELIVER: &str = "DELIVER";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_structural() {
        let a = Symbol::new("SRC");
        let b = Symbol::new("SRC");
        let c = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, Symbol::new("DST"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Symbol::new("T2"), Symbol::new("T1"), Symbol::new("T10")];
        v.sort();
        let names: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["T1", "T10", "T2"]);
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::new("ADAPT");
        assert_eq!(format!("{s}"), "ADAPT");
        assert_eq!(format!("{s:?}"), "Symbol(ADAPT)");
    }

    #[test]
    fn serde_roundtrip() {
        let s = Symbol::new("T42");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"T42\"");
        let back: Symbol = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn hash_matches_equality() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Symbol::new("X"));
        assert!(set.contains(&Symbol::new("X")));
        assert!(set.contains("X"));
    }
}
