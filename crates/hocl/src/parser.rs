//! Recursive-descent parser for the HOCL text syntax.
//!
//! Grammar (see `lexer` docs for the token shapes):
//!
//! ```text
//! program   := letdef* solution
//! letdef    := "let" IDENT "=" ruledef "in"
//! ruledef   := ("replace" | "replace-one") patterns "by" templates ["if" guard]
//!            | "with" patterns "inject" templates
//! pattern   := ppost (":" ppost)*            -- 2+ parts make a tuple
//! ppost     := "?" IDENT | "_" | literal | IDENT | "rule" "(" IDENT ")"
//!            | "<" [pattern,* ["*" IDENT]] ">" | "[" pattern,* "]" | "(" pattern ")"
//! template  := tpost (":" tpost)*
//! tpost     := "?" IDENT | literal | IDENT | IDENT "(" template,* ")"
//!            | "<" template,* ">" | "[" template,* "]" | "(" template ")"
//! guard     := gor; gor := gand ("||" gand)*; gand := gnot ("&&" gnot)*
//! gnot      := "!" gprim | gprim
//! gprim     := expr CMP expr | IDENT "(" expr,* ")" | "(" guard ")"
//! expr      := "?" IDENT | literal | IDENT | IDENT "(" expr,* ")"
//! solution  := "<" [atom,*] ">"
//! atom      := apost (":" apost)* ; apost := literal | IDENT | "<"… | "["…
//! ```
//!
//! Inside solutions and templates, a bare identifier that names a
//! `let`-bound rule denotes that *rule atom* (the paper writes `max` inside
//! the solution); any other identifier is a symbol.

use crate::atom::Atom;
use crate::guard::{CmpOp, Expr, Guard};
use crate::lexer::{lex, LexError, Spanned, Token};
use crate::pattern::{Pattern, SubPattern};
use crate::rule::Rule;
use crate::solution::Solution;
use crate::template::Template;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A parsed HOCL program: `let` definitions plus the initial solution.
#[derive(Clone, Debug)]
pub struct Program {
    /// The `let`-bound rules, in definition order.
    pub rules: Vec<Arc<Rule>>,
    /// The initial solution (rule references already resolved to atoms).
    pub solution: Solution,
}

/// Parse error.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source (best effort).
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parse a complete program (`let … in … ⟨…⟩`).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(&tokens);
    let program = p.program()?;
    p.expect_eof()?;
    Ok(program)
}

/// Parse a bare solution literal `⟨…⟩` (no rule definitions).
pub fn parse_solution(src: &str) -> Result<Solution, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(&tokens);
    let ms = p.solution_literal()?;
    p.expect_eof()?;
    Ok(Solution::from_atoms(ms))
}

struct Parser<'t> {
    tokens: &'t [Spanned],
    pos: usize,
    rules: HashMap<String, Arc<Rule>>,
    rule_order: Vec<Arc<Rule>>,
}

impl<'t> Parser<'t> {
    fn new(tokens: &'t [Spanned]) -> Self {
        Parser {
            tokens,
            pos: 0,
            rules: HashMap::new(),
            rule_order: Vec::new(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or_else(|| self.tokens.last().map(|s| s.offset + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.offset(),
        })
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected {want}, found {t}"))
            }
            None => self.err(format!("expected {want}, found end of input")),
        }
    }

    fn expect_ident(&mut self, want: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == want => {
                self.pos += 1;
                Ok(())
            }
            other => {
                let found = other.map(|t| t.to_string()).unwrap_or("eof".into());
                self.err(format!("expected keyword `{want}`, found {found}"))
            }
        }
    }

    fn at_ident(&self, want: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == want)
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            self.err("trailing input after program")
        }
    }

    // ---- program ----------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        while self.at_ident("let") {
            self.bump();
            let name = self.ident()?;
            self.expect(&Token::Eq)?;
            let rule = self.ruledef(&name)?;
            let arc = Arc::new(rule);
            self.rules.insert(name, arc.clone());
            self.rule_order.push(arc);
            self.expect_ident("in")?;
        }
        let ms = self.solution_literal()?;
        Ok(Program {
            rules: self.rule_order.clone(),
            solution: Solution::from_atoms(ms),
        })
    }

    fn ruledef(&mut self, name: &str) -> Result<Rule, ParseError> {
        if self.at_ident("with") {
            self.bump();
            let patterns = self.pattern_list()?;
            self.expect_ident("inject")?;
            let injected = self.template_list()?;
            // `with X inject M` reproduces the catalysts: each LHS pattern
            // must be convertible to a template (no wildcards).
            let mut catalysts = Vec::with_capacity(patterns.len());
            for p in patterns {
                let t = pattern_to_template(&p).ok_or_else(|| ParseError {
                    message: format!(
                        "`with` catalyst pattern {p} cannot be reproduced (contains a wildcard)"
                    ),
                    offset: self.offset(),
                })?;
                catalysts.push((p, t));
            }
            return Ok(Rule::with_inject(name, catalysts, injected));
        }
        let one_shot = if self.at_ident("replace") {
            self.bump();
            false
        } else if self.at_ident("replace-one") {
            self.bump();
            true
        } else {
            return self.err("expected `replace`, `replace-one` or `with`");
        };
        let lhs = self.pattern_list()?;
        self.expect_ident("by")?;
        let rhs = if self.at_ident("nothing") {
            self.bump();
            Vec::new()
        } else {
            self.template_list()?
        };
        let guard = if self.at_ident("if") {
            self.bump();
            self.guard()?
        } else {
            Guard::True
        };
        let mut b = Rule::builder(name).lhs(lhs).guard(guard).rhs(rhs);
        if one_shot {
            b = b.one_shot();
        }
        Ok(b.build())
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => {
                let found = other.map(|t| t.to_string()).unwrap_or("eof".into());
                self.pos -= 1;
                self.err(format!("expected identifier, found {found}"))
            }
        }
    }

    // ---- patterns ----------------------------------------------------

    fn pattern_list(&mut self) -> Result<Vec<Pattern>, ParseError> {
        let mut out = vec![self.pattern()?];
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            out.push(self.pattern()?);
        }
        Ok(out)
    }

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        let first = self.pattern_primary()?;
        if self.peek() == Some(&Token::Colon) {
            let mut elems = vec![first];
            while self.peek() == Some(&Token::Colon) {
                self.bump();
                elems.push(self.pattern_primary()?);
            }
            Ok(Pattern::Tuple(elems))
        } else {
            Ok(first)
        }
    }

    fn pattern_primary(&mut self) -> Result<Pattern, ParseError> {
        match self.peek().cloned() {
            Some(Token::Question) => {
                self.bump();
                Ok(Pattern::Var(self.ident()?))
            }
            Some(Token::Underscore) => {
                self.bump();
                Ok(Pattern::Any)
            }
            Some(Token::Int(v)) => {
                self.bump();
                Ok(Pattern::Lit(Atom::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.bump();
                Ok(Pattern::Lit(Atom::Float(v)))
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(Pattern::Lit(Atom::Str(s)))
            }
            Some(Token::Ident(name)) => {
                self.bump();
                match name.as_str() {
                    "true" => Ok(Pattern::Lit(Atom::Bool(true))),
                    "false" => Ok(Pattern::Lit(Atom::Bool(false))),
                    "rule" if self.peek() == Some(&Token::LParen) => {
                        self.bump();
                        let rname = self.ident()?;
                        self.expect(&Token::RParen)?;
                        Ok(Pattern::RuleNamed(rname))
                    }
                    _ => Ok(Pattern::Lit(Atom::sym(name))),
                }
            }
            Some(Token::Lt) => {
                self.bump();
                self.sub_pattern()
            }
            Some(Token::LBracket) => {
                self.bump();
                let mut elems = Vec::new();
                if self.peek() != Some(&Token::RBracket) {
                    elems.push(self.pattern()?);
                    while self.peek() == Some(&Token::Comma) {
                        self.bump();
                        elems.push(self.pattern()?);
                    }
                }
                self.expect(&Token::RBracket)?;
                Ok(Pattern::List(elems))
            }
            Some(Token::LParen) => {
                self.bump();
                let p = self.pattern()?;
                self.expect(&Token::RParen)?;
                Ok(p)
            }
            other => {
                let found = other.map(|t| t.to_string()).unwrap_or("eof".into());
                self.err(format!("expected a pattern, found {found}"))
            }
        }
    }

    /// Called after consuming `<`.
    fn sub_pattern(&mut self) -> Result<Pattern, ParseError> {
        let mut elems = Vec::new();
        let mut rest = None;
        loop {
            match self.peek() {
                Some(Token::Gt) => {
                    self.bump();
                    break;
                }
                Some(Token::Star) => {
                    self.bump();
                    rest = Some(self.ident()?);
                    self.expect(&Token::Gt)?;
                    break;
                }
                Some(_) => {
                    elems.push(self.pattern()?);
                    match self.peek() {
                        Some(Token::Comma) => {
                            self.bump();
                        }
                        Some(Token::Gt) | Some(Token::Star) => {}
                        _ => return self.err("expected `,`, `*rest` or `>` in subsolution"),
                    }
                }
                None => return self.err("unterminated subsolution pattern"),
            }
        }
        Ok(Pattern::Sub(SubPattern { elems, rest }))
    }

    // ---- templates ----------------------------------------------------

    fn template_list(&mut self) -> Result<Vec<Template>, ParseError> {
        let mut out = vec![self.template()?];
        while self.peek() == Some(&Token::Comma) {
            self.bump();
            out.push(self.template()?);
        }
        Ok(out)
    }

    fn template(&mut self) -> Result<Template, ParseError> {
        let first = self.template_primary()?;
        if self.peek() == Some(&Token::Colon) {
            let mut elems = vec![first];
            while self.peek() == Some(&Token::Colon) {
                self.bump();
                elems.push(self.template_primary()?);
            }
            Ok(Template::Tuple(elems))
        } else {
            Ok(first)
        }
    }

    fn template_primary(&mut self) -> Result<Template, ParseError> {
        match self.peek().cloned() {
            Some(Token::Question) => {
                self.bump();
                Ok(Template::Var(self.ident()?))
            }
            Some(Token::Int(v)) => {
                self.bump();
                Ok(Template::Lit(Atom::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.bump();
                Ok(Template::Lit(Atom::Float(v)))
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(Template::Lit(Atom::Str(s)))
            }
            Some(Token::Ident(name)) => {
                self.bump();
                if self.peek() == Some(&Token::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        args.push(self.template()?);
                        while self.peek() == Some(&Token::Comma) {
                            self.bump();
                            args.push(self.template()?);
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Template::Call(name, args));
                }
                match name.as_str() {
                    "true" => Ok(Template::Lit(Atom::Bool(true))),
                    "false" => Ok(Template::Lit(Atom::Bool(false))),
                    _ => match self.rules.get(&name) {
                        Some(rule) => Ok(Template::RuleLit(rule.clone())),
                        None => Ok(Template::Lit(Atom::sym(name))),
                    },
                }
            }
            Some(Token::Lt) => {
                self.bump();
                let mut elems = Vec::new();
                if self.peek() != Some(&Token::Gt) {
                    elems.push(self.template()?);
                    while self.peek() == Some(&Token::Comma) {
                        self.bump();
                        elems.push(self.template()?);
                    }
                }
                self.expect(&Token::Gt)?;
                Ok(Template::Sub(elems))
            }
            Some(Token::LBracket) => {
                self.bump();
                let mut elems = Vec::new();
                if self.peek() != Some(&Token::RBracket) {
                    elems.push(self.template()?);
                    while self.peek() == Some(&Token::Comma) {
                        self.bump();
                        elems.push(self.template()?);
                    }
                }
                self.expect(&Token::RBracket)?;
                Ok(Template::List(elems))
            }
            Some(Token::LParen) => {
                self.bump();
                let t = self.template()?;
                self.expect(&Token::RParen)?;
                Ok(t)
            }
            other => {
                let found = other.map(|t| t.to_string()).unwrap_or("eof".into());
                self.err(format!("expected a template, found {found}"))
            }
        }
    }

    // ---- guards ----------------------------------------------------

    fn guard(&mut self) -> Result<Guard, ParseError> {
        let mut left = self.guard_and()?;
        while self.peek() == Some(&Token::OrOr) {
            self.bump();
            let right = self.guard_and()?;
            left = Guard::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn guard_and(&mut self) -> Result<Guard, ParseError> {
        let mut left = self.guard_not()?;
        while self.peek() == Some(&Token::AndAnd) {
            self.bump();
            let right = self.guard_not()?;
            left = Guard::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn guard_not(&mut self) -> Result<Guard, ParseError> {
        if self.peek() == Some(&Token::Bang) {
            self.bump();
            let g = self.guard_not()?;
            return Ok(Guard::Not(Box::new(g)));
        }
        self.guard_primary()
    }

    fn guard_primary(&mut self) -> Result<Guard, ParseError> {
        // Parenthesised sub-guard vs parenthesised expression: try guard.
        if self.peek() == Some(&Token::LParen) {
            let save = self.pos;
            self.bump();
            if let Ok(g) = self.guard() {
                if self.peek() == Some(&Token::RParen) {
                    self.bump();
                    return Ok(g);
                }
            }
            self.pos = save;
        }
        // Predicate call `name(args)` not followed by a comparison operator.
        if let Some(Token::Ident(name)) = self.peek().cloned() {
            if self.tokens.get(self.pos + 1).map(|s| &s.token) == Some(&Token::LParen) {
                let save = self.pos;
                self.bump();
                self.bump();
                let mut args = Vec::new();
                if self.peek() != Some(&Token::RParen) {
                    args.push(self.expr()?);
                    while self.peek() == Some(&Token::Comma) {
                        self.bump();
                        args.push(self.expr()?);
                    }
                }
                self.expect(&Token::RParen)?;
                if !matches!(
                    self.peek(),
                    Some(Token::EqEq)
                        | Some(Token::Ne)
                        | Some(Token::Lt)
                        | Some(Token::Le)
                        | Some(Token::Gt)
                        | Some(Token::Ge)
                ) {
                    return Ok(Guard::Pred(name, args));
                }
                // It was the left side of a comparison after all.
                self.pos = save;
            }
        }
        let left = self.expr()?;
        let op = match self.peek() {
            Some(Token::EqEq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return self.err("expected comparison operator in guard"),
        };
        self.bump();
        let right = self.expr()?;
        Ok(Guard::Cmp(op, left, right))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Question) => {
                self.bump();
                Ok(Expr::Var(self.ident()?))
            }
            Some(Token::Int(v)) => {
                self.bump();
                Ok(Expr::Lit(Atom::Int(v)))
            }
            Some(Token::Float(v)) => {
                self.bump();
                Ok(Expr::Lit(Atom::Float(v)))
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(Expr::Lit(Atom::Str(s)))
            }
            Some(Token::Ident(name)) => {
                self.bump();
                if self.peek() == Some(&Token::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        args.push(self.expr()?);
                        while self.peek() == Some(&Token::Comma) {
                            self.bump();
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::Call(name, args));
                }
                match name.as_str() {
                    "true" => Ok(Expr::Lit(Atom::Bool(true))),
                    "false" => Ok(Expr::Lit(Atom::Bool(false))),
                    _ => Ok(Expr::Lit(Atom::sym(name))),
                }
            }
            other => {
                let found = other.map(|t| t.to_string()).unwrap_or("eof".into());
                self.err(format!("expected an expression, found {found}"))
            }
        }
    }

    // ---- solution literals ------------------------------------------

    fn solution_literal(&mut self) -> Result<Vec<Atom>, ParseError> {
        self.expect(&Token::Lt)?;
        let mut atoms = Vec::new();
        if self.peek() != Some(&Token::Gt) {
            atoms.push(self.atom()?);
            while self.peek() == Some(&Token::Comma) {
                self.bump();
                atoms.push(self.atom()?);
            }
        }
        self.expect(&Token::Gt)?;
        Ok(atoms)
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let first = self.atom_primary()?;
        if self.peek() == Some(&Token::Colon) {
            let mut elems = vec![first];
            while self.peek() == Some(&Token::Colon) {
                self.bump();
                elems.push(self.atom_primary()?);
            }
            Ok(Atom::Tuple(elems))
        } else {
            Ok(first)
        }
    }

    fn atom_primary(&mut self) -> Result<Atom, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.bump();
                Ok(Atom::Int(v))
            }
            Some(Token::Float(v)) => {
                self.bump();
                Ok(Atom::Float(v))
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(Atom::Str(s))
            }
            Some(Token::Ident(name)) => {
                self.bump();
                match name.as_str() {
                    "true" => Ok(Atom::Bool(true)),
                    "false" => Ok(Atom::Bool(false)),
                    _ => match self.rules.get(&name) {
                        Some(rule) => Ok(Atom::Rule(rule.clone())),
                        None => Ok(Atom::sym(name)),
                    },
                }
            }
            Some(Token::Lt) => {
                self.bump();
                let mut atoms = Vec::new();
                if self.peek() != Some(&Token::Gt) {
                    atoms.push(self.atom()?);
                    while self.peek() == Some(&Token::Comma) {
                        self.bump();
                        atoms.push(self.atom()?);
                    }
                }
                self.expect(&Token::Gt)?;
                Ok(Atom::sub(atoms))
            }
            Some(Token::LBracket) => {
                self.bump();
                let mut atoms = Vec::new();
                if self.peek() != Some(&Token::RBracket) {
                    atoms.push(self.atom()?);
                    while self.peek() == Some(&Token::Comma) {
                        self.bump();
                        atoms.push(self.atom()?);
                    }
                }
                self.expect(&Token::RBracket)?;
                Ok(Atom::List(atoms))
            }
            Some(Token::LParen) => {
                self.bump();
                let a = self.atom()?;
                self.expect(&Token::RParen)?;
                Ok(a)
            }
            other => {
                let found = other.map(|t| t.to_string()).unwrap_or("eof".into());
                self.err(format!("expected an atom, found {found}"))
            }
        }
    }
}

/// Convert a pattern into the template that reproduces the matched atoms
/// (used by the `with … inject …` sugar). Wildcards cannot be reproduced.
fn pattern_to_template(p: &Pattern) -> Option<Template> {
    match p {
        Pattern::Any => None,
        Pattern::Var(v) => Some(Template::Var(v.clone())),
        Pattern::Lit(a) => Some(Template::Lit(a.clone())),
        Pattern::Typed(v, _) => Some(Template::Var(v.clone())),
        Pattern::Tuple(ps) => Some(Template::Tuple(
            ps.iter().map(pattern_to_template).collect::<Option<_>>()?,
        )),
        Pattern::List(ps) => Some(Template::List(
            ps.iter().map(pattern_to_template).collect::<Option<_>>()?,
        )),
        Pattern::Sub(sp) => {
            let mut elems: Vec<Template> = sp
                .elems
                .iter()
                .map(pattern_to_template)
                .collect::<Option<_>>()?;
            if let Some(rest) = &sp.rest {
                elems.push(Template::Var(rest.clone()));
            }
            Some(Template::Sub(elems))
        }
        Pattern::RuleNamed(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::externs::NoExterns;

    #[test]
    fn parse_getmax_program_and_run_it() {
        let src = "
            let max = replace ?x, ?y by ?x if ?x >= ?y in
            <2, 3, 5, 8, 9, max>
        ";
        let program = parse_program(src).unwrap();
        assert_eq!(program.rules.len(), 1);
        let mut sol = program.solution;
        // The solution contains the rule atom, resolved by name.
        assert_eq!(sol.atoms().rule_indices().len(), 1);
        Engine::new().reduce(&mut sol, &mut NoExterns).unwrap();
        let ints: Vec<i64> = sol.atoms().iter().filter_map(Atom::as_int).collect();
        assert_eq!(ints, vec![9]);
    }

    #[test]
    fn parse_higher_order_clean() {
        let src = "
            let max = replace ?x, ?y by ?x if ?x >= ?y in
            let clean = replace-one <rule(max), *w> by ?w in
            <<2, 3, 5, 8, 9, max>, clean>
        ";
        let program = parse_program(src).unwrap();
        let mut sol = program.solution;
        Engine::new().reduce(&mut sol, &mut NoExterns).unwrap();
        assert_eq!(sol.atoms().len(), 1);
        assert_eq!(sol.atoms().get(0), Some(&Atom::int(9)));
    }

    #[test]
    fn parse_with_inject_sugar() {
        let src = "
            let go = with READY inject FIRE, 42 in
            <READY, go>
        ";
        let program = parse_program(src).unwrap();
        assert!(program.rules[0].is_one_shot());
        let mut sol = program.solution;
        Engine::new().reduce(&mut sol, &mut NoExterns).unwrap();
        assert!(sol.atoms().contains(&Atom::sym("READY")));
        assert!(sol.atoms().contains(&Atom::sym("FIRE")));
        assert!(sol.atoms().contains(&Atom::int(42)));
        assert!(sol.atoms().rule_indices().is_empty());
    }

    #[test]
    fn parse_workflow_style_molecules() {
        let src = "<T1:<SRC:<>, DST:<T2, T3>, SRV:s1, IN:<INPUT:\"data\">>>";
        let sol = parse_solution(src).unwrap();
        assert_eq!(sol.atoms().len(), 1);
        let t1 = sol.atoms().get(0).unwrap();
        assert_eq!(t1.tuple_key().unwrap().as_str(), "T1");
        let body = t1.as_tuple().unwrap()[1].as_sub().unwrap();
        assert_eq!(body.keyed_sub("DST").unwrap().len(), 2);
    }

    #[test]
    fn parse_guards_with_connectives() {
        let src = "
            let r = replace ?x, ?y by ?x if ?x >= ?y && !(?y == 0) || is_error(?x) in
            <>
        ";
        let program = parse_program(src).unwrap();
        let g = format!("{}", program.rules[0].guard());
        assert!(g.contains("&&"));
        assert!(g.contains("||"));
    }

    #[test]
    fn parse_omega_patterns() {
        let src = "
            let pass = replace RES:<*r>, DST:<?t, *d> by RES:<?r>, DST:<?d>, send(?t, ?r) in
            <>
        ";
        let program = parse_program(src).unwrap();
        let r = &program.rules[0];
        assert_eq!(r.lhs().len(), 2);
        assert_eq!(r.rhs_call_count(), 1);
    }

    #[test]
    fn parse_empty_rhs_keyword() {
        let src = "let drop = replace-one JUNK by nothing in <JUNK, drop>";
        let program = parse_program(src).unwrap();
        let mut sol = program.solution;
        Engine::new().reduce(&mut sol, &mut NoExterns).unwrap();
        assert!(sol.atoms().is_empty());
    }

    #[test]
    fn errors_are_located() {
        assert!(parse_program("let = replace ?x by ?x in <>").is_err());
        assert!(parse_program("<1, 2").is_err());
        assert!(parse_solution("<1,,2>").is_err());
        // `by` is lexed as a plain identifier, so the missing-pattern error
        // surfaces when the parser fails to find the `by` keyword.
        let e = parse_program("let r = replace by ?x in <>").unwrap_err();
        assert!(e.message.contains("by"));
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_solution("<1> <2>").is_err());
    }

    #[test]
    fn bools_and_negative_numbers() {
        let sol = parse_solution("<true, false, -3, -2.5>").unwrap();
        assert!(sol.atoms().contains(&Atom::Bool(true)));
        assert!(sol.atoms().contains(&Atom::Int(-3)));
        assert!(sol.atoms().contains(&Atom::Float(-2.5)));
    }
}
