//! Patterns: the left-hand side of reaction rules.
//!
//! A rule LHS is a sequence of patterns, each consuming exactly one atom of
//! the solution the rule fires in. Inside subsolution patterns, an ω ("rest")
//! variable may capture *all remaining* atoms — this is the paper's `ω`,
//! `ωSRC`, `ωIN`, … notation.

use crate::atom::{Atom, Shape};
use crate::symbol::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A pattern matching exactly one atom.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Matches any single atom without binding it.
    Any,
    /// Binds one atom to a variable. A repeated variable must match equal
    /// atoms (non-linear patterns, used by `gw_pass` to correlate `Ti`
    /// across molecules).
    Var(String),
    /// Matches an atom structurally equal to the literal.
    Lit(Atom),
    /// Matches a tuple of the same arity, element-wise.
    Tuple(Vec<Pattern>),
    /// Matches a subsolution: each element pattern consumes one distinct
    /// inner atom; the optional rest variable captures what is left.
    Sub(SubPattern),
    /// Matches a list of exactly the given element patterns.
    List(Vec<Pattern>),
    /// Matches a rule atom by rule name (higher order: this is how the
    /// paper's `clean` rule grabs `max`).
    RuleNamed(String),
    /// Matches one atom of the given shape class and binds it.
    Typed(String, TypeTag),
}

/// Subsolution pattern body.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct SubPattern {
    /// Patterns each consuming one distinct atom of the subsolution.
    pub elems: Vec<Pattern>,
    /// ω variable capturing the remaining atoms (possibly none). `None`
    /// means the subsolution must contain *exactly* the `elems`.
    pub rest: Option<String>,
}

/// Type constraint for [`Pattern::Typed`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TypeTag {
    /// Integer atoms.
    Int,
    /// Float atoms.
    Float,
    /// String atoms.
    Str,
    /// Boolean atoms.
    Bool,
    /// Symbol atoms.
    Sym,
    /// Subsolution atoms.
    Sub,
    /// List atoms.
    List,
}

impl TypeTag {
    /// Does `atom` belong to this type class?
    pub fn admits(self, atom: &Atom) -> bool {
        matches!(
            (self, atom),
            (TypeTag::Int, Atom::Int(_))
                | (TypeTag::Float, Atom::Float(_))
                | (TypeTag::Str, Atom::Str(_))
                | (TypeTag::Bool, Atom::Bool(_))
                | (TypeTag::Sym, Atom::Sym(_))
                | (TypeTag::Sub, Atom::Sub(_))
                | (TypeTag::List, Atom::List(_))
        )
    }
}

impl Pattern {
    /// Variable pattern.
    pub fn var(name: impl Into<String>) -> Self {
        Pattern::Var(name.into())
    }

    /// Literal pattern.
    pub fn lit(atom: impl Into<Atom>) -> Self {
        Pattern::Lit(atom.into())
    }

    /// Literal symbol pattern.
    pub fn sym(name: impl AsRef<str>) -> Self {
        Pattern::Lit(Atom::sym(name))
    }

    /// Tuple pattern.
    pub fn tuple(elems: impl IntoIterator<Item = Pattern>) -> Self {
        let v: Vec<Pattern> = elems.into_iter().collect();
        assert!(v.len() >= 2, "a tuple pattern needs at least two elements");
        Pattern::Tuple(v)
    }

    /// Keyed tuple pattern `KEY : p…` — the `SRC : ⟨…⟩` shape.
    pub fn keyed(key: impl AsRef<str>, rest: impl IntoIterator<Item = Pattern>) -> Self {
        let mut v = vec![Pattern::sym(key)];
        v.extend(rest);
        Pattern::tuple(v)
    }

    /// Subsolution pattern with element patterns and an ω rest variable.
    pub fn sub_with_rest(
        elems: impl IntoIterator<Item = Pattern>,
        rest: impl Into<String>,
    ) -> Self {
        Pattern::Sub(SubPattern {
            elems: elems.into_iter().collect(),
            rest: Some(rest.into()),
        })
    }

    /// Subsolution pattern that must match the elements exactly (no rest).
    pub fn sub_exact(elems: impl IntoIterator<Item = Pattern>) -> Self {
        Pattern::Sub(SubPattern {
            elems: elems.into_iter().collect(),
            rest: None,
        })
    }

    /// The empty-subsolution pattern `⟨⟩` — e.g. `SRC : ⟨⟩` in `gw_setup`.
    pub fn empty_sub() -> Self {
        Pattern::sub_exact([])
    }

    /// Subsolution pattern capturing the whole contents: `⟨ω⟩`.
    pub fn sub_rest(rest: impl Into<String>) -> Self {
        Pattern::sub_with_rest([], rest)
    }

    /// A shape pre-filter: if `Some(shape)`, only atoms of that shape can
    /// possibly match, letting the matcher skip candidates cheaply.
    pub fn shape_hint(&self) -> Option<Shape> {
        match self {
            Pattern::Lit(a) => Some(a.shape()),
            Pattern::Tuple(v) => Some(Shape::Tuple(v.len())),
            Pattern::Sub(_) => Some(Shape::Sub),
            Pattern::List(_) => Some(Shape::List),
            Pattern::RuleNamed(_) => Some(Shape::Rule),
            Pattern::Typed(_, tag) => Some(match tag {
                TypeTag::Int => Shape::Int,
                TypeTag::Float => Shape::Float,
                TypeTag::Str => Shape::Str,
                TypeTag::Bool => Shape::Bool,
                TypeTag::Sym => Shape::Sym,
                TypeTag::Sub => Shape::Sub,
                TypeTag::List => Shape::List,
            }),
            Pattern::Any | Pattern::Var(_) => None,
        }
    }

    /// For keyed tuple patterns, the key symbol (`SRC` in `SRC : ⟨…⟩`),
    /// enabling an even sharper candidate pre-filter.
    pub fn key_hint(&self) -> Option<&str> {
        match self {
            Pattern::Tuple(v) => match v.first() {
                Some(Pattern::Lit(Atom::Sym(s))) => Some(s.as_str()),
                _ => None,
            },
            _ => None,
        }
    }

    /// All variable names bound by this pattern (including ω variables),
    /// appended to `out`.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Pattern::Var(v) | Pattern::Typed(v, _) => out.push(v.clone()),
            Pattern::Tuple(ps) | Pattern::List(ps) => {
                for p in ps {
                    p.collect_vars(out);
                }
            }
            Pattern::Sub(sp) => {
                for p in &sp.elems {
                    p.collect_vars(out);
                }
                if let Some(r) = &sp.rest {
                    out.push(r.clone());
                }
            }
            Pattern::Any | Pattern::Lit(_) | Pattern::RuleNamed(_) => {}
        }
    }
}

/// Key symbol of a keyed tuple *atom* — counterpart of [`Pattern::key_hint`].
pub fn atom_key(atom: &Atom) -> Option<&Symbol> {
    atom.tuple_key()
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Any => f.write_str("_"),
            Pattern::Var(v) => write!(f, "?{v}"),
            Pattern::Lit(a) => write!(f, "{a}"),
            Pattern::Tuple(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(":")?;
                    }
                    match p {
                        Pattern::Tuple(_) => write!(f, "({p})")?,
                        _ => write!(f, "{p}")?,
                    }
                }
                Ok(())
            }
            Pattern::Sub(sp) => {
                f.write_str("<")?;
                let mut first = true;
                for p in &sp.elems {
                    if !first {
                        f.write_str(", ")?;
                    }
                    write!(f, "{p}")?;
                    first = false;
                }
                if let Some(r) = &sp.rest {
                    if !first {
                        f.write_str(", ")?;
                    }
                    write!(f, "*{r}")?;
                }
                f.write_str(">")
            }
            Pattern::List(ps) => {
                f.write_str("[")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str("]")
            }
            Pattern::RuleNamed(n) => write!(f, "rule({n})"),
            Pattern::Typed(v, t) => write!(f, "?{v}:{t:?}"),
        }
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hints() {
        let p = Pattern::keyed("SRC", [Pattern::empty_sub()]);
        assert_eq!(p.shape_hint(), Some(Shape::Tuple(2)));
        assert_eq!(p.key_hint(), Some("SRC"));
        assert_eq!(Pattern::var("x").shape_hint(), None);
        assert_eq!(Pattern::lit(3i64).shape_hint(), Some(Shape::Int));
    }

    #[test]
    fn collect_vars_walks_structure() {
        let p = Pattern::keyed("DST", [Pattern::sub_with_rest([Pattern::var("t")], "rest")]);
        let mut vars = vec![];
        p.collect_vars(&mut vars);
        assert_eq!(vars, vec!["t".to_string(), "rest".to_string()]);
    }

    #[test]
    fn type_tags() {
        assert!(TypeTag::Int.admits(&Atom::int(1)));
        assert!(!TypeTag::Int.admits(&Atom::float(1.0)));
        assert!(TypeTag::Sub.admits(&Atom::empty_sub()));
    }

    #[test]
    fn display_notation() {
        let p = Pattern::keyed("SRC", [Pattern::sub_with_rest([Pattern::var("t")], "w")]);
        assert_eq!(format!("{p}"), "SRC:<?t, *w>");
        assert_eq!(format!("{}", Pattern::empty_sub()), "<>");
    }
}
