//! Variable bindings produced by pattern matching.

use crate::atom::Atom;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// What a variable is bound to.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub enum Binding {
    /// An ordinary variable: exactly one atom.
    One(Atom),
    /// An ω (rest) variable: zero or more atoms from a subsolution.
    Many(Vec<Atom>),
}

impl Binding {
    /// The single atom, if this is a [`Binding::One`].
    pub fn as_one(&self) -> Option<&Atom> {
        match self {
            Binding::One(a) => Some(a),
            Binding::Many(_) => None,
        }
    }

    /// The atoms of the binding, one or many.
    pub fn atoms(&self) -> &[Atom] {
        match self {
            Binding::One(a) => std::slice::from_ref(a),
            Binding::Many(v) => v,
        }
    }
}

impl fmt::Debug for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Binding::One(a) => write!(f, "{a}"),
            Binding::Many(v) => {
                f.write_str("*[")?;
                for (i, a) in v.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str("]")
            }
        }
    }
}

/// An environment mapping variable names to bindings.
///
/// Backed by a `BTreeMap` — deterministic iteration order matters for
/// reproducible engines, and binding sets are tiny (a handful of entries).
#[derive(Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Bindings {
    map: BTreeMap<String, Binding>,
}

impl Bindings {
    /// Empty environment.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Look up a variable.
    pub fn get(&self, name: &str) -> Option<&Binding> {
        self.map.get(name)
    }

    /// Is the variable bound?
    pub fn is_bound(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Bind a variable to one atom. If already bound, succeeds only when the
    /// existing binding is equal (non-linear pattern consistency).
    pub fn bind_one(&mut self, name: &str, atom: Atom) -> bool {
        match self.map.get(name) {
            Some(Binding::One(existing)) => *existing == atom,
            Some(Binding::Many(_)) => false,
            None => {
                self.map.insert(name.to_owned(), Binding::One(atom));
                true
            }
        }
    }

    /// Bind an ω variable to a sequence of atoms, with the same consistency
    /// requirement for repeated names (compared as ordered sequences).
    pub fn bind_many(&mut self, name: &str, atoms: Vec<Atom>) -> bool {
        match self.map.get(name) {
            Some(Binding::Many(existing)) => *existing == atoms,
            Some(Binding::One(_)) => false,
            None => {
                self.map.insert(name.to_owned(), Binding::Many(atoms));
                true
            }
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// No bindings at all?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over `(name, binding)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Binding)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl fmt::Debug for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k}={v:?}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_lookup() {
        let mut b = Bindings::new();
        assert!(b.bind_one("x", Atom::int(1)));
        assert!(b.is_bound("x"));
        assert_eq!(b.get("x").unwrap().as_one(), Some(&Atom::int(1)));
        assert!(b.get("y").is_none());
    }

    #[test]
    fn nonlinear_consistency() {
        let mut b = Bindings::new();
        assert!(b.bind_one("t", Atom::sym("T1")));
        // Re-binding to the same value succeeds (pattern `?t … ?t`).
        assert!(b.bind_one("t", Atom::sym("T1")));
        // Re-binding to a different value fails.
        assert!(!b.bind_one("t", Atom::sym("T2")));
    }

    #[test]
    fn omega_bindings() {
        let mut b = Bindings::new();
        assert!(b.bind_many("w", vec![Atom::int(1), Atom::int(2)]));
        assert_eq!(b.get("w").unwrap().atoms().len(), 2);
        // Kind mismatch: an ω name cannot also be a One name.
        assert!(!b.bind_one("w", Atom::int(1)));
        assert!(!b.bind_many("w", vec![Atom::int(1)]));
        assert!(b.bind_many("w", vec![Atom::int(1), Atom::int(2)]));
    }

    #[test]
    fn deterministic_iteration() {
        let mut b = Bindings::new();
        b.bind_one("z", Atom::int(1));
        b.bind_one("a", Atom::int(2));
        let names: Vec<&str> = b.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
