//! # ginflow-montage — the Montage-shaped evaluation workload
//!
//! §V-D evaluates resilience "based on a realistic workflow (namely, the
//! Montage workflow)": 118 tasks building a 100-megapixel mosaic of the
//! M45 star cluster from the Montage astronomy toolbox. We do not ship the
//! toolbox binaries; what the experiment actually exercises is the
//! workflow's *shape* and *duration mix* (Fig 15):
//!
//! * a short preprocessing chain;
//! * a wide band of **108 parallel** projection/diff tasks whose durations
//!   are "quite heterogeneous: from 60 s to 310 s";
//! * a merge chain (concat → background model → background → add → shrink
//!   → JPEG) ending in a single mosaic;
//! * a duration CDF where ≈ "95% of the services have a running time …
//!   greater than 15 s" with buckets `T < 20`, `20 < T < 60`, `60 < T`;
//! * a fault-free makespan of ≈ **484 s**.
//!
//! [`workflow`] reproduces all of the above with synthetic idempotent
//! services (Montage tools are idempotent, which §IV-B relies on). Band
//! durations are stratified over [60 s, 310 s] so the canonical workload
//! is deterministic; per-run jitter is applied by the simulator's
//! `ServiceModel` layer in `ginflow-sim`.

pub mod cdf;
pub mod workload;

pub use cdf::{bucket_counts, duration_cdf, Buckets};
pub use workload::{durations_secs, workflow, MontageSpec, BAND_WIDTH, TOTAL_TASKS};
