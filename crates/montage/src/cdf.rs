//! Duration CDF helpers — the right half of Fig 15.

use serde::{Deserialize, Serialize};

/// The paper's three CDF annotation buckets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Buckets {
    /// Tasks with duration < 20 s.
    pub under_20: usize,
    /// Tasks with 20 s ≤ duration < 60 s.
    pub between_20_and_60: usize,
    /// Tasks with duration ≥ 60 s.
    pub over_60: usize,
}

/// The empirical CDF of a duration set: sorted `(t, fraction ≤ t)` points.
pub fn duration_cdf(durations: &[(String, f64)]) -> Vec<(f64, f64)> {
    let mut times: Vec<f64> = durations.iter().map(|&(_, d)| d).collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let n = times.len() as f64;
    times
        .into_iter()
        .enumerate()
        .map(|(i, t)| (t, (i + 1) as f64 / n))
        .collect()
}

/// Bucket a duration set into the Fig 15 annotation classes.
pub fn bucket_counts(durations: &[(String, f64)]) -> Buckets {
    let mut b = Buckets {
        under_20: 0,
        between_20_and_60: 0,
        over_60: 0,
    };
    for &(_, d) in durations {
        if d < 20.0 {
            b.under_20 += 1;
        } else if d < 60.0 {
            b.between_20_and_60 += 1;
        } else {
            b.over_60 += 1;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::durations_secs;

    #[test]
    fn cdf_is_monotone_and_complete() {
        let cdf = duration_cdf(&durations_secs());
        assert_eq!(cdf.len(), 118);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn canonical_buckets() {
        let b = bucket_counts(&durations_secs());
        assert_eq!(
            b,
            Buckets {
                under_20: 8,
                between_20_and_60: 2,
                over_60: 108
            }
        );
        assert_eq!(b.under_20 + b.between_20_and_60 + b.over_60, 118);
        // The dominant mass is the ≥ 60 s band, as in Fig 15.
        assert!(b.over_60 as f64 / 118.0 > 0.9);
    }

    #[test]
    fn empty_input() {
        assert!(duration_cdf(&[]).is_empty());
        let b = bucket_counts(&[]);
        assert_eq!(b.under_20 + b.between_20_and_60 + b.over_60, 0);
    }
}
