//! The 118-task Montage-shaped DAG and its duration model.

use ginflow_core::workflow::WorkflowBuilder;
use ginflow_core::{CoreError, Value, Workflow};
use serde::{Deserialize, Serialize};

/// Width of the parallel projection/diff band (Fig 15's "…108…").
pub const BAND_WIDTH: usize = 108;

/// Total task count of the canonical workload.
pub const TOTAL_TASKS: usize = 118;

/// Stage durations (seconds) of the canonical workload. Chosen so that
///
/// * the raw critical path is 31 + 310 + 128 = **469 s**; the simulated
///   coordination overhead (≈ 7 s) brings the fault-free makespan to the
///   paper's ≈ 484 s mean;
/// * band durations span **[60, 310] s** (stratified — "quite
///   heterogeneous");
/// * 114/118 ≈ 96.6% of tasks run longer than 15 s (paper: "95%");
/// * the CDF buckets `T < 20 / 20 ≤ T < 60 / 60 ≤ T` hold 8, 2 and 108
///   tasks.
const PRE_STAGES: [(&str, f64); 4] = [
    ("mArchiveList", 6.0),
    ("mImgtbl", 4.0),
    ("mHdr", 9.0),
    ("mOverlaps", 12.0),
];

const POST_STAGES: [(&str, f64); 6] = [
    ("mConcatFit", 18.0),
    ("mBgModel", 28.0),
    ("mBackground", 16.0),
    ("mAdd", 34.0),
    ("mShrink", 16.0),
    ("mJPEG", 16.0),
];

/// Band duration of task `i` (0-based): stratified over [60, 310].
fn band_duration(i: usize, width: usize) -> f64 {
    if width <= 1 {
        return 310.0;
    }
    60.0 + 250.0 * (i as f64) / ((width - 1) as f64)
}

/// Parameters of the generator (the canonical workload is
/// `MontageSpec::default()`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MontageSpec {
    /// Parallel band width.
    pub band_width: usize,
}

impl Default for MontageSpec {
    fn default() -> Self {
        MontageSpec {
            band_width: BAND_WIDTH,
        }
    }
}

impl MontageSpec {
    /// Build the workflow DAG.
    pub fn build(&self) -> Result<Workflow, CoreError> {
        let mut b = WorkflowBuilder::new("montage-m45");
        let mut prev: Option<&str> = None;
        for (name, _) in PRE_STAGES {
            let t = b.task(name, name);
            match prev {
                None => {
                    t.input(Value::str("m45-archive"));
                }
                Some(p) => {
                    t.after([p]);
                }
            }
            prev = Some(name);
        }
        let fan_root = prev.expect("preprocessing chain is non-empty");
        for i in 0..self.band_width {
            b.task(band_name(i), "mProjDiff").after([fan_root]);
        }
        let mut prev: Option<String> = None;
        for (name, _) in POST_STAGES {
            let t = b.task(name, name);
            match &prev {
                None => {
                    t.after((0..self.band_width).map(band_name));
                }
                Some(p) => {
                    t.after([p.clone()]);
                }
            }
            prev = Some(name.to_owned());
        }
        b.build()
    }

    /// Task durations in seconds, in task order.
    pub fn durations_secs(&self) -> Vec<(String, f64)> {
        let mut out = Vec::with_capacity(self.band_width + 10);
        for (name, d) in PRE_STAGES {
            out.push((name.to_owned(), d));
        }
        for i in 0..self.band_width {
            out.push((band_name(i), band_duration(i, self.band_width)));
        }
        for (name, d) in POST_STAGES {
            out.push((name.to_owned(), d));
        }
        out
    }

    /// The fault-free critical-path length in seconds (ignoring
    /// coordination overhead).
    pub fn critical_path_secs(&self) -> f64 {
        let pre: f64 = PRE_STAGES.iter().map(|(_, d)| d).sum();
        let post: f64 = POST_STAGES.iter().map(|(_, d)| d).sum();
        let band_max = (0..self.band_width)
            .map(|i| band_duration(i, self.band_width))
            .fold(0.0, f64::max);
        pre + band_max + post
    }
}

fn band_name(i: usize) -> String {
    format!("mProjDiff_{:03}", i + 1)
}

/// The canonical 118-task workload.
pub fn workflow() -> Workflow {
    MontageSpec::default()
        .build()
        .expect("canonical Montage workload is valid")
}

/// Durations of the canonical workload (seconds).
pub fn durations_secs() -> Vec<(String, f64)> {
    MontageSpec::default().durations_secs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_counts() {
        let wf = workflow();
        assert_eq!(wf.dag().len(), TOTAL_TASKS);
        assert_eq!(wf.dag().sources().len(), 1);
        assert_eq!(wf.dag().sinks().len(), 1);
        assert_eq!(wf.dag().sinks()[0], wf.dag().by_name("mJPEG").unwrap());
        // pre chain (4) + band (108) + post chain (6): depth 4+1+6.
        assert_eq!(wf.dag().critical_path_len().unwrap(), 11);
        // Edges: 3 chain + 108 fan-out + 108 fan-in + 5 chain.
        assert_eq!(wf.dag().edge_count(), 3 + 108 + 108 + 5);
    }

    #[test]
    fn critical_path_matches_the_papers_makespan() {
        let spec = MontageSpec::default();
        // 477 s of raw compute; the simulator's coordination overhead
        // (≈ 7 s) lands the observed makespan on the paper's ≈ 484 s.
        assert!((spec.critical_path_secs() - 469.0).abs() < 1e-9);
    }

    #[test]
    fn band_durations_span_60_to_310() {
        let durations = durations_secs();
        let band: Vec<f64> = durations
            .iter()
            .filter(|(n, _)| n.starts_with("mProjDiff"))
            .map(|&(_, d)| d)
            .collect();
        assert_eq!(band.len(), BAND_WIDTH);
        assert_eq!(band.iter().cloned().fold(f64::INFINITY, f64::min), 60.0);
        assert_eq!(band.iter().cloned().fold(0.0, f64::max), 310.0);
        // Heterogeneous: many distinct values.
        let mut uniq: Vec<i64> = band.iter().map(|d| (d * 1000.0) as i64).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() > 100);
    }

    #[test]
    fn ninety_five_percent_run_longer_than_15s() {
        let durations = durations_secs();
        let over15 = durations.iter().filter(|(_, d)| *d > 15.0).count();
        let fraction = over15 as f64 / durations.len() as f64;
        assert!(fraction >= 0.95, "got {fraction}");
    }

    #[test]
    fn scaled_down_variant_still_valid() {
        let spec = MontageSpec { band_width: 10 };
        let wf = spec.build().unwrap();
        assert_eq!(wf.dag().len(), 20);
        assert_eq!(spec.durations_secs().len(), 20);
        assert_eq!(spec.critical_path_secs(), 31.0 + 310.0 + 128.0);
    }

    #[test]
    fn tasks_and_durations_align() {
        let wf = workflow();
        for (name, d) in durations_secs() {
            assert!(wf.dag().by_name(&name).is_some(), "missing {name}");
            assert!(d > 0.0);
        }
    }
}
