//! §IV-B recovery on real threads: run a pipeline over the persistent log
//! broker, crash an agent mid-workflow, and watch a fresh incarnation
//! replay its inbox and finish the job.
//!
//! ```sh
//! cargo run --example resilient_run
//! ```

use ginflow::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // A five-stage pipeline with slow middle stages so the crash lands
    // mid-execution.
    let mut b = WorkflowBuilder::new("pipeline");
    b.task("extract", "svc").input(Value::str("dataset"));
    b.task("clean", "slow").after(["extract"]);
    b.task("transform", "slow").after(["clean"]);
    b.task("aggregate", "svc").after(["transform"]);
    b.task("publish", "svc").after(["aggregate"]);
    let wf = b.build().expect("valid pipeline");

    let mut registry = ServiceRegistry::tracing_for(["svc"]);
    registry.register(
        "slow",
        Arc::new(ginflow::core::SleepService::new(
            Duration::from_millis(150),
            TraceService::new("slow"),
        )),
    );

    // The log broker retains every message — recovery depends on it.
    let broker: Arc<dyn Broker> = Arc::new(LogBroker::new());
    let engine = Engine::builder()
        .broker(broker)
        .registry(Arc::new(registry))
        .build();
    let run = engine.launch(&wf);
    let mut events = run.events();

    // Crash `transform` before it can do its work.
    std::thread::sleep(Duration::from_millis(30));
    assert!(run.kill("transform"));
    std::thread::sleep(Duration::from_millis(60));
    println!(
        "crashed agent `transform` (alive: {})",
        run.alive("transform")
    );

    // Start a replacement: it replays its whole inbox from the log.
    assert!(run.respawn("transform"));
    println!(
        "respawned `transform` (incarnation {})",
        run.incarnation("transform")
    );

    let results = run
        .wait(Duration::from_secs(15))
        .expect("the recovered workflow completes");
    println!("publish result: {}", results["publish"]);
    println!("final states:");
    for (task, state) in run.statuses() {
        println!("  {task:<10} {state}");
    }
    let report = run.join();
    assert!(report.completed);
    assert!(report.respawns >= 1, "the replacement incarnation counts");

    // The recovery is visible on the typed event stream too.
    assert!(
        events.any(|e| matches!(
            e,
            RunEvent::AgentRespawned { ref task, incarnation } if task == "transform" && incarnation >= 1
        )),
        "expected an AgentRespawned event for `transform`"
    );
}
