//! The §V-D Montage campaign in miniature: simulate the 118-task mosaic
//! workflow fault-free, then under the paper's failure injection
//! (p = 0.5, T = 15 s) on the Mesos + Kafka stack.
//!
//! ```sh
//! cargo run --release --example montage_mosaic
//! ```

use ginflow::montage;
use ginflow::prelude::*;

fn montage_services() -> ServiceModel {
    let mut services = ServiceModel::constant(1_000_000);
    for (task, secs) in montage::durations_secs() {
        services.set_duration_secs(task, secs);
    }
    services
}

fn main() {
    let wf = montage::workflow();
    let buckets = montage::bucket_counts(&montage::durations_secs());
    println!(
        "Montage: {} tasks ({} parallel band), buckets T<20:{} 20–60:{} ≥60:{}",
        wf.dag().len(),
        montage::BAND_WIDTH,
        buckets.under_20,
        buckets.between_20_and_60,
        buckets.over_60
    );

    let fault_free = simulate(
        &wf,
        &SimConfig {
            cost: CostModel::kafka(),
            services: montage_services(),
            persistent_broker: true,
            seed: 1,
            ..SimConfig::default()
        },
    );
    println!(
        "fault-free: makespan {:.1}s (paper ≈ 484 s), {} messages, {} invocations",
        fault_free.makespan_secs(),
        fault_free.messages,
        fault_free.invocations
    );

    let faulty = simulate(
        &wf,
        &SimConfig {
            cost: CostModel::kafka(),
            services: montage_services(),
            failures: Some(FailureSpec {
                p: 0.5,
                t_us: 15_000_000,
            }),
            persistent_broker: true,
            seed: 1,
            ..SimConfig::default()
        },
    );
    println!(
        "p=0.5 T=15s: makespan {:.1}s, {} agent crashes, {} recoveries, completed={}",
        faulty.makespan_secs(),
        faulty.failures,
        faulty.respawns,
        faulty.completed
    );
    println!(
        "overhead: +{:.1}s for {} failures — every crash recovered by replaying the Kafka log",
        faulty.makespan_secs() - fault_free.makespan_secs(),
        faulty.failures
    );
}
