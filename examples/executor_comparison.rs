//! The Fig 14 experiment in miniature: deploy the same 10×10 diamond with
//! every executor × middleware combination and compare deployment vs
//! execution time — plus the EC2-like cloud executor the paper sketches
//! as an extension.
//!
//! ```sh
//! cargo run --release --example executor_comparison
//! ```

use ginflow::executor::{Cluster, Deployer, Ec2Deployer};
use ginflow::prelude::*;

fn main() {
    let wf = patterns::diamond(10, 10, Connectivity::Simple, "synthetic").unwrap();
    println!("workload: {} ({} tasks)\n", wf.name(), wf.dag().len());
    println!(
        "{:<16} {:>6} {:>10} {:>10} {:>10}",
        "combo", "nodes", "deploy(s)", "exec(s)", "total(s)"
    );
    for executor in [ExecutorKind::Ssh, ExecutorKind::Mesos] {
        for broker in [BrokerKind::Transient, BrokerKind::Log] {
            for nodes in [5usize, 10, 15] {
                let report = deploy_and_simulate(
                    &wf,
                    ExecutionSpec {
                        executor,
                        broker,
                        nodes,
                    },
                    ServiceModel::constant(300_000),
                    42,
                )
                .expect("fits the cluster");
                println!(
                    "{:<16} {:>6} {:>10.1} {:>10.1} {:>10.1}",
                    format!("{}/{}", executor.label(), broker.label()),
                    nodes,
                    report.deployment_secs(),
                    report.execution_secs(),
                    report.total_secs()
                );
            }
        }
    }

    // The EC2 extension: provisioning the machines is part of deployment.
    println!("\nEC2-like cloud executor (provisions instances, §IV-C extension):");
    let agent_names: Vec<String> = wf.dag().iter().map(|(_, t)| t.name.clone()).collect();
    for nodes in [5usize, 10, 15] {
        let report = Ec2Deployer::default()
            .deploy(&Cluster::grid5000(nodes), &agent_names)
            .expect("fits");
        println!(
            "  ec2 {:>2} nodes: deploy {:>5.1}s (boot dominates, then API throttle)",
            nodes,
            report.time_us as f64 / 1e6
        );
    }
}
