//! The paper's §III-A HOCL walkthrough: the `getMax` program, then its
//! higher-order variant where a one-shot `clean` rule extracts the result
//! and removes the `max` rule from the solution.
//!
//! ```sh
//! cargo run --example chemistry_getmax
//! ```

use ginflow::hocl::{parse_program, pretty, Engine, NoExterns};

fn main() {
    // let max = replace x, y by x if x ≥ y in ⟨2, 3, 5, 8, 9, max⟩
    let src = "
        let max = replace ?x, ?y by ?x if ?x >= ?y in
        <2, 3, 5, 8, 9, max>
    ";
    let program = parse_program(src).expect("parses");
    let mut solution = program.solution.clone();
    println!("initial:  {solution}");
    let out = Engine::new()
        .reduce(&mut solution, &mut NoExterns)
        .expect("reduces");
    println!("inert:    {solution}   ({} reactions)", out.applications);

    // The higher-order version: clean = replace-one ⟨max, ω⟩ by ω.
    let src = "
        let max = replace ?x, ?y by ?x if ?x >= ?y in
        let clean = replace-one <rule(max), *w> by ?w in
        <<2, 3, 5, 8, 9, max>, clean>
    ";
    let program = parse_program(src).expect("parses");
    println!("\nhigher-order program:\n{}", pretty(&program));
    let mut solution = program.solution;
    let out = Engine::new()
        .reduce(&mut solution, &mut NoExterns)
        .expect("reduces");
    println!(
        "final solution: {solution}   ({} reactions — max and clean both consumed)",
        out.applications
    );
    assert_eq!(format!("{solution}"), "<9>");
}
