//! Quickstart: build the paper's Fig 2 workflow programmatically and run
//! it three ways — centralized HOCL interpreter, decentralised service
//! agents on real threads, and the virtual-time simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ginflow::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn fig2() -> Workflow {
    let mut b = WorkflowBuilder::new("fig2");
    b.task("T1", "s1").input(Value::str("input"));
    b.task("T2", "s2").after(["T1"]);
    b.task("T3", "s3").after(["T1"]);
    b.task("T4", "s4").after(["T2", "T3"]);
    b.build().expect("fig2 is a valid workflow")
}

fn main() {
    let wf = fig2();
    println!(
        "workflow: {} ({} tasks, {} edges)",
        wf.name(),
        wf.dag().len(),
        wf.dag().edge_count()
    );

    // The services: TraceService makes data lineage visible in results.
    let registry = ServiceRegistry::tracing_for(["s1", "s2", "s3", "s4"]);

    // 1. Centralized: one HOCL interpreter reduces the global solution.
    let outcome = run_centralized(&wf, &registry, CentralizedConfig::default())
        .expect("centralized run succeeds");
    println!("\n[centralized]  T4 = {}", outcome.result_of("T4").unwrap());
    println!("[centralized]  rule applications: {}", outcome.applications);

    // 2. Decentralised: one agent per task over an in-process broker.
    let runtime = ThreadedRuntime::new(BrokerKind::Transient.build(), Arc::new(registry));
    let run = runtime.launch(&wf);
    let results = run.wait(Duration::from_secs(10)).expect("threads complete");
    println!("[decentralised] T4 = {}", results["T4"]);
    run.shutdown();

    // 3. Simulated: same agent logic, virtual time, calibrated costs.
    let report = simulate(
        &wf,
        &SimConfig {
            services: ServiceModel::constant(300_000),
            ..SimConfig::default()
        },
    );
    println!(
        "[simulated]    completed={} makespan={:.2}s messages={}",
        report.completed,
        report.makespan_secs(),
        report.messages
    );
}
