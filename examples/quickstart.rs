//! Quickstart: build the paper's Fig 2 workflow programmatically and run
//! it through the unified `Engine` on every backend — the event-driven
//! scheduler, the legacy thread-per-agent baseline, and the virtual-time
//! simulator — plus the centralized HOCL interpreter for reference.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ginflow::prelude::*;
use std::sync::Arc;

fn fig2() -> Workflow {
    let mut b = WorkflowBuilder::new("fig2");
    b.task("T1", "s1").input(Value::str("input"));
    b.task("T2", "s2").after(["T1"]);
    b.task("T3", "s3").after(["T1"]);
    b.task("T4", "s4").after(["T2", "T3"]);
    b.build().expect("fig2 is a valid workflow")
}

fn main() {
    let wf = fig2();
    println!(
        "workflow: {} ({} tasks, {} edges)",
        wf.name(),
        wf.dag().len(),
        wf.dag().edge_count()
    );

    // The services: TraceService makes data lineage visible in results.
    let registry = ServiceRegistry::tracing_for(["s1", "s2", "s3", "s4"]);

    // Reference: one centralized HOCL interpreter reduces the global
    // solution (no agents, no broker).
    let outcome = run_centralized(&wf, &registry, CentralizedConfig::default())
        .expect("centralized run succeeds");
    println!(
        "\n[centralized   ] T4 = {}",
        outcome.result_of("T4").unwrap()
    );

    // One Engine per backend — same builder, same launch, same handle.
    let registry = Arc::new(registry);
    for backend in [Backend::Scheduler, Backend::LegacyThreads, Backend::Sim] {
        let engine = Engine::builder()
            .broker(BrokerKind::Transient.build())
            .registry(registry.clone())
            .backend(backend)
            .build();
        let run = engine.launch(&wf);

        // The typed event stream: every task transition, every result,
        // then a terminal RunCompleted/RunFailed.
        let events = run.events();

        // join() drives the run to its end and returns the structured
        // report (per-task states, timings, incarnations).
        let report = run.join();
        let transitions = events
            .filter(|e| matches!(e, RunEvent::TaskStateChanged { .. }))
            .count();
        println!(
            "[{:<15}] completed={} T4={} ({} state transitions, wall {:.3}s)",
            report.backend,
            report.completed,
            report
                .result_of("T4")
                .map(|v| v.to_string())
                .unwrap_or_default(),
            transitions,
            report.wall.as_secs_f64()
        );
        assert!(report.completed);
        assert_eq!(report.state_of("T4"), TaskState::Completed);
    }

    println!("\nsame workflow, three execution vehicles, one API");
}
