//! The §III-C adaptive workflow (Figs 5–8) end-to-end on the threaded
//! decentralised runtime: `T2`'s service is permanently broken, so the
//! `trigger_adapt` rule fires, `T1` resends its result to the standby
//! `T2'`, and `T4` re-points its sources — all while the workflow keeps
//! running.
//!
//! ```sh
//! cargo run --example adaptive_pipeline
//! ```

use ginflow::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Fig 5: T1 → {T2, T3} → T4, with T2' standing by to replace T2.
    let mut b = WorkflowBuilder::new("fig5");
    b.task("T1", "s1").input(Value::str("input"));
    b.task("T2", "s2").after(["T1"]);
    b.task("T3", "s3").after(["T1"]);
    b.task("T4", "s4").after(["T2", "T3"]);
    b.adaptation(
        "replace-T2",
        ["T2"], // the potentially faulty region
        ["T2"], // whose failure triggers the adaptation
        [ReplacementTask::new("T2'", "s2p", ["T1"])],
    );
    let wf = b.build().expect("valid adaptive workflow");

    // Print the compiled chemistry — the concrete adaptive workflow of Fig 8.
    let compiled = compile_centralized(&wf);
    println!(
        "compiled HOCL program:\n{}\n",
        ginflow::hocl::printer::pretty_solution(&compiled)
    );

    // s2 always fails; everything else traces its lineage.
    let mut registry = ServiceRegistry::tracing_for(["s1", "s3", "s4", "s2p"]);
    registry.register("s2", Arc::new(FailingService));

    let engine = Engine::builder()
        .broker(BrokerKind::Transient.build())
        .registry(Arc::new(registry))
        .build();
    let run = engine.launch(&wf);
    let events = run.events();
    let results = run
        .wait(Duration::from_secs(10))
        .expect("the adaptation completes the workflow");

    println!(
        "T2  state: {:?} (its service is broken)",
        run.state_of("T2").unwrap()
    );
    println!("T2' state: {:?} (took over)", run.state_of("T2'").unwrap());
    println!("T4 result: {}", results["T4"]);
    assert_eq!(
        results["T4"],
        Value::Str("s4(s2p(s1(input)),s3(s1(input)))".into())
    );
    let report = run.join();
    assert_eq!(report.adaptations_fired, 1);

    // The adaptation firing is a first-class event on the run stream.
    let fired: Vec<String> = events
        .filter_map(|e| match e {
            RunEvent::AdaptationFired { adaptation, .. } => Some(adaptation),
            _ => None,
        })
        .collect();
    println!("adaptations fired: {fired:?}");
    assert_eq!(fired, vec!["replace-T2".to_owned()]);
    println!("\nthe workflow completed through the alternative branch — no restart needed");
}
